// D009 fixture: kernel-path queue types whose storage can grow without a
// structural bound — a stalled consumer accumulates entries forever.

pub struct ReplayQueue {
    pending: VecDeque<Request>,
    inflight: Vec<Request>,
}

struct CompletionRing {
    slots: Vec<Completion>,
    head: usize,
}

// Generic queues are still queues: type parameters between the name and
// the body must not hide the growable storage.
pub struct RetryRing<T> {
    items: Vec<T>,
}

// A command queue that retains wait segments and depth samples without a
// bound would grow with every command a saturated device ever served — the
// observatory's history must be drop-oldest, not append-forever.
pub struct CommandQueue {
    segments: VecDeque<Segment>,
    samples: Vec<QueueSample>,
    busy_until: u64,
}
