// D009 fixture: kernel-path queue types whose storage can grow without a
// structural bound — a stalled consumer accumulates entries forever.

pub struct ReplayQueue {
    pending: VecDeque<Request>,
    inflight: Vec<Request>,
}

struct CompletionRing {
    slots: Vec<Completion>,
    head: usize,
}
