// D009 fixture: kernel-path queue types whose storage can grow without a
// structural bound — a stalled consumer accumulates entries forever.

pub struct ReplayQueue {
    pending: VecDeque<Request>,
    inflight: Vec<Request>,
}

struct CompletionRing {
    slots: Vec<Completion>,
    head: usize,
}

// Generic queues are still queues: type parameters between the name and
// the body must not hide the growable storage.
pub struct RetryRing<T> {
    items: Vec<T>,
}
