// D010 fixture: SLED-priced state (residency extents, layout runs) mutated
// on a path that reaches the function exit without a generation bump, so a
// cached price survives the mutation it should have invalidated.

impl Index {
    fn drop_page(&mut self, p: u64) {
        self.resident.remove(p);
    }

    fn add_page(&mut self, p: u64, hot: bool) {
        self.resident.insert(p);
        if hot {
            self.generation += 1;
        }
    }
}
