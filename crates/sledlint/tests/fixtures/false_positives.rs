//! Mentions of banned names in non-code positions must not fire:
//! HashMap, Instant, unwrap(), std::thread, rand::thread_rng.

/* block comment: panic! todo! HashSet SystemTime
   /* nested: x.unwrap() as u32 */
   still inside the outer comment */

fn strings<'a>(tag: &'a str) -> String {
    let plain = "HashMap and Instant and x.unwrap() and rand::thread_rng()";
    let raw = r#"std::thread::spawn and "panic!" and SystemTime"#;
    let ch = '"';
    let lifetime_not_char: &'a str = tag;
    format!("{plain}{raw}{ch}{lifetime_not_char}")
}
