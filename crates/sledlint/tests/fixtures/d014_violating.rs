// D014 fixture: hedge sites that never bound their redundant requests,
// or never cancel the losing copy.

// Neither a bound nor a cancel: every slow pick fans out, forever, and
// the redundant command runs to completion on the loser's queue.
fn hedge_everything(k: &mut Kernel, dev: DeviceId) {
    if k.queue_pressure(dev) > k.deadline(dev) {
        k.recorder.note_hedge();
        k.issue_redundant(dev);
    }
}

// Bounded by the policy, but the loser is never revoked: its queue keeps
// the full command, so hedging doubles device work instead of racing it.
fn hedge_without_revoke(k: &mut Kernel, policy: &HedgePolicy) {
    for extra in k.mirror_picks(policy.max_hedges) {
        k.tracer.io_hedge(k.now(), 1, 2, 0);
        k.issue_redundant(extra);
    }
}
