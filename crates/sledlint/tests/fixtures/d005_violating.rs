fn syscall(map: &Fds, fd: u64) -> u64 {
    let of = map.get(&fd).unwrap();
    let ino = of.ino().expect("open file has an inode");
    if ino == 0 {
        panic!("zero inode");
    }
    todo!("finish the syscall")
}
