use std::collections::HashMap; // sledlint::allow(D006, keyed access only, never iterated)

fn locate(sector: u64, spt: u64) -> u32 {
    // sledlint::allow(D007, quotient bounded by the u32 head count)
    (sector / spt) as u32
}
