use std::collections::HashMap; // sledlint::allow(D006, keyed access only, never iterated)

fn locate(sector: u64, spt: u64) -> u32 {
    // sledlint::allow(D007, quotient bounded by the u32 head count)
    (sector / spt) as u32
}

impl Index {
    fn stamp(&self) -> u64 {
        self.generation
    }

    fn fill(&mut self, p: u64) {
        // sledlint::allow(D010, boot-time fill: the caller bumps once after the batch)
        self.resident.insert(p);
    }

    fn warm(&mut self, d: SimDuration) {
        // sledlint::allow(D011, warmup spin: the caller bills the aggregate)
        self.clock.advance(d);
    }

    fn traced_abort(&mut self) -> SimResult<()> {
        // sledlint::allow(D012, abort path: the tracer finalizer closes open spans)
        self.tracer.begin(Layer::Fs, "op", self.clock.now(), 0);
        self.maybe_abort()?;
        self.tracer.end(self.clock.now());
        Ok(())
    }
}

fn packed_key(span_pages: u64, tail_sectors: u64) -> u64 {
    // sledlint::allow(D013, mixed-radix key packing, not arithmetic on quantities)
    span_pages + tail_sectors
}
