// D013 fixture: arithmetic mixing values whose names carry different
// units, with no visible conversion — directly, and laundered through a
// local alias.

fn over_budget(first_latency_ns: u64, total_bytes: u64) -> bool {
    let budget = first_latency_ns;
    budget < total_bytes
}

fn span_len(span_pages: u64, tail_sectors: u64) -> u64 {
    span_pages + tail_sectors
}
