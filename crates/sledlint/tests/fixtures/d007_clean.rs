fn head_of(sector: u64, spt: u64) -> Result<u32, std::num::TryFromIntError> {
    u32::try_from(sector / spt)
}
