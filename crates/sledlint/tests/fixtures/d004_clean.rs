fn same(a: &Sled, b: &Sled) -> bool {
    a.latency.to_bits() == b.latency.to_bits()
        && a.bandwidth.total_cmp(&b.bandwidth) == std::cmp::Ordering::Equal
}
