// D012 clean fixture: the kernel's span discipline. Fallible work runs
// inside an immediately-invoked closure so `?` exits the closure, not the
// function, and the end always runs. A fn that only *opens* a span (the
// `trace_app_begin` opener API) is exempt — the caller owns the end.

impl Kernel {
    fn traced_io(&mut self) -> SimResult<u64> {
        self.tracer.begin(Layer::Fs, "io", self.clock.now(), 0);
        let r = (|| {
            let x = self.submit()?;
            Ok(x)
        })();
        self.tracer.end(self.clock.now());
        r
    }

    fn trace_app_begin(&mut self, name: &str) {
        self.tracer.begin(Layer::App, name, self.clock.now(), 0);
    }
}
