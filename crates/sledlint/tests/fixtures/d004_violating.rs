fn same(a: &Sled, b: &Sled) -> bool {
    a.latency == b.latency && a.bandwidth != b.bandwidth
}
