// D014 clean fixture: the hedge site bounds its fan-out by the policy
// and cancels every loser; code that merely reads hedge counters is not
// a hedge site at all.

fn hedge_bounded_and_revoked(k: &mut Kernel, policy: &HedgePolicy) {
    for extra in k.mirror_picks(policy.max_hedges) {
        k.recorder.note_hedge();
        k.tracer.io_hedge(k.now(), 1, 2, policy.cancel_cost);
        k.queue(extra).note_cancel(k.now(), policy.cancel_cost);
    }
}

fn renders_counters_only(u: &Rusage) -> u64 {
    u.hedges + u.hedge_wins
}
