// D008 clean fixture: every retry loop references a policy bound, and
// ordinary counting loops are not retry loops at all.

fn bounded_by_attempts(dev: &mut Dev, policy: &RetryPolicy) -> Result<(), SimError> {
    let mut attempt = 0u32;
    loop {
        attempt += 1;
        if dev.submit().is_ok() {
            return Ok(());
        }
        if attempt >= policy.max_attempts {
            return Err(SimError::new(Errno::Eio, "gave up"));
        }
    }
}

fn bounded_by_deadline(q: &mut Queue, policy: &RetryPolicy) {
    while q.needs_resubmit() && q.elapsed() < policy.timeout {
        q.resubmit_one();
    }
}

fn not_a_retry_loop(xs: &[u64]) -> u64 {
    let mut sum = 0u64;
    let mut i = 0;
    while i < xs.len() {
        sum += xs[i];
        i += 1;
    }
    sum
}

// Split across a helper, but bounded: the helper both resubmits and
// consults the policy bound, and the one-level summary sees both.
fn drain_split_bounded(dev: &mut Dev, policy: &RetryPolicy) {
    while dev.has_pending() {
        step_bounded(dev, policy);
    }
}

fn step_bounded(dev: &mut Dev, policy: &RetryPolicy) {
    if dev.tries() < policy.max_attempts {
        dev.resubmit_one();
    }
}
