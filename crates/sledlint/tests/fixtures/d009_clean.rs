// D009 clean fixture: every queue names its capacity bound, and types that
// merely sound like queues (no growable storage) or merely hold containers
// (not named like queues) are not flagged.

pub struct ReplayQueue {
    capacity: usize,
    pending: VecDeque<Request>,
}

struct CompletionRing {
    slots: Vec<Completion>,
    max_entries: usize,
}

struct RingCursor {
    head: usize,
    generation: u64,
}

struct ExtentList {
    extents: Vec<Extent>,
}
