// D009 clean fixture: every queue names its capacity bound, and types that
// merely sound like queues (no growable storage) or merely hold containers
// (not named like queues) are not flagged.

pub struct ReplayQueue {
    capacity: usize,
    pending: VecDeque<Request>,
}

struct CompletionRing {
    slots: Vec<Completion>,
    max_entries: usize,
}

struct RingCursor {
    head: usize,
    generation: u64,
}

struct ExtentList {
    extents: Vec<Extent>,
}

// A generic bound with parentheses (`Fn(..)`) is not a tuple struct; the
// named-field body is still scanned and its capacity bound still counts.
struct FlushQueue<F: Fn(u64) -> bool> {
    pending: Vec<u64>,
    cap: usize,
    accept: F,
}

// A type alias has no field body to carry a bound; the struct it points at
// is where D009 looks.
type RequestQueue = VecDeque<Request>;

// Tuple structs have no named fields, so there is nowhere to name a bound;
// they are out of scope by design.
struct DepthRing(Vec<u64>);

// A per-device command queue in the observatory shape: retained wait
// segments and telemetry samples are growable, but the struct names its
// capacity, so backpressure (drop-oldest) is structural.
pub struct CmdQueue {
    capacity: usize,
    segments: VecDeque<Segment>,
    samples: Vec<QueueSample>,
    busy_until: u64,
}

// Per-tenant load rows keyed by tenant are an accounting map, not a queue;
// the name keeps it out of D009's scope on purpose.
struct TenantLoadTable {
    rows: BTreeMap<u64, TenantLoad>,
}
