// D012 fixture: spans opened but not closed on every exit path. The `?`
// and the early return leak an open span, so nesting depth drifts and the
// span tree stops parsing.

impl Kernel {
    fn traced_io(&mut self) -> SimResult<u64> {
        self.tracer.begin(Layer::Fs, "io", self.clock.now(), 0);
        let r = self.submit()?;
        self.tracer.end(self.clock.now());
        Ok(r)
    }

    fn traced_branch(&mut self, fast: bool) {
        self.tracer.begin(Layer::Fs, "op", self.clock.now(), 0);
        if fast {
            return;
        }
        self.tracer.end(self.clock.now());
    }
}
