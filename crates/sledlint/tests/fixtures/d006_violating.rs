use std::collections::{HashMap, HashSet};

struct State {
    inodes: HashMap<u64, Inode>,
    dirty: HashSet<u64>,
}
