// D011 fixture: the virtual clock advances, then a path exits without
// posting the cost to Rusage — time passes that nobody is billed for, and
// the conservation law the accuracy windows audit no longer holds.

impl Kernel {
    fn charge_partial(&mut self, d: SimDuration) -> SimResult<()> {
        self.clock.advance(d);
        let r = self.submit()?;
        self.usage.cpu += d;
        Ok(r)
    }

    fn advance_only(&mut self, d: SimDuration) {
        self.clock.advance(d);
    }
}
