// D008 fixture: retry loops that never reference a policy bound. A
// persistent fault would spin these forever.

fn spin_until_submitted(dev: &mut Dev) -> Result<(), SimError> {
    let mut retry = 0u64;
    loop {
        if dev.submit().is_ok() {
            return Ok(());
        }
        retry += 1;
    }
}

fn drain_failed(q: &mut Queue) {
    while q.has_failed_attempts() {
        q.resubmit_one();
    }
}

// The retry machinery and the (missing) bound both live one call down: the
// loop body only calls a helper, but the helper resubmits with no policy in
// sight anywhere along the chain.
fn drain_split(dev: &mut Dev) {
    while dev.has_pending() {
        step_once(dev);
    }
}

fn step_once(dev: &mut Dev) {
    dev.resubmit_one();
}
