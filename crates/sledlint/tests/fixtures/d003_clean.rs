fn scatter(rng: &mut DetRng) -> u64 {
    // All randomness is seeded and replayable.
    rng.range_u64(0, 64)
}
