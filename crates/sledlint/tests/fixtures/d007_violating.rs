fn head_of(sector: u64, spt: u64) -> u32 {
    (sector / spt) as u32
}
