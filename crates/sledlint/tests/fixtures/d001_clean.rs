fn measure(clock: &Clock) -> SimTime {
    // The virtual clock is the only source of time.
    clock.now()
}
