// D010 clean fixture: every priced-state mutation reaches a generation
// bump on all exit paths — after a guard, directly, or through a same-file
// helper. Early returns *before* the mutation owe nothing.

impl Index {
    fn remove_page(&mut self, p: u64) -> bool {
        if !self.resident.contains(p) {
            return false;
        }
        self.resident.remove(p);
        self.generation += 1;
        true
    }

    fn add_page(&mut self, p: u64) {
        self.resident.insert(p);
        self.touch();
    }

    fn touch(&mut self) {
        self.generation += 1;
    }
}
