fn scatter() -> u64 {
    let mut rng = rand::thread_rng();
    let seeded = StdRng::from_entropy();
    let _ = seeded;
    rng.gen()
}
