// D013 clean fixture: same-unit arithmetic is fine, and a visible scaling
// (`*`, `/`) or cast in the expression marks a deliberate conversion. The
// suffix convention also lets a conversion rename the result into the new
// unit, which keeps later arithmetic checkable.

fn same_unit(span_pages: u64, head_pages: u64) -> u64 {
    span_pages + head_pages
}

fn converted_inline(span_pages: u64, tail_sectors: u64) -> u64 {
    span_pages * SECTORS_PER_PAGE + tail_sectors
}

fn converted_then_named(span_pages: u64, tail_sectors: u64) -> u64 {
    let span_sectors = span_pages * SECTORS_PER_PAGE;
    span_sectors + tail_sectors
}

fn rate_is_a_conversion(lat_ns: u64, total_bytes: u64, bw_bytes: u64) -> bool {
    lat_ns < total_bytes / bw_bytes
}
