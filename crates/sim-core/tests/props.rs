//! Property tests for the statistics and time substrate.
//!
//! Runs under the in-repo `check` harness; enable with
//! `cargo test -p sleds-sim-core --features proptests`.

use sleds_sim_core::stats::{Ecdf, Summary};
use sleds_sim_core::{check, DetRng, RetryPolicy, SimDuration, SimTime};

fn sample_vec(rng: &mut DetRng, min_len: usize, max_len: usize, lo: f64, hi: f64) -> Vec<f64> {
    let len = rng.range_usize(min_len, max_len);
    (0..len).map(|_| lo + rng.unit_f64() * (hi - lo)).collect()
}

/// Summary invariants: min <= mean <= max, non-negative spread, and a
/// CI that never exceeds the full range.
#[test]
fn summary_invariants() {
    check::run("summary_invariants", |rng| {
        let xs = sample_vec(rng, 1, 100, -1e6, 1e6);
        let s = Summary::of(&xs).unwrap();
        assert_eq!(s.n, xs.len());
        assert!(s.min <= s.mean + 1e-9);
        assert!(s.mean <= s.max + 1e-9);
        assert!(s.stddev >= 0.0);
        assert!(s.ci90 >= 0.0);
        if s.n >= 2 {
            // t * sd / sqrt(n) <= t * range (very loose but always true).
            assert!(s.ci90 <= 6.32 * (s.max - s.min) + 1e-9);
        }
    });
}

/// ECDF: fraction_at is monotone, 0 before the min, 1 at the max, and
/// quantile() inverts it within rank rounding.
#[test]
fn ecdf_invariants() {
    check::run("ecdf_invariants", |rng| {
        let xs = sample_vec(rng, 1, 100, 0.0, 1e6);
        let e = Ecdf::of(&xs).unwrap();
        let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert_eq!(e.fraction_at(lo - 1.0), 0.0);
        assert_eq!(e.fraction_at(hi), 1.0);
        let mut prev = 0.0;
        for (x, f) in e.steps() {
            assert!(f >= prev);
            assert!((0.0..=1.0).contains(&f));
            assert!((lo..=hi).contains(&x));
            prev = f;
        }
        // Quantiles are within the sample and ordered.
        let q25 = e.quantile(0.25);
        let q75 = e.quantile(0.75);
        assert!(q25 <= q75);
        assert!((lo..=hi).contains(&q25));
    });
}

/// Duration arithmetic never wraps: any sum of durations is at least
/// as large as each operand (saturating, monotone).
#[test]
fn duration_sums_are_monotone() {
    check::run("duration_sums_are_monotone", |rng| {
        let len = rng.range_usize(1, 20);
        let mut acc = SimDuration::ZERO;
        for _ in 0..len {
            let d = SimDuration::from_nanos(rng.range_u64(0, u64::MAX / 4));
            let next = acc + d;
            assert!(next >= acc);
            assert!(next >= d);
            acc = next;
        }
    });
}

/// Instant/duration round trips: (t + d) - t == d whenever no
/// saturation occurs.
#[test]
fn time_roundtrip() {
    check::run("time_roundtrip", |rng| {
        let t0 = SimTime::from_nanos(rng.range_u64(0, u64::MAX / 2));
        let dd = SimDuration::from_nanos(rng.range_u64(0, u64::MAX / 4));
        assert_eq!((t0 + dd) - t0, dd);
    });
}

/// Derived RNG streams are deterministic and stream-dependent.
#[test]
fn rng_derivation_is_stable() {
    check::run("rng_derivation_is_stable", |rng| {
        let seed = rng.range_u64(0, u64::MAX);
        let stream = rng.range_u64(0, 1000);
        let a = DetRng::new(seed);
        let mut c1 = a.derive(stream);
        let mut c2 = DetRng::new(seed).derive(stream);
        for _ in 0..8 {
            assert_eq!(c1.range_u64(0, u64::MAX), c2.range_u64(0, u64::MAX));
        }
        let mut other = a.derive(stream + 1);
        let v1: Vec<u64> = (0..8)
            .map(|_| a.derive(stream).range_u64(0, 1 << 30))
            .collect();
        let v2: Vec<u64> = (0..8).map(|_| other.range_u64(0, 1 << 30)).collect();
        assert_ne!(v1, v2);
    });
}

/// from_secs_f64 and as_secs_f64 agree to within a nanosecond for
/// sane magnitudes.
#[test]
fn secs_f64_roundtrip() {
    check::run("secs_f64_roundtrip", |rng| {
        let s = rng.unit_f64() * 1e6;
        let d = SimDuration::from_secs_f64(s);
        assert!(
            (d.as_secs_f64() - s).abs() < 1e-6,
            "{} vs {}",
            d.as_secs_f64(),
            s
        );
    });
}

/// Retry backoff schedules: zero before the first retry, monotone
/// nondecreasing and clamped without jitter, and with jitter every draw
/// stays inside the configured amplitude band around the pure schedule.
#[test]
fn retry_backoff_is_bounded_and_monotone() {
    check::run("retry_backoff_is_bounded_and_monotone", |rng| {
        let base = SimDuration::from_nanos(rng.range_u64(1, 1_000_000));
        let max_backoff = SimDuration::from_nanos(rng.range_u64(1, 1_000_000_000));
        let amp = rng.unit_f64() * 0.5;
        let pure = RetryPolicy {
            base_backoff: base,
            max_backoff,
            jitter_amp: 0.0,
            ..RetryPolicy::default()
        };
        assert!(pure.backoff_for(0, rng).is_zero());
        let mut prev = SimDuration::ZERO;
        for retry in 1..16u32 {
            let b = pure.backoff_for(retry, rng);
            assert!(b >= prev, "jitter-free backoff must be monotone");
            assert!(b <= max_backoff, "backoff must clamp to the ceiling");
            prev = b;
        }
        let jittered = RetryPolicy {
            jitter_amp: amp,
            ..pure
        };
        for retry in 1..16u32 {
            let clean = pure.backoff_for(retry, rng).as_secs_f64();
            let b = jittered.backoff_for(retry, rng).as_secs_f64();
            assert!(
                b >= clean * (1.0 - amp) - 1e-9 && b <= clean * (1.0 + amp) + 1e-9,
                "retry {retry}: {b} outside the +/-{amp} band around {clean}"
            );
        }
    });
}

/// The kernel's retry loop shape, driven against an always-failing command:
/// submissions never exceed `max_attempts`, and the total backoff charged is
/// exactly the sum of the per-retry schedule (so a policy bounds virtual
/// time as well as attempts).
#[test]
fn retry_attempts_respect_policy_bound() {
    check::run("retry_attempts_respect_policy_bound", |rng| {
        let policy = RetryPolicy {
            max_attempts: rng.range_u64(1, 10) as u32,
            base_backoff: SimDuration::from_nanos(rng.range_u64(0, 1_000_000)),
            max_backoff: SimDuration::from_nanos(rng.range_u64(0, 10_000_000)),
            timeout: SimDuration::MAX,
            jitter_amp: 0.0,
        };
        let mut attempts = 0u32;
        let mut charged = SimDuration::ZERO;
        // Bounded: exits by `policy.max_attempts`.
        loop {
            attempts += 1;
            // The command always fails with a retryable errno.
            if attempts >= policy.max_attempts {
                break;
            }
            charged = charged.saturating_add(policy.backoff_for(attempts, rng));
        }
        assert_eq!(attempts, policy.max_attempts, "loop must exhaust exactly");
        let expected = (1..policy.max_attempts).fold(SimDuration::ZERO, |acc, i| {
            acc.saturating_add(policy.backoff_for(i, rng))
        });
        assert_eq!(charged, expected, "backoff charges follow the schedule");
        assert!(
            policy.max_attempts > 1 || charged.is_zero(),
            "a single-attempt policy never backs off"
        );
    });
}

/// Log-histogram percentile queries: p50 <= p90 <= p99, all within the
/// observed [min, max], and the count-weighted quantile is never coarser
/// than the bucket floor the legacy query returns.
#[test]
fn log_histogram_percentiles_are_ordered_and_bounded() {
    use sleds_sim_core::stats::LogHistogram;
    check::run("log_histogram_percentiles_are_ordered_and_bounded", |rng| {
        let mut h = LogHistogram::new();
        let len = rng.range_usize(1, 200);
        for _ in 0..len {
            // Span many buckets: mix tiny and huge observations.
            let mag = rng.range_u64(0, 40);
            h.record(rng.range_u64(0, (1u64 << mag).max(1)));
        }
        let (p50, p90, p99) = (h.p50(), h.p90(), h.p99());
        assert!(p50 <= p90, "p50 {p50} > p90 {p90}");
        assert!(p90 <= p99, "p90 {p90} > p99 {p99}");
        for q in [p50, p90, p99] {
            assert!(q >= h.min(), "{q} below min {}", h.min());
            assert!(q <= h.max(), "{q} above max {}", h.max());
        }
        // The weighted quantile refines the floor quantile: same bucket,
        // so it is at least the floor and below the next power of two.
        for qf in [0.5, 0.9, 0.99] {
            let floor = h.quantile(qf);
            let exact = h.quantile_mean(qf);
            assert!(exact >= floor, "weighted {exact} under floor {floor}");
        }
    });
}
