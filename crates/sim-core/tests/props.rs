//! Property tests for the statistics and time substrate.

use proptest::prelude::*;

use sleds_sim_core::stats::{Ecdf, Summary};
use sleds_sim_core::{DetRng, SimDuration, SimTime};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Summary invariants: min <= mean <= max, non-negative spread, and a
    /// CI that never exceeds the full range.
    #[test]
    fn summary_invariants(xs in prop::collection::vec(-1e6f64..1e6, 1..100)) {
        let s = Summary::of(&xs).unwrap();
        prop_assert_eq!(s.n, xs.len());
        prop_assert!(s.min <= s.mean + 1e-9);
        prop_assert!(s.mean <= s.max + 1e-9);
        prop_assert!(s.stddev >= 0.0);
        prop_assert!(s.ci90 >= 0.0);
        if s.n >= 2 {
            // t * sd / sqrt(n) <= t * range (very loose but always true).
            prop_assert!(s.ci90 <= 6.32 * (s.max - s.min) + 1e-9);
        }
    }

    /// ECDF: fraction_at is monotone, 0 before the min, 1 at the max, and
    /// quantile() inverts it within rank rounding.
    #[test]
    fn ecdf_invariants(xs in prop::collection::vec(0f64..1e6, 1..100)) {
        let e = Ecdf::of(&xs).unwrap();
        let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert_eq!(e.fraction_at(lo - 1.0), 0.0);
        prop_assert_eq!(e.fraction_at(hi), 1.0);
        let mut prev = 0.0;
        for (x, f) in e.steps() {
            prop_assert!(f >= prev);
            prop_assert!((0.0..=1.0).contains(&f));
            prop_assert!((lo..=hi).contains(&x));
            prev = f;
        }
        // Quantiles are within the sample and ordered.
        let q25 = e.quantile(0.25);
        let q75 = e.quantile(0.75);
        prop_assert!(q25 <= q75);
        prop_assert!((lo..=hi).contains(&q25));
    }

    /// Duration arithmetic never wraps: any sum of durations is at least
    /// as large as each operand (saturating, monotone).
    #[test]
    fn duration_sums_are_monotone(ns in prop::collection::vec(0u64..u64::MAX / 4, 1..20)) {
        let mut acc = SimDuration::ZERO;
        for &n in &ns {
            let d = SimDuration::from_nanos(n);
            let next = acc + d;
            prop_assert!(next >= acc);
            prop_assert!(next >= d);
            acc = next;
        }
    }

    /// Instant/duration round trips: (t + d) - t == d whenever no
    /// saturation occurs.
    #[test]
    fn time_roundtrip(t in 0u64..u64::MAX / 2, d in 0u64..u64::MAX / 4) {
        let t0 = SimTime::from_nanos(t);
        let dd = SimDuration::from_nanos(d);
        prop_assert_eq!((t0 + dd) - t0, dd);
    }

    /// Derived RNG streams are deterministic and stream-dependent.
    #[test]
    fn rng_derivation_is_stable(seed in any::<u64>(), stream in 0u64..1000) {
        let a = DetRng::new(seed);
        let mut c1 = a.derive(stream);
        let mut c2 = DetRng::new(seed).derive(stream);
        for _ in 0..8 {
            prop_assert_eq!(c1.range_u64(0, u64::MAX), c2.range_u64(0, u64::MAX));
        }
        let mut other = a.derive(stream + 1);
        let v1: Vec<u64> = (0..8).map(|_| a.derive(stream).range_u64(0, 1 << 30)).collect();
        let v2: Vec<u64> = (0..8).map(|_| other.range_u64(0, 1 << 30)).collect();
        prop_assert_ne!(v1, v2);
    }

    /// from_secs_f64 and as_secs_f64 agree to within a nanosecond for
    /// sane magnitudes.
    #[test]
    fn secs_f64_roundtrip(s in 0.0f64..1e6) {
        let d = SimDuration::from_secs_f64(s);
        prop_assert!((d.as_secs_f64() - s).abs() < 1e-6, "{} vs {}", d.as_secs_f64(), s);
    }
}
