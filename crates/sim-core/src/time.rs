//! Virtual time for the simulator.
//!
//! [`SimTime`] is an instant (nanoseconds since simulated boot) and
//! [`SimDuration`] a span. Both are thin wrappers over `u64` nanoseconds with
//! saturating arithmetic: a simulation that somehow exceeds ~584 years of
//! virtual time pins at the maximum rather than wrapping, which would corrupt
//! positional device state silently.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// Nanoseconds per second.
pub const NANOS_PER_SEC: u64 = 1_000_000_000;

/// A span of virtual time, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a duration from whole nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Creates a duration from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us.saturating_mul(1_000))
    }

    /// Creates a duration from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms.saturating_mul(1_000_000))
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s.saturating_mul(NANOS_PER_SEC))
    }

    /// Creates a duration from fractional seconds.
    ///
    /// Negative and NaN inputs clamp to zero; overflow clamps to
    /// [`SimDuration::MAX`]. Device models produce durations from floating
    /// point math, so defensive clamping here keeps one bad parameter from
    /// poisoning the whole clock.
    pub fn from_secs_f64(s: f64) -> Self {
        if !s.is_finite() || s <= 0.0 {
            if s.is_infinite() && s > 0.0 {
                return SimDuration::MAX;
            }
            return SimDuration::ZERO;
        }
        let ns = s * NANOS_PER_SEC as f64;
        if ns >= u64::MAX as f64 {
            SimDuration::MAX
        } else {
            SimDuration(ns as u64)
        }
    }

    /// Returns the duration in whole nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns the duration in whole microseconds (truncating).
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Returns the duration in whole milliseconds (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Returns the duration in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// Saturating addition.
    pub const fn saturating_add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }

    /// Saturating subtraction (clamps at zero).
    pub const fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    /// Returns true if this is the zero duration.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        self.saturating_add(rhs)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        self.saturating_sub(rhs)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs.max(1))
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= NANOS_PER_SEC {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", ns as f64 / 1e6)
        } else if ns >= 1_000 {
            write!(f, "{:.3}us", ns as f64 / 1e3)
        } else {
            write!(f, "{ns}ns")
        }
    }
}

/// An instant of virtual time: nanoseconds since simulated boot.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The instant of simulated boot.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates an instant from nanoseconds since boot.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Returns nanoseconds since boot.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns seconds since boot as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// Time elapsed since `earlier`, or zero if `earlier` is in the future.
    pub const fn duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.as_nanos()))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.duration_since(rhs)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T+{}", SimDuration(self.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T+{}", SimDuration(self.0))
    }
}

/// The simulator's clock.
///
/// Exactly one clock exists per simulated machine; the kernel owns it and
/// advances it as device operations and CPU work complete. Components that
/// need the current time are passed a [`SimTime`] by value.
#[derive(Debug, Clone, Default)]
pub struct Clock {
    now: SimTime,
}

impl Clock {
    /// Creates a clock at simulated boot.
    pub fn new() -> Self {
        Clock { now: SimTime::ZERO }
    }

    /// A clock resumed at `t` — used when swapping in a saved timeline
    /// (the multi-tenant kernel keeps one timeline per tenant and resumes
    /// whichever tenant is active). Each clock instance still only moves
    /// forward via [`Clock::advance`].
    pub fn resume_at(t: SimTime) -> Self {
        Clock { now: t }
    }

    /// Returns the current instant.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Advances the clock by `d` and returns the new instant.
    pub fn advance(&mut self, d: SimDuration) -> SimTime {
        self.now += d;
        self.now
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(SimDuration::from_secs(2).as_nanos(), 2 * NANOS_PER_SEC);
        assert_eq!(SimDuration::from_millis(3).as_micros(), 3_000);
        assert_eq!(SimDuration::from_micros(5).as_nanos(), 5_000);
        assert_eq!(SimDuration::from_secs_f64(1.5).as_millis(), 1_500);
    }

    #[test]
    fn from_secs_f64_clamps_garbage() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::INFINITY), SimDuration::MAX);
        assert_eq!(
            SimDuration::from_secs_f64(f64::NEG_INFINITY),
            SimDuration::ZERO
        );
    }

    #[test]
    fn arithmetic_saturates() {
        assert_eq!(
            SimDuration::MAX + SimDuration::from_secs(1),
            SimDuration::MAX
        );
        assert_eq!(
            SimDuration::from_secs(1) - SimDuration::from_secs(2),
            SimDuration::ZERO
        );
        assert_eq!(SimDuration::from_secs(1) * u64::MAX, SimDuration::MAX);
    }

    #[test]
    fn division_by_zero_is_defensive() {
        assert_eq!(SimDuration::from_secs(4) / 0, SimDuration::from_secs(4));
        assert_eq!(SimDuration::from_secs(4) / 2, SimDuration::from_secs(2));
    }

    #[test]
    fn instants_and_spans_compose() {
        let t0 = SimTime::ZERO;
        let t1 = t0 + SimDuration::from_millis(10);
        assert_eq!(t1 - t0, SimDuration::from_millis(10));
        assert_eq!(t0.duration_since(t1), SimDuration::ZERO);
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut c = Clock::new();
        assert_eq!(c.now(), SimTime::ZERO);
        c.advance(SimDuration::from_micros(7));
        c.advance(SimDuration::from_micros(3));
        assert_eq!(c.now().as_nanos(), 10_000);
    }

    #[test]
    fn display_picks_sane_units() {
        assert_eq!(format!("{}", SimDuration::from_nanos(17)), "17ns");
        assert_eq!(format!("{}", SimDuration::from_micros(17)), "17.000us");
        assert_eq!(format!("{}", SimDuration::from_millis(17)), "17.000ms");
        assert_eq!(format!("{}", SimDuration::from_secs(17)), "17.000s");
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = (1..=4).map(SimDuration::from_secs).sum();
        assert_eq!(total, SimDuration::from_secs(10));
    }
}
