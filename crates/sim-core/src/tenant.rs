//! Tenant identity and a deterministic virtual-clock submitter.
//!
//! A *tenant* is one virtual client of the simulated machine: its requests
//! carry its [`TenantId`] through the kernel so queue wait, rusage, and
//! trace events can be attributed to whoever caused them. The
//! [`VirtualSubmitter`] interleaves N tenants' request streams on the
//! virtual clock: each tenant has a lane with a "next request ready at"
//! instant, and the submitter always picks the lane with the earliest
//! ready time (ties broken by lane index, so the interleave is a pure
//! function of the ready times and replays bit-identically).
//!
//! The submitter deliberately knows nothing about what a request *is* —
//! the driver runs the request against the kernel under the chosen
//! tenant, then reschedules the lane at `completion + think` or retires
//! it. Service discipline at the devices is FIFO in submission order;
//! a scheduler proper can replace the pick rule later without touching
//! the attribution machinery.

use crate::time::SimTime;

/// Identity of one tenant (virtual client) of the simulated machine.
///
/// Tenant 0 always exists and is the "main" tenant single-tenant
/// workloads run as; additional tenants are registered explicitly.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TenantId(pub u64);

/// One tenant's lane: when its next request becomes ready, and whether
/// the stream has been retired.
#[derive(Clone, Copy, Debug)]
struct Lane {
    ready: SimTime,
    live: bool,
}

/// Deterministic interleaver of N tenants' request streams.
///
/// Lanes are identified by the index [`VirtualSubmitter::add`] returned;
/// the mapping from lane to [`TenantId`] is the driver's. The submitter
/// holds exactly one entry per lane (no growth per request), so its
/// memory is bounded by the tenant count.
#[derive(Clone, Debug, Default)]
pub struct VirtualSubmitter {
    lanes: Vec<Lane>,
}

impl VirtualSubmitter {
    /// An empty submitter.
    pub fn new() -> VirtualSubmitter {
        VirtualSubmitter::default()
    }

    /// Adds a lane whose first request is ready at `ready`; returns the
    /// lane index.
    pub fn add(&mut self, ready: SimTime) -> usize {
        self.lanes.push(Lane { ready, live: true });
        self.lanes.len() - 1
    }

    /// Total lanes ever added.
    pub fn len(&self) -> usize {
        self.lanes.len()
    }

    /// True when no lanes have been added.
    pub fn is_empty(&self) -> bool {
        self.lanes.is_empty()
    }

    /// Lanes still live (not retired).
    pub fn live(&self) -> usize {
        self.lanes.iter().filter(|l| l.live).count()
    }

    /// The lane to run next: the live lane with the earliest ready time,
    /// lowest index on ties. `None` when every lane has been retired.
    pub fn next(&self) -> Option<usize> {
        let mut best: Option<(SimTime, usize)> = None;
        for (i, l) in self.lanes.iter().enumerate() {
            if !l.live {
                continue;
            }
            match best {
                Some((t, _)) if t <= l.ready => {}
                _ => best = Some((l.ready, i)),
            }
        }
        best.map(|(_, i)| i)
    }

    /// When `lane`'s next request is ready; `None` for retired or unknown
    /// lanes.
    pub fn ready_at(&self, lane: usize) -> Option<SimTime> {
        self.lanes.get(lane).filter(|l| l.live).map(|l| l.ready)
    }

    /// Reschedules `lane`'s next request at `ready`. Unknown lanes are
    /// ignored.
    pub fn reschedule(&mut self, lane: usize, ready: SimTime) {
        if let Some(l) = self.lanes.get_mut(lane) {
            l.ready = ready;
            l.live = true;
        }
    }

    /// Retires `lane`: its stream is exhausted.
    pub fn finish(&mut self, lane: usize) {
        if let Some(l) = self.lanes.get_mut(lane) {
            l.live = false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn picks_earliest_ready_lane_with_index_ties() {
        let mut s = VirtualSubmitter::new();
        let a = s.add(SimTime::from_nanos(100));
        let b = s.add(SimTime::from_nanos(50));
        let c = s.add(SimTime::from_nanos(50));
        assert_eq!(s.next(), Some(b), "earliest ready wins");
        s.reschedule(b, SimTime::from_nanos(200));
        assert_eq!(s.next(), Some(c), "ties break by lowest index");
        s.finish(c);
        assert_eq!(s.next(), Some(a));
        s.finish(a);
        s.finish(b);
        assert_eq!(s.next(), None);
        assert_eq!(s.live(), 0);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn interleave_is_a_pure_function_of_ready_times() {
        let drive = || {
            let mut s = VirtualSubmitter::new();
            for i in 0..8u64 {
                s.add(SimTime::from_nanos(i * 7 % 5));
            }
            let mut order = Vec::new();
            let mut served = [0u32; 8];
            while let Some(lane) = s.next() {
                order.push(lane);
                served[lane] += 1;
                if served[lane] == 3 {
                    s.finish(lane);
                } else {
                    let t = s.ready_at(lane).unwrap();
                    s.reschedule(lane, t + crate::SimDuration::from_nanos(lane as u64 + 1));
                }
            }
            order
        };
        assert_eq!(drive(), drive());
        assert_eq!(drive().len(), 24);
    }

    #[test]
    fn retired_lanes_report_no_ready_time() {
        let mut s = VirtualSubmitter::new();
        let a = s.add(SimTime::ZERO);
        assert_eq!(s.ready_at(a), Some(SimTime::ZERO));
        s.finish(a);
        assert_eq!(s.ready_at(a), None);
        assert_eq!(s.ready_at(99), None);
    }
}
