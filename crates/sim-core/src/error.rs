//! Error codes for the simulated kernel, modeled on Unix `errno`.

use core::fmt;

/// Unix-style error numbers returned by simulated syscalls.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[non_exhaustive]
pub enum Errno {
    /// No such file or directory.
    Enoent,
    /// Bad file descriptor.
    Ebadf,
    /// Invalid argument.
    Einval,
    /// I/O error.
    Eio,
    /// Is a directory.
    Eisdir,
    /// Not a directory.
    Enotdir,
    /// No space left on device.
    Enospc,
    /// Read-only file system.
    Erofs,
    /// File exists.
    Eexist,
    /// Function not implemented.
    Enosys,
    /// Inappropriate ioctl for device.
    Enotty,
    /// File too large.
    Efbig,
    /// Too many open files.
    Emfile,
    /// Cross-device link.
    Exdev,
    /// Directory not empty.
    Enotempty,
    /// Operation not permitted.
    Eperm,
    /// Resource temporarily unavailable.
    Eagain,
    /// Value too large for defined data type.
    Eoverflow,
    /// No medium found (tape not mounted, jukebox slot empty).
    Enomedium,
    /// Stale file handle (inode reclaimed underneath an open descriptor).
    Estale,
    /// Connection timed out (retry budget exhausted by the clock).
    Etimedout,
}

impl Errno {
    /// Returns the conventional short name, e.g. `"ENOENT"`.
    pub fn name(self) -> &'static str {
        match self {
            Errno::Enoent => "ENOENT",
            Errno::Ebadf => "EBADF",
            Errno::Einval => "EINVAL",
            Errno::Eio => "EIO",
            Errno::Eisdir => "EISDIR",
            Errno::Enotdir => "ENOTDIR",
            Errno::Enospc => "ENOSPC",
            Errno::Erofs => "EROFS",
            Errno::Eexist => "EEXIST",
            Errno::Enosys => "ENOSYS",
            Errno::Enotty => "ENOTTY",
            Errno::Efbig => "EFBIG",
            Errno::Emfile => "EMFILE",
            Errno::Exdev => "EXDEV",
            Errno::Enotempty => "ENOTEMPTY",
            Errno::Eperm => "EPERM",
            Errno::Eagain => "EAGAIN",
            Errno::Eoverflow => "EOVERFLOW",
            Errno::Enomedium => "ENOMEDIUM",
            Errno::Estale => "ESTALE",
            Errno::Etimedout => "ETIMEDOUT",
        }
    }

    /// Returns a human-readable description, as `strerror(3)` would.
    pub fn message(self) -> &'static str {
        match self {
            Errno::Enoent => "no such file or directory",
            Errno::Ebadf => "bad file descriptor",
            Errno::Einval => "invalid argument",
            Errno::Eio => "input/output error",
            Errno::Eisdir => "is a directory",
            Errno::Enotdir => "not a directory",
            Errno::Enospc => "no space left on device",
            Errno::Erofs => "read-only file system",
            Errno::Eexist => "file exists",
            Errno::Enosys => "function not implemented",
            Errno::Enotty => "inappropriate ioctl for device",
            Errno::Efbig => "file too large",
            Errno::Emfile => "too many open files",
            Errno::Exdev => "invalid cross-device link",
            Errno::Enotempty => "directory not empty",
            Errno::Eperm => "operation not permitted",
            Errno::Eagain => "resource temporarily unavailable",
            Errno::Eoverflow => "value too large for defined data type",
            Errno::Enomedium => "no medium found",
            Errno::Estale => "stale file handle",
            Errno::Etimedout => "connection timed out",
        }
    }
}

impl fmt::Display for Errno {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.name(), self.message())
    }
}

/// An error from the simulated storage stack: an errno plus context.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SimError {
    /// The error number.
    pub errno: Errno,
    /// Where the error arose (syscall or component name) and any detail.
    pub context: String,
}

impl SimError {
    /// Creates an error with context.
    pub fn new(errno: Errno, context: impl Into<String>) -> Self {
        SimError {
            errno,
            context: context.into(),
        }
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.context.is_empty() {
            write!(f, "{}", self.errno)
        } else {
            write!(f, "{}: {}", self.context, self.errno)
        }
    }
}

impl std::error::Error for SimError {}

impl From<Errno> for SimError {
    fn from(errno: Errno) -> Self {
        SimError {
            errno,
            context: String::new(),
        }
    }
}

/// Result alias used throughout the simulator.
pub type SimResult<T> = Result<T, SimError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errno_names_and_messages() {
        assert_eq!(Errno::Enoent.name(), "ENOENT");
        assert_eq!(Errno::Ebadf.message(), "bad file descriptor");
    }

    #[test]
    fn error_display_includes_context() {
        let e = SimError::new(Errno::Enoent, "open(\"/data/x\")");
        let s = format!("{e}");
        assert!(s.contains("open"));
        assert!(s.contains("ENOENT"));
    }

    #[test]
    fn from_errno_has_empty_context() {
        let e: SimError = Errno::Eio.into();
        assert_eq!(e.errno, Errno::Eio);
        assert_eq!(format!("{e}"), "EIO (input/output error)");
    }
}
