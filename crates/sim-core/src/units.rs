//! Byte sizes and bandwidths.

use core::fmt;

use crate::time::SimDuration;

/// Size of a virtual-memory / page-cache page, matching Linux on x86.
pub const PAGE_SIZE: u64 = 4096;

/// `log2(PAGE_SIZE)`.
pub const PAGE_SHIFT: u32 = 12;

/// Size of a device sector.
pub const SECTOR_SIZE: u64 = 512;

/// One kibibyte.
pub const KIB: u64 = 1 << 10;

/// One mebibyte.
pub const MIB: u64 = 1 << 20;

/// One gibibyte.
pub const GIB: u64 = 1 << 30;

/// A byte count with convenience constructors and human-readable display.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ByteSize(pub u64);

impl ByteSize {
    /// Creates a size from bytes.
    pub const fn bytes(b: u64) -> Self {
        ByteSize(b)
    }

    /// Creates a size from kibibytes.
    pub const fn kib(k: u64) -> Self {
        ByteSize(k * KIB)
    }

    /// Creates a size from mebibytes.
    pub const fn mib(m: u64) -> Self {
        ByteSize(m * MIB)
    }

    /// Creates a size from gibibytes.
    pub const fn gib(g: u64) -> Self {
        ByteSize(g * GIB)
    }

    /// Returns the raw byte count.
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Number of whole pages needed to hold this many bytes (rounds up).
    pub const fn pages(self) -> u64 {
        self.0.div_ceil(PAGE_SIZE)
    }

    /// Number of whole sectors needed to hold this many bytes (rounds up).
    pub const fn sectors(self) -> u64 {
        self.0.div_ceil(SECTOR_SIZE)
    }
}

impl fmt::Debug for ByteSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for ByteSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.0;
        if b >= GIB && b.is_multiple_of(GIB) {
            write!(f, "{}GiB", b / GIB)
        } else if b >= MIB && b.is_multiple_of(MIB) {
            write!(f, "{}MiB", b / MIB)
        } else if b >= KIB && b.is_multiple_of(KIB) {
            write!(f, "{}KiB", b / KIB)
        } else {
            write!(f, "{b}B")
        }
    }
}

/// A data rate in bytes per second.
///
/// Stored as `f64` for the same reason the paper stores SLED bandwidths as
/// floats: the dynamic range (KB/s tape staging to GB/s memory) exceeds what
/// fixed-point arithmetic handles comfortably.
#[derive(Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Bandwidth(f64);

impl Bandwidth {
    /// Creates a bandwidth from bytes per second.
    pub fn bytes_per_sec(b: f64) -> Self {
        Bandwidth(b.max(0.0))
    }

    /// Creates a bandwidth from decimal megabytes per second, the unit the
    /// paper's Tables 2 and 3 use.
    pub fn mb_per_sec(mb: f64) -> Self {
        Bandwidth((mb * 1e6).max(0.0))
    }

    /// Returns the rate in bytes per second.
    pub fn as_bytes_per_sec(self) -> f64 {
        self.0
    }

    /// Returns the rate in decimal megabytes per second.
    pub fn as_mb_per_sec(self) -> f64 {
        self.0 / 1e6
    }

    /// Time to transfer `bytes` at this rate.
    ///
    /// A zero bandwidth yields [`SimDuration::MAX`] for a nonzero transfer:
    /// an unreachable device never completes, and the saturating clock makes
    /// that visible rather than wrapping.
    pub fn transfer_time(self, bytes: u64) -> SimDuration {
        if bytes == 0 {
            return SimDuration::ZERO;
        }
        if self.0 <= 0.0 {
            return SimDuration::MAX;
        }
        SimDuration::from_secs_f64(bytes as f64 / self.0)
    }
}

impl fmt::Debug for Bandwidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for Bandwidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2}MB/s", self.as_mb_per_sec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_size_conversions() {
        assert_eq!(ByteSize::kib(4).as_u64(), 4096);
        assert_eq!(ByteSize::mib(1).pages(), 256);
        assert_eq!(ByteSize::bytes(1).pages(), 1);
        assert_eq!(ByteSize::bytes(0).pages(), 0);
        assert_eq!(ByteSize::bytes(4097).pages(), 2);
        assert_eq!(ByteSize::bytes(1024).sectors(), 2);
    }

    #[test]
    fn byte_size_display() {
        assert_eq!(format!("{}", ByteSize::mib(64)), "64MiB");
        assert_eq!(format!("{}", ByteSize::bytes(513)), "513B");
        assert_eq!(format!("{}", ByteSize::gib(2)), "2GiB");
    }

    #[test]
    fn bandwidth_transfer_time() {
        let bw = Bandwidth::mb_per_sec(1.0);
        assert_eq!(bw.transfer_time(1_000_000), SimDuration::from_secs(1));
        assert_eq!(bw.transfer_time(0), SimDuration::ZERO);
    }

    #[test]
    fn zero_bandwidth_never_completes() {
        let bw = Bandwidth::bytes_per_sec(0.0);
        assert_eq!(bw.transfer_time(1), SimDuration::MAX);
    }

    #[test]
    fn negative_bandwidth_clamps() {
        let bw = Bandwidth::mb_per_sec(-5.0);
        assert_eq!(bw.as_bytes_per_sec(), 0.0);
    }
}
