//! Deterministic random number generation.
//!
//! Every source of randomness in an experiment (device jitter, match
//! placement, file layout) draws from a [`DetRng`] created from an explicit
//! seed, so any figure in EXPERIMENTS.md can be regenerated bit-for-bit.
//!
//! The generator is self-contained (no external crates): a xoshiro256++
//! core whose state is expanded from the 64-bit seed with SplitMix64, the
//! standard seeding procedure recommended by the xoshiro authors. This
//! keeps the default workspace build fully offline.

/// SplitMix64 step: advances `state` and returns the next output.
///
/// Used both to expand seeds into generator state and to mix stream ids
/// when deriving child generators.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A seeded random number generator.
///
/// A xoshiro256++ generator that also remembers its seed for reporting,
/// and can derive child generators for independent streams.
#[derive(Clone, Debug)]
pub struct DetRng {
    seed: u64,
    state: [u64; 4],
}

impl DetRng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let state = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        DetRng { seed, state }
    }

    /// Returns the seed this generator was created from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derives an independent child generator.
    ///
    /// The child seed mixes the parent seed with `stream` via SplitMix64, so
    /// `derive(0)` and `derive(1)` produce unrelated streams even for
    /// adjacent parent seeds.
    pub fn derive(&self, stream: u64) -> DetRng {
        let mut z = self
            .seed
            .wrapping_add(0x9e37_79b9_7f4a_7c15u64.wrapping_mul(stream.wrapping_add(1)));
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        DetRng::new(z)
    }

    /// The xoshiro256++ step: returns the next raw 64-bit output.
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Unbiased `u64` in `[0, span)` via Lemire's multiply-shift rejection.
    fn bounded_u64(&mut self, span: u64) -> u64 {
        debug_assert!(span > 0);
        let mut x = self.next_u64();
        let mut m = (x as u128) * (span as u128);
        let mut low = m as u64;
        if low < span {
            let threshold = span.wrapping_neg() % span;
            while low < threshold {
                x = self.next_u64();
                m = (x as u128) * (span as u128);
                low = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform `u64` in `[lo, hi)`. Returns `lo` when the range is empty.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        if hi <= lo {
            return lo;
        }
        lo + self.bounded_u64(hi - lo)
    }

    /// Uniform `usize` in `[lo, hi)`. Returns `lo` when the range is empty.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        if hi <= lo {
            return lo;
        }
        lo + self.bounded_u64((hi - lo) as u64) as usize
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        // 53 high bits of the raw output give a uniform dyadic in [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in the closed interval `[0, 1]`.
    fn closed_unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64)
    }

    /// A multiplicative jitter factor in `[1 - amp, 1 + amp]`.
    ///
    /// Used by device models to represent background activity; `amp` is
    /// clamped to `[0, 0.99]`.
    pub fn jitter(&mut self, amp: f64) -> f64 {
        let amp = amp.clamp(0.0, 0.99);
        if amp == 0.0 {
            return 1.0;
        }
        1.0 + (self.closed_unit_f64() * 2.0 - 1.0) * amp
    }

    /// A random boolean that is true with probability `p` (clamped to [0,1]).
    pub fn chance(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        if p >= 1.0 {
            return true;
        }
        self.unit_f64() < p
    }

    /// Fills `buf` with uniformly random bytes.
    pub fn fill_bytes(&mut self, buf: &mut [u8]) {
        for chunk in buf.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::new(42);
        let mut b = DetRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.range_u64(0, 1_000_000), b.range_u64(0, 1_000_000));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = DetRng::new(1);
        let mut b = DetRng::new(2);
        let va: Vec<u64> = (0..16).map(|_| a.range_u64(0, u64::MAX)).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.range_u64(0, u64::MAX)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn derived_streams_are_independent() {
        let root = DetRng::new(7);
        let mut c0 = root.derive(0);
        let mut c1 = root.derive(1);
        let v0: Vec<u64> = (0..16).map(|_| c0.range_u64(0, u64::MAX)).collect();
        let v1: Vec<u64> = (0..16).map(|_| c1.range_u64(0, u64::MAX)).collect();
        assert_ne!(v0, v1);
        // Deriving the same stream twice gives the same child.
        let mut c0b = root.derive(0);
        assert_eq!(
            c0b.range_u64(0, u64::MAX),
            DetRng::new(7).derive(0).range_u64(0, u64::MAX)
        );
    }

    #[test]
    fn empty_ranges_return_lo() {
        let mut r = DetRng::new(3);
        assert_eq!(r.range_u64(10, 10), 10);
        assert_eq!(r.range_u64(10, 5), 10);
        assert_eq!(r.range_usize(4, 4), 4);
    }

    #[test]
    fn jitter_stays_in_band() {
        let mut r = DetRng::new(9);
        for _ in 0..1000 {
            let j = r.jitter(0.1);
            assert!((0.9..=1.1).contains(&j), "jitter {j} out of band");
        }
        // Zero amplitude means exactly 1.0.
        assert_eq!(r.jitter(0.0), 1.0);
    }

    #[test]
    fn unit_f64_in_range() {
        let mut r = DetRng::new(11);
        for _ in 0..1000 {
            let x = r.unit_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_bounds_are_respected() {
        let mut r = DetRng::new(13);
        for _ in 0..1000 {
            let v = r.range_u64(100, 108);
            assert!((100..108).contains(&v));
            let u = r.range_usize(3, 5);
            assert!((3..5).contains(&u));
        }
    }

    #[test]
    fn chance_extremes_are_exact() {
        let mut r = DetRng::new(17);
        for _ in 0..100 {
            assert!(r.chance(1.0));
            assert!(!r.chance(0.0));
        }
    }

    #[test]
    fn fill_bytes_is_deterministic_and_covers_buffer() {
        let mut a = DetRng::new(21);
        let mut b = DetRng::new(21);
        let mut ba = [0u8; 37];
        let mut bb = [0u8; 37];
        a.fill_bytes(&mut ba);
        b.fill_bytes(&mut bb);
        assert_eq!(ba, bb);
        // A 37-byte buffer of all zeros after filling would be astronomically
        // unlikely; treat it as a failure to write.
        assert!(ba.iter().any(|&x| x != 0));
    }
}
