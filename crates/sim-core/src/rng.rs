//! Deterministic random number generation.
//!
//! Every source of randomness in an experiment (device jitter, match
//! placement, file layout) draws from a [`DetRng`] created from an explicit
//! seed, so any figure in EXPERIMENTS.md can be regenerated bit-for-bit.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A seeded random number generator.
///
/// Thin wrapper over `rand::StdRng` that also remembers its seed for
/// reporting, and can derive child generators for independent streams.
#[derive(Clone, Debug)]
pub struct DetRng {
    seed: u64,
    inner: StdRng,
}

impl DetRng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        DetRng {
            seed,
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// Returns the seed this generator was created from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derives an independent child generator.
    ///
    /// The child seed mixes the parent seed with `stream` via SplitMix64, so
    /// `derive(0)` and `derive(1)` produce unrelated streams even for
    /// adjacent parent seeds.
    pub fn derive(&self, stream: u64) -> DetRng {
        let mut z = self
            .seed
            .wrapping_add(0x9e37_79b9_7f4a_7c15u64.wrapping_mul(stream.wrapping_add(1)));
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        DetRng::new(z)
    }

    /// Uniform `u64` in `[lo, hi)`. Returns `lo` when the range is empty.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        if hi <= lo {
            return lo;
        }
        self.inner.gen_range(lo..hi)
    }

    /// Uniform `usize` in `[lo, hi)`. Returns `lo` when the range is empty.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        if hi <= lo {
            return lo;
        }
        self.inner.gen_range(lo..hi)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        self.inner.gen_range(0.0..1.0)
    }

    /// A multiplicative jitter factor in `[1 - amp, 1 + amp]`.
    ///
    /// Used by device models to represent background activity; `amp` is
    /// clamped to `[0, 0.99]`.
    pub fn jitter(&mut self, amp: f64) -> f64 {
        let amp = amp.clamp(0.0, 0.99);
        1.0 + self.inner.gen_range(-amp..=amp)
    }

    /// A random boolean that is true with probability `p` (clamped to [0,1]).
    pub fn chance(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        self.inner.gen_bool(p)
    }

    /// Fills `buf` with uniformly random bytes.
    pub fn fill_bytes(&mut self, buf: &mut [u8]) {
        self.inner.fill(buf);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::new(42);
        let mut b = DetRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.range_u64(0, 1_000_000), b.range_u64(0, 1_000_000));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = DetRng::new(1);
        let mut b = DetRng::new(2);
        let va: Vec<u64> = (0..16).map(|_| a.range_u64(0, u64::MAX)).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.range_u64(0, u64::MAX)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn derived_streams_are_independent() {
        let root = DetRng::new(7);
        let mut c0 = root.derive(0);
        let mut c1 = root.derive(1);
        let v0: Vec<u64> = (0..16).map(|_| c0.range_u64(0, u64::MAX)).collect();
        let v1: Vec<u64> = (0..16).map(|_| c1.range_u64(0, u64::MAX)).collect();
        assert_ne!(v0, v1);
        // Deriving the same stream twice gives the same child.
        let mut c0b = root.derive(0);
        assert_eq!(c0b.range_u64(0, u64::MAX), DetRng::new(7).derive(0).range_u64(0, u64::MAX));
    }

    #[test]
    fn empty_ranges_return_lo() {
        let mut r = DetRng::new(3);
        assert_eq!(r.range_u64(10, 10), 10);
        assert_eq!(r.range_u64(10, 5), 10);
        assert_eq!(r.range_usize(4, 4), 4);
    }

    #[test]
    fn jitter_stays_in_band() {
        let mut r = DetRng::new(9);
        for _ in 0..1000 {
            let j = r.jitter(0.1);
            assert!((0.9..=1.1).contains(&j), "jitter {j} out of band");
        }
        // Zero amplitude means exactly 1.0.
        assert_eq!(r.jitter(0.0), 1.0);
    }

    #[test]
    fn unit_f64_in_range() {
        let mut r = DetRng::new(11);
        for _ in 0..1000 {
            let x = r.unit_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
