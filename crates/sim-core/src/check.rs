//! Minimal randomized property-check harness.
//!
//! A dependency-free stand-in for an external property-testing crate: each
//! property runs a fixed number of cases, every case drawing its inputs from
//! a [`DetRng`] seeded deterministically from the property name and case
//! index. Failures report the case index and seed so a single case can be
//! replayed by hand with `DetRng::new(seed)`.
//!
//! Case count defaults to 96 and can be raised or lowered with the
//! `SLEDS_CHECK_CASES` environment variable.

use std::panic::{catch_unwind, AssertUnwindSafe};

use crate::DetRng;

/// Number of cases each property runs.
pub fn cases() -> usize {
    std::env::var("SLEDS_CHECK_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(96)
}

/// FNV-1a over the property name: stable across runs and platforms.
fn name_hash(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Runs `property` for [`cases`] deterministic random cases.
///
/// Panics (re-raising the property's own panic) after printing the failing
/// case index and seed.
pub fn run(name: &str, property: impl Fn(&mut DetRng)) {
    let n = cases();
    for case in 0..n {
        let seed = name_hash(name) ^ (case as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let mut rng = DetRng::new(seed);
            property(&mut rng);
        }));
        if let Err(payload) = outcome {
            eprintln!("property '{name}' failed on case {case}/{n} (seed {seed:#018x})");
            std::panic::resume_unwind(payload);
        }
    }
}

/// A random byte vector with length in `[0, max_len]`.
pub fn bytes(rng: &mut DetRng, max_len: usize) -> Vec<u8> {
    let len = rng.range_usize(0, max_len + 1);
    let mut v = vec![0u8; len];
    rng.fill_bytes(&mut v);
    v
}

/// A random printable-ASCII string with length in `[0, max_len]`.
pub fn ascii(rng: &mut DetRng, max_len: usize) -> String {
    let len = rng.range_usize(0, max_len + 1);
    (0..len)
        .map(|_| rng.range_u64(0x20, 0x7f) as u8 as char)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_executes_every_case() {
        let counter = std::cell::Cell::new(0usize);
        run("counting", |_rng| counter.set(counter.get() + 1));
        assert_eq!(counter.get(), cases());
    }

    #[test]
    fn cases_see_distinct_seeds() {
        let seen = std::cell::RefCell::new(Vec::new());
        run("distinct", |rng| seen.borrow_mut().push(rng.seed()));
        let mut v = seen.borrow().clone();
        v.sort_unstable();
        v.dedup();
        assert_eq!(v.len(), cases());
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn failures_propagate() {
        run("failing", |_rng| panic!("boom"));
    }

    #[test]
    fn generators_respect_bounds() {
        run("generators", |rng| {
            assert!(bytes(rng, 16).len() <= 16);
            let s = ascii(rng, 24);
            assert!(s.len() <= 24);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)));
        });
    }
}
