//! Bounded retry with deterministic exponential backoff.
//!
//! The fault layer (`sleds-faults`) makes device commands fail; this module
//! defines *how hard the kernel tries again*. A [`RetryPolicy`] is a small,
//! copyable value the kernel keeps per device class: a hard attempt bound,
//! an exponential backoff schedule clamped to a ceiling, deterministic
//! jitter drawn from a [`DetRng`](crate::DetRng), and a virtual-clock
//! timeout after which the command is abandoned with `ETIMEDOUT` instead of
//! `EIO`. Every quantity is virtual time — backoff never sleeps a host
//! thread, it just charges the simulated clock.

use crate::error::Errno;
use crate::rng::DetRng;
use crate::time::SimDuration;

/// How a device class retries failed commands.
///
/// The policy is deliberately total: every retry loop in the kernel must be
/// bounded by `max_attempts` *and* by `timeout`, whichever trips first
/// (sledlint D008 enforces that loops reference a policy bound).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RetryPolicy {
    /// Maximum command submissions, including the first (>= 1).
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles each further retry.
    pub base_backoff: SimDuration,
    /// Ceiling the exponential backoff clamps to.
    pub max_backoff: SimDuration,
    /// Total virtual time budget for one logical command, measured from its
    /// first submission. Exceeding it maps the failure to `ETIMEDOUT`.
    pub timeout: SimDuration,
    /// Jitter amplitude applied to each backoff (0.0 = none, 0.25 = +/-25%).
    pub jitter_amp: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_backoff: SimDuration::from_millis(5),
            max_backoff: SimDuration::from_millis(320),
            timeout: SimDuration::from_secs(30),
            jitter_amp: 0.25,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries: one attempt, immediate failure.
    pub fn no_retry() -> Self {
        RetryPolicy {
            max_attempts: 1,
            base_backoff: SimDuration::ZERO,
            max_backoff: SimDuration::ZERO,
            timeout: SimDuration::MAX,
            jitter_amp: 0.0,
        }
    }

    /// True when a failure with this errno is worth resubmitting.
    ///
    /// Only `EAGAIN` — the transient-fault code — is retryable. Hard errors
    /// (`EIO` from an offline device, `ENOMEDIUM`, `EROFS`, ...) would fail
    /// identically on every resubmission of the same virtual scenario.
    pub fn retryable(errno: Errno) -> bool {
        errno == Errno::Eagain
    }

    /// Backoff to charge before retry number `retry` (1-based: the wait
    /// before the second attempt is `backoff_for(1, ..)`).
    ///
    /// Exponential in the retry index, clamped to `max_backoff`, then
    /// jittered deterministically from `rng`. With `jitter_amp == 0.0` the
    /// rng is never consulted and the schedule is exactly
    /// `base * 2^(retry-1)` (clamped), which the property tests pin.
    pub fn backoff_for(&self, retry: u32, rng: &mut DetRng) -> SimDuration {
        if retry == 0 || self.base_backoff.is_zero() {
            return SimDuration::ZERO;
        }
        let doublings = retry.saturating_sub(1).min(63);
        let raw = self.base_backoff * (1u64 << doublings);
        let clamped = raw.min(self.max_backoff);
        if self.jitter_amp <= 0.0 {
            return clamped;
        }
        let factor = rng.jitter(self.jitter_amp);
        SimDuration::from_secs_f64(clamped.as_secs_f64() * factor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_policy_is_bounded() {
        let p = RetryPolicy::default();
        assert!(p.max_attempts >= 1);
        assert!(p.max_backoff >= p.base_backoff);
        assert!(p.timeout > SimDuration::ZERO);
    }

    #[test]
    fn only_eagain_is_retryable() {
        assert!(RetryPolicy::retryable(Errno::Eagain));
        assert!(!RetryPolicy::retryable(Errno::Eio));
        assert!(!RetryPolicy::retryable(Errno::Enomedium));
        assert!(!RetryPolicy::retryable(Errno::Etimedout));
    }

    #[test]
    fn unjittered_backoff_doubles_then_clamps() {
        let p = RetryPolicy {
            max_attempts: 8,
            base_backoff: SimDuration::from_millis(10),
            max_backoff: SimDuration::from_millis(45),
            timeout: SimDuration::from_secs(1),
            jitter_amp: 0.0,
        };
        let mut rng = DetRng::new(1);
        assert_eq!(p.backoff_for(1, &mut rng), SimDuration::from_millis(10));
        assert_eq!(p.backoff_for(2, &mut rng), SimDuration::from_millis(20));
        assert_eq!(p.backoff_for(3, &mut rng), SimDuration::from_millis(40));
        assert_eq!(p.backoff_for(4, &mut rng), SimDuration::from_millis(45));
        assert_eq!(p.backoff_for(63, &mut rng), SimDuration::from_millis(45));
    }

    #[test]
    fn jittered_backoff_stays_within_amplitude() {
        let p = RetryPolicy {
            jitter_amp: 0.25,
            ..RetryPolicy::default()
        };
        let mut rng = DetRng::new(7);
        for retry in 1..6u32 {
            let unjittered = {
                let q = RetryPolicy {
                    jitter_amp: 0.0,
                    ..p
                };
                q.backoff_for(retry, &mut DetRng::new(0))
            };
            let got = p.backoff_for(retry, &mut rng);
            let lo = unjittered.as_secs_f64() * (1.0 - p.jitter_amp) - 1e-9;
            let hi = unjittered.as_secs_f64() * (1.0 + p.jitter_amp) + 1e-9;
            assert!(
                got.as_secs_f64() >= lo && got.as_secs_f64() <= hi,
                "retry {retry}: {got} outside [{lo}, {hi}]"
            );
        }
    }

    #[test]
    fn zero_retry_index_and_no_retry_policy_cost_nothing() {
        let mut rng = DetRng::new(3);
        assert_eq!(
            RetryPolicy::default().backoff_for(0, &mut rng),
            SimDuration::ZERO
        );
        assert_eq!(
            RetryPolicy::no_retry().backoff_for(5, &mut rng),
            SimDuration::ZERO
        );
    }
}
