//! Substrate for the SLEDs storage-system simulator.
//!
//! This crate provides the pieces every other crate in the workspace builds
//! on: a virtual clock ([`SimTime`], [`SimDuration`]), byte/bandwidth units,
//! deterministic random number generation, error codes modeled on Unix
//! `errno`, and the statistics used by the evaluation harness (means,
//! Student-t confidence intervals, CDFs).
//!
//! Everything in the simulator is *virtual time*: devices report how long an
//! operation would take, the kernel advances the clock, and elapsed times in
//! the reproduced figures are sums of those model costs. No wall-clock time
//! is ever consulted, which makes every experiment deterministic and
//! repeatable.

pub mod check;
pub mod error;
pub mod retry;
pub mod rng;
pub mod stats;
pub mod tenant;
pub mod time;
pub mod units;

pub use error::{Errno, SimError, SimResult};
pub use retry::RetryPolicy;
pub use rng::DetRng;
pub use tenant::{TenantId, VirtualSubmitter};
pub use time::{Clock, SimDuration, SimTime};
pub use units::{Bandwidth, ByteSize, PAGE_SHIFT, PAGE_SIZE, SECTOR_SIZE};
