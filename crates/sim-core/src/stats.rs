//! Statistics used by the evaluation harness.
//!
//! The paper reports means with 90% confidence intervals over twelve runs,
//! and one cumulative distribution function (Figure 13). This module
//! implements exactly that: sample summaries with Student-t intervals and an
//! empirical CDF.

/// Two-sided Student-t critical values at 90% confidence (alpha = 0.10),
/// indexed by degrees of freedom 1..=30.
const T90: [f64; 30] = [
    6.314, 2.920, 2.353, 2.132, 2.015, 1.943, 1.895, 1.860, 1.833, 1.812, 1.796, 1.782, 1.771,
    1.761, 1.753, 1.746, 1.740, 1.734, 1.729, 1.725, 1.721, 1.717, 1.714, 1.711, 1.708, 1.706,
    1.703, 1.701, 1.699, 1.697,
];

/// Normal-approximation critical value for large samples.
const Z90: f64 = 1.645;

/// Returns the two-sided 90% Student-t critical value for `df` degrees of
/// freedom, falling back to the normal approximation for large `df`.
pub fn t_critical_90(df: usize) -> f64 {
    if df == 0 {
        // A single sample has no spread estimate; the caller reports a
        // zero-width interval, so the multiplier is irrelevant.
        return 0.0;
    }
    if df <= T90.len() {
        T90[df - 1]
    } else {
        Z90
    }
}

/// Summary of a sample of measurements: mean, spread, and a 90% CI.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Summary {
    /// Number of observations.
    pub n: usize,
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (Bessel-corrected). Zero when `n < 2`.
    pub stddev: f64,
    /// Minimum observation.
    pub min: f64,
    /// Maximum observation.
    pub max: f64,
    /// Half-width of the two-sided 90% confidence interval on the mean.
    pub ci90: f64,
}

impl Summary {
    /// Summarizes a sample. Returns `None` for an empty sample.
    pub fn of(xs: &[f64]) -> Option<Summary> {
        if xs.is_empty() {
            return None;
        }
        let n = xs.len();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for &x in xs {
            min = min.min(x);
            max = max.max(x);
        }
        let stddev = if n >= 2 {
            let var = xs.iter().map(|&x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1) as f64;
            var.sqrt()
        } else {
            0.0
        };
        let ci90 = if n >= 2 {
            t_critical_90(n - 1) * stddev / (n as f64).sqrt()
        } else {
            0.0
        };
        Some(Summary {
            n,
            mean,
            stddev,
            min,
            max,
            ci90,
        })
    }
}

/// An empirical cumulative distribution function.
#[derive(Clone, Debug)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Builds an ECDF from a sample. Returns `None` for an empty sample.
    pub fn of(xs: &[f64]) -> Option<Ecdf> {
        if xs.is_empty() {
            return None;
        }
        let mut sorted = xs.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in ECDF sample"));
        Some(Ecdf { sorted })
    }

    /// Fraction of observations less than or equal to `x`.
    pub fn fraction_at(&self, x: f64) -> f64 {
        // Index of the first element strictly greater than x.
        let idx = self.sorted.partition_point(|&v| v <= x);
        idx as f64 / self.sorted.len() as f64
    }

    /// The `q`-quantile (`q` in [0,1]) by the nearest-rank method.
    pub fn quantile(&self, q: f64) -> f64 {
        let q = q.clamp(0.0, 1.0);
        let n = self.sorted.len();
        if q <= 0.0 {
            return self.sorted[0];
        }
        let rank = (q * n as f64).ceil() as usize;
        self.sorted[rank.clamp(1, n) - 1]
    }

    /// Iterates the step points `(x, F(x))` of the ECDF in ascending order.
    pub fn steps(&self) -> impl Iterator<Item = (f64, f64)> + '_ {
        let n = self.sorted.len() as f64;
        self.sorted
            .iter()
            .enumerate()
            .map(move |(i, &x)| (x, (i + 1) as f64 / n))
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True when the ECDF holds no observations (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }
}

/// A fixed-bucket latency histogram over power-of-two nanosecond buckets.
///
/// Bucket `i` counts observations `x` with `2^i <= x < 2^(i+1)` (bucket 0
/// also absorbs zero). Sixty-four buckets cover the full `u64` nanosecond
/// range, so recording never saturates into an "overflow" bucket and two
/// identical runs produce identical bucket vectors. Everything is integer
/// arithmetic — no floats, no allocation after construction — which keeps
/// the histogram safe to embed in kernel-path metrics.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LogHistogram {
    buckets: [u64; 64],
    /// Per-bucket sum of observations (saturating), parallel to `buckets`.
    /// Lets quantile queries resolve to the count-weighted mean of the
    /// bucket holding the rank instead of the lossy power-of-two floor.
    sums: [u64; 64],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram::new()
    }
}

impl LogHistogram {
    /// Creates an empty histogram.
    pub const fn new() -> LogHistogram {
        LogHistogram {
            buckets: [0; 64],
            sums: [0; 64],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Bucket index for a nanosecond observation: floor(log2(x)), with zero
    /// mapping to bucket 0.
    pub fn bucket_of(ns: u64) -> usize {
        (63 - ns.max(1).leading_zeros()) as usize
    }

    /// Lower bound (inclusive) of bucket `i` in nanoseconds.
    pub fn bucket_floor(i: usize) -> u64 {
        if i == 0 {
            0
        } else {
            1u64 << i.min(63)
        }
    }

    /// Records one observation.
    pub fn record(&mut self, ns: u64) {
        let b = Self::bucket_of(ns);
        self.buckets[b] += 1;
        self.sums[b] = self.sums[b].saturating_add(ns);
        self.count += 1;
        self.sum = self.sum.saturating_add(ns);
        self.min = self.min.min(ns);
        self.max = self.max.max(ns);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observations in nanoseconds (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest observation, or zero when empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest observation, or zero when empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean observation in nanoseconds (integer division), zero when empty.
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// Nearest-rank `q`-quantile (`q` in [0,1]), resolved to the *floor* of
    /// the bucket holding that rank. Zero when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::bucket_floor(i);
            }
        }
        self.max
    }

    /// Nearest-rank `q`-quantile resolved to the *count-weighted mean* of
    /// the bucket holding that rank (integer division). Exact whenever the
    /// bucket holds a single distinct value — in particular for an empty
    /// histogram (zero), a single sample, and samples sitting exactly on
    /// bucket boundaries — and always within `[min, max]` otherwise,
    /// because a bucket's mean is bounded by its own observations. Bucket
    /// means are monotone across buckets (bucket `i+1`'s floor exceeds
    /// bucket `i`'s ceiling), so `p50() <= p90() <= p99() <= p999()`
    /// always holds.
    pub fn quantile_mean(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return self.sums[i].checked_div(c).unwrap_or(0);
            }
        }
        self.max
    }

    /// Median observation (count-weighted bucket mean).
    pub fn p50(&self) -> u64 {
        self.quantile_mean(0.50)
    }

    /// 90th-percentile observation (count-weighted bucket mean).
    pub fn p90(&self) -> u64 {
        self.quantile_mean(0.90)
    }

    /// 99th-percentile observation (count-weighted bucket mean).
    pub fn p99(&self) -> u64 {
        self.quantile_mean(0.99)
    }

    /// 99.9th-percentile observation (count-weighted bucket mean) — the
    /// tail the replay diff reports alongside p50/p99.
    pub fn p999(&self) -> u64 {
        self.quantile_mean(0.999)
    }

    /// Iterates the non-empty buckets as `(floor_ns, count)` pairs in
    /// ascending bucket order.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (Self::bucket_floor(i), c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_constant_sample() {
        let s = Summary::of(&[5.0; 12]).unwrap();
        assert_eq!(s.n, 12);
        assert_eq!(s.mean, 5.0);
        assert_eq!(s.stddev, 0.0);
        assert_eq!(s.ci90, 0.0);
        assert_eq!(s.min, 5.0);
        assert_eq!(s.max, 5.0);
    }

    #[test]
    fn summary_matches_hand_computation() {
        // Sample {1,2,3,4}: mean 2.5, var 5/3, sd ~1.2910.
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert!((s.stddev - (5.0f64 / 3.0).sqrt()).abs() < 1e-12);
        // CI half-width: t(3)=2.353 * sd / 2.
        let expect = 2.353 * (5.0f64 / 3.0).sqrt() / 2.0;
        assert!((s.ci90 - expect).abs() < 1e-9);
    }

    #[test]
    fn summary_empty_and_singleton() {
        assert!(Summary::of(&[]).is_none());
        let s = Summary::of(&[3.0]).unwrap();
        assert_eq!(s.stddev, 0.0);
        assert_eq!(s.ci90, 0.0);
    }

    #[test]
    fn t_table_boundaries() {
        assert_eq!(t_critical_90(1), 6.314);
        assert_eq!(t_critical_90(11), 1.796); // 12 runs, as the paper used
        assert_eq!(t_critical_90(30), 1.697);
        assert_eq!(t_critical_90(31), Z90);
        assert_eq!(t_critical_90(0), 0.0);
    }

    #[test]
    fn ecdf_fractions_and_quantiles() {
        let e = Ecdf::of(&[4.0, 1.0, 3.0, 2.0]).unwrap();
        assert_eq!(e.fraction_at(0.5), 0.0);
        assert_eq!(e.fraction_at(1.0), 0.25);
        assert_eq!(e.fraction_at(2.5), 0.5);
        assert_eq!(e.fraction_at(10.0), 1.0);
        assert_eq!(e.quantile(0.0), 1.0);
        assert_eq!(e.quantile(0.5), 2.0);
        assert_eq!(e.quantile(1.0), 4.0);
    }

    #[test]
    fn ecdf_steps_are_monotonic() {
        let e = Ecdf::of(&[5.0, 1.0, 9.0, 9.0, 2.0]).unwrap();
        let pts: Vec<(f64, f64)> = e.steps().collect();
        assert_eq!(pts.len(), 5);
        for w in pts.windows(2) {
            assert!(w[0].0 <= w[1].0);
            assert!(w[0].1 < w[1].1);
        }
        assert_eq!(pts.last().unwrap().1, 1.0);
    }

    #[test]
    fn ecdf_empty_is_none() {
        assert!(Ecdf::of(&[]).is_none());
    }

    #[test]
    fn log_histogram_bucketing() {
        assert_eq!(LogHistogram::bucket_of(0), 0);
        assert_eq!(LogHistogram::bucket_of(1), 0);
        assert_eq!(LogHistogram::bucket_of(2), 1);
        assert_eq!(LogHistogram::bucket_of(3), 1);
        assert_eq!(LogHistogram::bucket_of(4), 2);
        assert_eq!(LogHistogram::bucket_of(u64::MAX), 63);
        assert_eq!(LogHistogram::bucket_floor(0), 0);
        assert_eq!(LogHistogram::bucket_floor(10), 1024);
    }

    #[test]
    fn log_histogram_records_and_summarizes() {
        let mut h = LogHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0);
        assert_eq!(h.quantile(0.5), 0);
        for ns in [100u64, 200, 300, 5_000] {
            h.record(ns);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 5_600);
        assert_eq!(h.mean(), 1_400);
        assert_eq!(h.min(), 100);
        assert_eq!(h.max(), 5_000);
        // p50 rank 2 → 200 lives in bucket 7 (floor 128).
        assert_eq!(h.quantile(0.5), 128);
        // p100 → bucket of 5000 is 12 (floor 4096).
        assert_eq!(h.quantile(1.0), 4096);
        let nz: Vec<(u64, u64)> = h.nonzero_buckets().collect();
        assert_eq!(nz, vec![(64, 1), (128, 1), (256, 1), (4096, 1)]);
    }

    #[test]
    fn quantile_mean_is_exact_on_bucket_boundaries() {
        // Powers of two each live alone in their bucket, so every quantile
        // resolves to the exact observation, not a lossy floor.
        let mut h = LogHistogram::new();
        for ns in [1u64, 2, 4, 8, 16, 32, 64, 128, 256, 512] {
            h.record(ns);
        }
        assert_eq!(h.p50(), 16); // rank 5 of 10
        assert_eq!(h.p90(), 256); // rank 9
        assert_eq!(h.p99(), 512); // rank 10
        assert_eq!(h.quantile_mean(0.0), 1);
        assert_eq!(h.quantile_mean(1.0), 512);
    }

    #[test]
    fn quantile_mean_empty_histogram_is_zero() {
        let h = LogHistogram::new();
        assert_eq!(h.p50(), 0);
        assert_eq!(h.p90(), 0);
        assert_eq!(h.p99(), 0);
        assert_eq!(h.quantile_mean(1.0), 0);
    }

    #[test]
    fn quantile_mean_single_sample_is_that_sample() {
        let mut h = LogHistogram::new();
        h.record(18_350_081); // not a power of two; floor would lose 2.3ms
        assert_eq!(h.p50(), 18_350_081);
        assert_eq!(h.p90(), 18_350_081);
        assert_eq!(h.p99(), 18_350_081);
        // The legacy floor quantile is still the bucket floor.
        assert_eq!(h.quantile(0.5), 1 << 24);
    }

    #[test]
    fn quantile_mean_uses_bucket_mean_for_mixed_buckets() {
        let mut h = LogHistogram::new();
        // 100 and 120 share bucket 6; their count-weighted mean is 110.
        h.record(100);
        h.record(120);
        assert_eq!(h.p50(), 110);
        assert!(h.p50() >= h.min() && h.p50() <= h.max());
    }

    #[test]
    fn p999_resolves_the_far_tail() {
        let mut h = LogHistogram::new();
        // 99 fast observations and one 60ms outlier: p99 stays in the
        // fast bucket (rank ceil(0.99·100) = 99), p999 must surface the
        // outlier (rank ceil(0.999·100) = 100). With 1000 samples the
        // nearest-rank p999 would be rank 999 — still fast — so a 1-in-N
        // outlier only shows at p999 when N < 1000.
        for _ in 0..99 {
            h.record(1_000);
        }
        h.record(60_000_000);
        assert_eq!(h.p99(), 1_000);
        assert_eq!(h.p999(), 60_000_000);
    }

    #[test]
    fn quantile_means_are_monotone_under_random_load() {
        // Property: p50 <= p90 <= p99 <= p999 for arbitrary observation
        // mixes. Deterministic pseudo-random cases, so the pin replays.
        for case in 0..64u64 {
            let mut rng = crate::DetRng::new(0x9997_0000 + case);
            let mut h = LogHistogram::new();
            let n = rng.range_u64(1, 5_000);
            for _ in 0..n {
                // Span many buckets: exponentially distributed magnitudes.
                let shift = rng.range_u64(0, 40);
                h.record(rng.range_u64(0, 1 << shift));
            }
            let (p50, p90, p99, p999) = (h.p50(), h.p90(), h.p99(), h.p999());
            assert!(p50 <= p90, "case {case}: p50 {p50} > p90 {p90}");
            assert!(p90 <= p99, "case {case}: p90 {p90} > p99 {p99}");
            assert!(p99 <= p999, "case {case}: p99 {p99} > p999 {p999}");
            assert!(p999 <= h.max(), "case {case}: p999 {p999} > max");
        }
    }

    #[test]
    fn log_histogram_replays_identically() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        for ns in 0..2_000u64 {
            a.record(ns * 37);
            b.record(ns * 37);
        }
        assert_eq!(a, b);
    }
}
