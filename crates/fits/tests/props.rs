//! Property tests for the FITS substrate: header/codec round trips and
//! streaming I/O invariants over the simulated kernel.
//!
//! Runs under the in-repo `check` harness; enable with
//! `cargo test -p sleds-fits --features proptests`.

use sleds_devices::DiskDevice;
use sleds_fits::{header::padded_len, Bitpix, FitsHeader, FitsReader, FitsWriter, BLOCK_SIZE};
use sleds_fs::Kernel;
use sleds_sim_core::{check, DetRng};

fn random_bitpix(rng: &mut DetRng) -> Bitpix {
    [
        Bitpix::U8,
        Bitpix::I16,
        Bitpix::I32,
        Bitpix::F32,
        Bitpix::F64,
    ][rng.range_usize(0, 5)]
}

/// Header encode/parse round trips for arbitrary shapes.
#[test]
fn header_roundtrip() {
    check::run("header_roundtrip", |rng| {
        let bitpix = random_bitpix(rng);
        let naxes = rng.range_usize(0, 4);
        let axes: Vec<usize> = (0..naxes).map(|_| rng.range_usize(1, 10_000)).collect();
        let h = FitsHeader::primary(bitpix, &axes);
        let enc = h.encode();
        assert!(enc.len().is_multiple_of(BLOCK_SIZE));
        let (parsed, consumed) = FitsHeader::parse(&enc).unwrap();
        assert_eq!(consumed, enc.len());
        assert_eq!(parsed.bitpix().unwrap(), bitpix);
        assert_eq!(parsed.axes().unwrap(), axes);
    });
}

/// Integer codecs round trip exactly for in-range integral values;
/// float codecs round trip exactly for f32-representable values.
#[test]
fn codec_roundtrip() {
    check::run("codec_roundtrip", |rng| {
        let bitpix = random_bitpix(rng);
        let n = rng.range_usize(0, 200);
        let values: Vec<f64> = (0..n)
            .map(|_| rng.range_u64(0, 60_000) as f64 - 30_000.0)
            .collect();
        let enc = bitpix.encode(&values);
        assert_eq!(enc.len(), values.len() * bitpix.bytes_per_pixel());
        let dec = bitpix.decode(&enc).unwrap();
        for (orig, got) in values.iter().zip(&dec) {
            let expect = match bitpix {
                Bitpix::U8 => orig.clamp(0.0, 255.0),
                Bitpix::I16 => orig.clamp(i16::MIN as f64, i16::MAX as f64),
                _ => *orig,
            };
            assert_eq!(*got, expect);
        }
    });
}

/// padded_len is the least multiple of the block size >= input.
#[test]
fn padded_len_properties() {
    check::run("padded_len_properties", |rng| {
        let n = rng.range_u64(0, 10_000_000);
        let p = padded_len(n);
        assert!(p >= n);
        assert!(p.is_multiple_of(BLOCK_SIZE as u64));
        assert!(p < n + BLOCK_SIZE as u64);
    });
}

/// Full write/read cycles through the kernel preserve pixels exactly,
/// for arbitrary image shapes and chunked writes.
#[test]
fn kernel_io_roundtrip() {
    check::run("kernel_io_roundtrip", |rng| {
        let width = rng.range_usize(1, 64);
        let height = rng.range_usize(1, 32);
        let chunk = rng.range_usize(1, 512);
        let mut k = Kernel::table3();
        k.mkdir("/d").unwrap();
        k.mount_disk("/d", DiskDevice::table3_disk("hda")).unwrap();
        let n = width * height;
        let values: Vec<f64> = (0..n).map(|_| rng.range_u64(0, 30_000) as f64).collect();
        let mut w =
            FitsWriter::create(&mut k, "/d/img.fits", Bitpix::I32, &[width, height]).unwrap();
        for c in values.chunks(chunk) {
            w.write_pixels(&mut k, c).unwrap();
        }
        let fd = w.finish(&mut k).unwrap();
        k.close(fd).unwrap();

        let r = FitsReader::open(&mut k, "/d/img.fits").unwrap();
        assert_eq!(r.pixel_count(), n as u64);
        // Read back in a different chunking.
        let mut got = Vec::with_capacity(n);
        let mut idx = 0u64;
        while (idx as usize) < n {
            let part = r.read_pixels_at(&mut k, idx, chunk + 7).unwrap();
            assert!(!part.is_empty());
            idx += part.len() as u64;
            got.extend(part);
        }
        assert_eq!(got, values);
        let size = k.stat("/d/img.fits").unwrap().size;
        assert!(size.is_multiple_of(BLOCK_SIZE as u64));
    });
}
