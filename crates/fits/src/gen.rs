//! Synthetic astronomical images.
//!
//! The paper ran fimhisto/fimgbin on professional FITS data we do not have;
//! per DESIGN.md's substitution rule this generator produces a star field —
//! background sky noise plus point sources with a plausible brightness
//! distribution — whose byte count, pixel type and value spread exercise the
//! same code paths (format conversion, histogram binning, boxcar rebinning).

use sleds_sim_core::DetRng;

use crate::codec::Bitpix;
use crate::header::FitsHeader;

/// Generates a complete FITS file (header + data + padding) as raw bytes
/// for a `width x height` image of `bitpix` pixels.
///
/// Deterministic in `seed`. Background is sky noise around 100 counts;
/// roughly one pixel in 2000 hosts a star whose brightness follows a
/// power-law-ish tail, clamped to the pixel type's range by the codec.
pub fn generate_image_bytes(width: usize, height: usize, bitpix: Bitpix, seed: u64) -> Vec<u8> {
    let mut rng = DetRng::new(seed);
    let header = FitsHeader::primary(bitpix, &[width, height]);
    let mut out = header.encode();

    // Generate row by row to bound peak memory.
    let mut row = Vec::with_capacity(width);
    for _y in 0..height {
        row.clear();
        for _x in 0..width {
            let sky = 100.0 + 15.0 * (rng.unit_f64() + rng.unit_f64() - 1.0);
            let v = if rng.chance(0.0005) {
                // A star: inverse-power brightness tail.
                let u = rng.unit_f64().max(1e-9);
                sky + 500.0 / u.powf(0.7)
            } else {
                sky
            };
            row.push(v);
        }
        out.extend_from_slice(&bitpix.encode(&row));
    }
    // Pad to a block boundary.
    while !out.len().is_multiple_of(crate::header::BLOCK_SIZE) {
        out.push(0);
    }
    out
}

/// Picks image dimensions whose I16 data is close to `target_bytes`,
/// keeping rows 1024 pixels wide (so sizes sweep like the paper's 8–64 MB
/// test files).
pub fn dimensions_for_bytes(target_bytes: u64, bitpix: Bitpix) -> (usize, usize) {
    let width = 1024usize;
    let row_bytes = (width * bitpix.bytes_per_pixel()) as u64;
    let height = (target_bytes / row_bytes).max(1) as usize;
    (width, height)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::header::BLOCK_SIZE;

    #[test]
    fn generated_file_parses() {
        let bytes = generate_image_bytes(64, 32, Bitpix::I16, 42);
        assert!(bytes.len().is_multiple_of(BLOCK_SIZE));
        let (h, consumed) = FitsHeader::parse(&bytes).unwrap();
        assert_eq!(h.axes().unwrap(), vec![64, 32]);
        assert_eq!(h.pixel_count().unwrap(), 64 * 32);
        let data = &bytes[consumed..consumed + 64 * 32 * 2];
        let values = Bitpix::I16.decode(data).unwrap();
        // Sky background near 100 counts.
        let mean: f64 = values.iter().sum::<f64>() / values.len() as f64;
        assert!((80.0..400.0).contains(&mean), "mean {mean}");
    }

    #[test]
    fn deterministic_in_seed() {
        let a = generate_image_bytes(32, 32, Bitpix::F32, 7);
        let b = generate_image_bytes(32, 32, Bitpix::F32, 7);
        let c = generate_image_bytes(32, 32, Bitpix::F32, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn contains_stars_above_background() {
        let bytes = generate_image_bytes(256, 256, Bitpix::F64, 3);
        let (h, consumed) = FitsHeader::parse(&bytes).unwrap();
        let n = h.pixel_count().unwrap() as usize;
        let values = Bitpix::F64
            .decode(&bytes[consumed..consumed + n * 8])
            .unwrap();
        let bright = values.iter().filter(|&&v| v > 500.0).count();
        assert!(bright > 5, "expected some stars, got {bright}");
        assert!(bright < n / 100, "too many stars: {bright}");
    }

    #[test]
    fn dimensions_hit_target_size() {
        let (w, h) = dimensions_for_bytes(8 << 20, Bitpix::I16);
        let bytes = (w * h * 2) as u64;
        let err = (bytes as f64 - (8 << 20) as f64).abs() / (8 << 20) as f64;
        assert!(err < 0.01, "size error {err}");
    }
}
