//! FITS headers: 80-character cards in 2880-byte blocks.

use crate::codec::Bitpix;
use crate::format_error;
use sleds_sim_core::SimResult;

/// Size of a FITS logical block.
pub const BLOCK_SIZE: usize = 2880;

/// Size of one header card.
pub const CARD_SIZE: usize = 80;

/// Cards per block.
pub const CARDS_PER_BLOCK: usize = BLOCK_SIZE / CARD_SIZE;

/// A parsed FITS header: ordered keyword/value cards.
#[derive(Clone, Debug, PartialEq)]
pub struct FitsHeader {
    cards: Vec<(String, String)>,
}

impl FitsHeader {
    /// Builds a primary HDU header for an image.
    pub fn primary(bitpix: Bitpix, axes: &[usize]) -> Self {
        let mut h = FitsHeader { cards: Vec::new() };
        h.push("SIMPLE", "T");
        h.push("BITPIX", &bitpix.code().to_string());
        h.push("NAXIS", &axes.len().to_string());
        for (i, n) in axes.iter().enumerate() {
            h.push(&format!("NAXIS{}", i + 1), &n.to_string());
        }
        h
    }

    /// Builds an IMAGE extension header (used for appended data such as
    /// fimhisto's histogram).
    pub fn image_extension(bitpix: Bitpix, axes: &[usize]) -> Self {
        let mut h = FitsHeader { cards: Vec::new() };
        h.push("XTENSION", "'IMAGE   '");
        h.push("BITPIX", &bitpix.code().to_string());
        h.push("NAXIS", &axes.len().to_string());
        for (i, n) in axes.iter().enumerate() {
            h.push(&format!("NAXIS{}", i + 1), &n.to_string());
        }
        h.push("PCOUNT", "0");
        h.push("GCOUNT", "1");
        h
    }

    /// Appends a card.
    pub fn push(&mut self, keyword: &str, value: &str) {
        self.cards.push((keyword.to_string(), value.to_string()));
    }

    /// Looks up the (first) value for a keyword.
    pub fn get(&self, keyword: &str) -> Option<&str> {
        self.cards
            .iter()
            .find(|(k, _)| k == keyword)
            .map(|(_, v)| v.as_str())
    }

    /// Integer-valued card lookup.
    pub fn get_int(&self, keyword: &str) -> SimResult<i64> {
        let v = self
            .get(keyword)
            .ok_or_else(|| format_error(format!("missing {keyword}")))?;
        v.trim()
            .parse()
            .map_err(|_| format_error(format!("{keyword} = {v:?} is not an integer")))
    }

    /// The pixel type.
    pub fn bitpix(&self) -> SimResult<Bitpix> {
        Bitpix::from_code(self.get_int("BITPIX")? as i32)
    }

    /// The axis lengths `NAXIS1..NAXISn`.
    pub fn axes(&self) -> SimResult<Vec<usize>> {
        let n = self.get_int("NAXIS")?;
        if !(0..=8).contains(&n) {
            return Err(format_error(format!("NAXIS = {n} out of range")));
        }
        (1..=n)
            .map(|i| {
                let len = self.get_int(&format!("NAXIS{i}"))?;
                if len < 0 {
                    return Err(format_error(format!("NAXIS{i} negative")));
                }
                Ok(len as usize)
            })
            .collect()
    }

    /// Total pixels in the data unit.
    pub fn pixel_count(&self) -> SimResult<u64> {
        Ok(self.axes()?.iter().map(|&n| n as u64).product::<u64>()
            * if self.axes()?.is_empty() { 0 } else { 1 })
    }

    /// Bytes of data (before padding).
    pub fn data_bytes(&self) -> SimResult<u64> {
        Ok(self.pixel_count()? * self.bitpix()?.bytes_per_pixel() as u64)
    }

    /// Number of cards, excluding END.
    pub fn card_count(&self) -> usize {
        self.cards.len()
    }

    /// Encodes the header as whole blocks, END-terminated and padded.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        for (k, v) in &self.cards {
            let card = format!("{:<8}= {:>20}", truncate(k, 8), truncate(v, 20));
            push_card(&mut out, &card);
        }
        push_card(&mut out, "END");
        while !out.len().is_multiple_of(BLOCK_SIZE) {
            out.push(b' ');
        }
        out
    }

    /// Parses a header from `bytes`, returning it and the number of bytes
    /// consumed (a whole number of blocks).
    pub fn parse(bytes: &[u8]) -> SimResult<(FitsHeader, usize)> {
        let mut cards = Vec::new();
        let mut pos = 0;
        loop {
            if pos + CARD_SIZE > bytes.len() {
                return Err(format_error("header not END-terminated"));
            }
            let card = &bytes[pos..pos + CARD_SIZE];
            pos += CARD_SIZE;
            let text =
                std::str::from_utf8(card).map_err(|_| format_error("non-ASCII header card"))?;
            let keyword = text[..8.min(text.len())].trim_end();
            if keyword == "END" {
                break;
            }
            if keyword.is_empty() || keyword == "COMMENT" || keyword == "HISTORY" {
                continue;
            }
            let value = match text.get(8..10) {
                Some("= ") => text[10..].split('/').next().unwrap_or("").trim(),
                _ => "",
            };
            cards.push((keyword.to_string(), value.to_string()));
        }
        // Consume padding to the block boundary.
        let consumed = pos.div_ceil(BLOCK_SIZE) * BLOCK_SIZE;
        if consumed > bytes.len() {
            return Err(format_error("truncated header block"));
        }
        Ok((FitsHeader { cards }, consumed))
    }
}

fn truncate(s: &str, n: usize) -> &str {
    &s[..s.len().min(n)]
}

fn push_card(out: &mut Vec<u8>, text: &str) {
    let mut card = [b' '; CARD_SIZE];
    let bytes = text.as_bytes();
    card[..bytes.len().min(CARD_SIZE)].copy_from_slice(&bytes[..bytes.len().min(CARD_SIZE)]);
    out.extend_from_slice(&card);
}

/// Pads a data length to a whole number of blocks.
pub fn padded_len(data_bytes: u64) -> u64 {
    data_bytes.div_ceil(BLOCK_SIZE as u64) * BLOCK_SIZE as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_parse_roundtrip() {
        let h = FitsHeader::primary(Bitpix::I16, &[512, 256]);
        let enc = h.encode();
        assert!(enc.len().is_multiple_of(BLOCK_SIZE));
        let (parsed, consumed) = FitsHeader::parse(&enc).unwrap();
        assert_eq!(consumed, enc.len());
        assert_eq!(parsed.get("SIMPLE").unwrap(), "T");
        assert_eq!(parsed.bitpix().unwrap(), Bitpix::I16);
        assert_eq!(parsed.axes().unwrap(), vec![512, 256]);
    }

    #[test]
    fn data_bytes_and_pixels() {
        let h = FitsHeader::primary(Bitpix::F32, &[100, 10]);
        assert_eq!(h.pixel_count().unwrap(), 1000);
        assert_eq!(h.data_bytes().unwrap(), 4000);
        let empty = FitsHeader::primary(Bitpix::U8, &[]);
        assert_eq!(empty.pixel_count().unwrap(), 0);
    }

    #[test]
    fn extension_header_has_xtension() {
        let h = FitsHeader::image_extension(Bitpix::F64, &[64]);
        let enc = h.encode();
        let (parsed, _) = FitsHeader::parse(&enc).unwrap();
        assert!(parsed.get("XTENSION").unwrap().contains("IMAGE"));
        assert_eq!(parsed.axes().unwrap(), vec![64]);
    }

    #[test]
    fn parse_rejects_unterminated() {
        let junk = vec![b' '; BLOCK_SIZE];
        assert!(FitsHeader::parse(&junk[..CARD_SIZE]).is_err());
    }

    #[test]
    fn parse_skips_comments() {
        let mut raw = Vec::new();
        push_card(&mut raw, "SIMPLE  =                    T");
        push_card(&mut raw, "COMMENT this is ignored");
        push_card(&mut raw, "BITPIX  =                    8");
        push_card(&mut raw, "NAXIS   =                    0");
        push_card(&mut raw, "END");
        while !raw.len().is_multiple_of(BLOCK_SIZE) {
            raw.push(b' ');
        }
        let (h, _) = FitsHeader::parse(&raw).unwrap();
        assert_eq!(h.card_count(), 3);
        assert_eq!(h.bitpix().unwrap(), Bitpix::U8);
    }

    #[test]
    fn value_comments_are_stripped() {
        let mut raw = Vec::new();
        push_card(&mut raw, "SIMPLE  =                    T");
        push_card(&mut raw, "BITPIX  =                   16 / two-byte ints");
        push_card(&mut raw, "NAXIS   =                    0");
        push_card(&mut raw, "END");
        while !raw.len().is_multiple_of(BLOCK_SIZE) {
            raw.push(b' ');
        }
        let (h, _) = FitsHeader::parse(&raw).unwrap();
        assert_eq!(h.bitpix().unwrap(), Bitpix::I16);
    }

    #[test]
    fn padded_len_rounds_to_blocks() {
        assert_eq!(padded_len(0), 0);
        assert_eq!(padded_len(1), 2880);
        assert_eq!(padded_len(2880), 2880);
        assert_eq!(padded_len(2881), 5760);
    }
}
