//! Pixel codecs: BITPIX-typed big-endian data to and from `f64`.

use crate::format_error;
use sleds_sim_core::SimResult;

/// FITS pixel types (`BITPIX` values).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Bitpix {
    /// 8-bit unsigned integers (`BITPIX = 8`).
    U8,
    /// 16-bit signed big-endian integers (`BITPIX = 16`).
    I16,
    /// 32-bit signed big-endian integers (`BITPIX = 32`).
    I32,
    /// 32-bit IEEE floats (`BITPIX = -32`).
    F32,
    /// 64-bit IEEE floats (`BITPIX = -64`).
    F64,
}

impl Bitpix {
    /// The header code for this type.
    pub fn code(self) -> i32 {
        match self {
            Bitpix::U8 => 8,
            Bitpix::I16 => 16,
            Bitpix::I32 => 32,
            Bitpix::F32 => -32,
            Bitpix::F64 => -64,
        }
    }

    /// Parses a header code.
    pub fn from_code(code: i32) -> SimResult<Bitpix> {
        match code {
            8 => Ok(Bitpix::U8),
            16 => Ok(Bitpix::I16),
            32 => Ok(Bitpix::I32),
            -32 => Ok(Bitpix::F32),
            -64 => Ok(Bitpix::F64),
            other => Err(format_error(format!("unsupported BITPIX {other}"))),
        }
    }

    /// Bytes per pixel.
    pub fn bytes_per_pixel(self) -> usize {
        match self {
            Bitpix::U8 => 1,
            Bitpix::I16 => 2,
            Bitpix::I32 | Bitpix::F32 => 4,
            Bitpix::F64 => 8,
        }
    }

    /// Decodes `bytes` (a whole number of pixels) into `f64` values.
    pub fn decode(self, bytes: &[u8]) -> SimResult<Vec<f64>> {
        let bpp = self.bytes_per_pixel();
        if !bytes.len().is_multiple_of(bpp) {
            return Err(format_error(format!(
                "{} bytes is not a whole number of {bpp}-byte pixels",
                bytes.len()
            )));
        }
        let mut out = Vec::with_capacity(bytes.len() / bpp);
        for px in bytes.chunks_exact(bpp) {
            let v = match self {
                Bitpix::U8 => px[0] as f64,
                Bitpix::I16 => i16::from_be_bytes([px[0], px[1]]) as f64,
                Bitpix::I32 => i32::from_be_bytes([px[0], px[1], px[2], px[3]]) as f64,
                Bitpix::F32 => f32::from_be_bytes([px[0], px[1], px[2], px[3]]) as f64,
                Bitpix::F64 => f64::from_be_bytes(px.try_into().expect("8-byte chunk")),
            };
            out.push(v);
        }
        Ok(out)
    }

    /// Encodes `f64` values as big-endian pixels of this type, clamping
    /// integer types to their range (cfitsio saturates the same way).
    pub fn encode(self, values: &[f64]) -> Vec<u8> {
        let mut out = Vec::with_capacity(values.len() * self.bytes_per_pixel());
        for &v in values {
            match self {
                Bitpix::U8 => out.push(v.clamp(0.0, 255.0) as u8),
                Bitpix::I16 => out.extend_from_slice(
                    &(v.clamp(i16::MIN as f64, i16::MAX as f64) as i16).to_be_bytes(),
                ),
                Bitpix::I32 => out.extend_from_slice(
                    &(v.clamp(i32::MIN as f64, i32::MAX as f64) as i32).to_be_bytes(),
                ),
                Bitpix::F32 => out.extend_from_slice(&(v as f32).to_be_bytes()),
                Bitpix::F64 => out.extend_from_slice(&v.to_be_bytes()),
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_roundtrip() {
        for b in [
            Bitpix::U8,
            Bitpix::I16,
            Bitpix::I32,
            Bitpix::F32,
            Bitpix::F64,
        ] {
            assert_eq!(Bitpix::from_code(b.code()).unwrap(), b);
        }
        assert!(Bitpix::from_code(64).is_err());
    }

    #[test]
    fn decode_encode_roundtrip_all_types() {
        let values = vec![0.0, 1.0, 100.0, 255.0];
        for b in [
            Bitpix::U8,
            Bitpix::I16,
            Bitpix::I32,
            Bitpix::F32,
            Bitpix::F64,
        ] {
            let enc = b.encode(&values);
            assert_eq!(enc.len(), values.len() * b.bytes_per_pixel());
            let dec = b.decode(&enc).unwrap();
            assert_eq!(dec, values, "{b:?}");
        }
    }

    #[test]
    fn big_endian_layout() {
        assert_eq!(Bitpix::I16.encode(&[258.0]), vec![1, 2]);
        assert_eq!(
            Bitpix::I16.decode(&[0xff, 0xfe]).unwrap(),
            vec![-2.0],
            "sign extension"
        );
        assert_eq!(Bitpix::I32.encode(&[1.0]), vec![0, 0, 0, 1]);
    }

    #[test]
    fn integer_clamping() {
        assert_eq!(Bitpix::U8.encode(&[-5.0, 300.0]), vec![0, 255]);
        assert_eq!(
            Bitpix::I16.decode(&Bitpix::I16.encode(&[1e9])).unwrap(),
            vec![i16::MAX as f64]
        );
    }

    #[test]
    fn ragged_input_rejected() {
        assert!(Bitpix::I16.decode(&[1, 2, 3]).is_err());
        assert!(Bitpix::F64.decode(&[0; 12]).is_err());
    }

    #[test]
    fn negative_floats_roundtrip() {
        let values = vec![-1.5, 3.25, -0.0, f64::MAX];
        let dec = Bitpix::F64.decode(&Bitpix::F64.encode(&values)).unwrap();
        assert_eq!(dec, values);
        let dec32 = Bitpix::F32
            .decode(&Bitpix::F32.encode(&[-1.5, 3.25]))
            .unwrap();
        assert_eq!(dec32, vec![-1.5, 3.25]);
    }
}
