//! Streaming FITS I/O over the simulated kernel.
//!
//! [`FitsReader`] and [`FitsWriter`] deliberately work in bounded buffers
//! through the kernel's `read`/`write` syscalls: the LHEASOFT experiments
//! are *about* the applications' I/O patterns, so the substrate must not
//! slurp whole files behind their back.

use sleds_fs::{Fd, Kernel, OpenFlags, Whence};
use sleds_sim_core::SimResult;

use crate::codec::Bitpix;
use crate::format_error;
use crate::header::{padded_len, FitsHeader, BLOCK_SIZE};

/// A reader positioned over one HDU's pixel data.
#[derive(Debug)]
pub struct FitsReader {
    fd: Fd,
    header: FitsHeader,
    bitpix: Bitpix,
    data_start: u64,
    pixel_count: u64,
}

impl FitsReader {
    /// Opens `path` and parses the primary header.
    pub fn open(kernel: &mut Kernel, path: &str) -> SimResult<FitsReader> {
        let fd = kernel.open(path, OpenFlags::RDONLY)?;
        Self::from_fd(kernel, fd, 0)
    }

    /// Parses the HDU whose header begins at byte `hdu_start` of `fd`.
    pub fn from_fd(kernel: &mut Kernel, fd: Fd, hdu_start: u64) -> SimResult<FitsReader> {
        // Headers are short; read block by block until END shows up.
        let mut raw = Vec::new();
        loop {
            let block = kernel.pread(fd, hdu_start + raw.len() as u64, BLOCK_SIZE)?;
            if block.is_empty() {
                return Err(format_error("EOF inside header"));
            }
            raw.extend_from_slice(&block);
            if let Ok((header, consumed)) = FitsHeader::parse(&raw) {
                let bitpix = header.bitpix()?;
                let pixel_count = header.pixel_count()?;
                return Ok(FitsReader {
                    fd,
                    header,
                    bitpix,
                    data_start: hdu_start + consumed as u64,
                    pixel_count,
                });
            }
            if raw.len() > 64 * BLOCK_SIZE {
                return Err(format_error("unreasonably long header"));
            }
        }
    }

    /// The file descriptor (owned by the caller).
    pub fn fd(&self) -> Fd {
        self.fd
    }

    /// The parsed header.
    pub fn header(&self) -> &FitsHeader {
        &self.header
    }

    /// Pixel type.
    pub fn bitpix(&self) -> Bitpix {
        self.bitpix
    }

    /// Total pixels in the data unit.
    pub fn pixel_count(&self) -> u64 {
        self.pixel_count
    }

    /// Byte offset of the first data byte.
    pub fn data_start(&self) -> u64 {
        self.data_start
    }

    /// Byte offset just past the padded data unit (start of the next HDU).
    pub fn next_hdu_offset(&self) -> SimResult<u64> {
        Ok(self.data_start + padded_len(self.header.data_bytes()?))
    }

    /// File byte offset of pixel `index`.
    pub fn pixel_offset(&self, index: u64) -> u64 {
        self.data_start + index * self.bitpix.bytes_per_pixel() as u64
    }

    /// Reads and decodes `count` pixels starting at pixel `index`
    /// (positioned read, one kernel syscall).
    pub fn read_pixels_at(
        &self,
        kernel: &mut Kernel,
        index: u64,
        count: usize,
    ) -> SimResult<Vec<f64>> {
        let count = count.min(self.pixel_count.saturating_sub(index) as usize);
        if count == 0 {
            return Ok(Vec::new());
        }
        let bytes = kernel.pread(
            self.fd,
            self.pixel_offset(index),
            count * self.bitpix.bytes_per_pixel(),
        )?;
        self.bitpix.decode(&bytes)
    }
}

/// A writer that streams one HDU: header first, then pixels, then padding.
#[derive(Debug)]
pub struct FitsWriter {
    fd: Fd,
    bitpix: Bitpix,
    pixels_expected: u64,
    pixels_written: u64,
}

impl FitsWriter {
    /// Creates (truncating) `path` and writes a primary header for an image
    /// of the given shape.
    pub fn create(
        kernel: &mut Kernel,
        path: &str,
        bitpix: Bitpix,
        axes: &[usize],
    ) -> SimResult<FitsWriter> {
        let fd = kernel.open(path, OpenFlags::CREATE_RDWR)?;
        Self::begin_hdu(kernel, fd, FitsHeader::primary(bitpix, axes))
    }

    /// Starts writing an HDU with the given header at the current offset of
    /// `fd` (used to append extensions).
    pub fn begin_hdu(kernel: &mut Kernel, fd: Fd, header: FitsHeader) -> SimResult<FitsWriter> {
        let bitpix = header.bitpix()?;
        let pixels_expected = header.pixel_count()?;
        kernel.write(fd, &header.encode())?;
        Ok(FitsWriter {
            fd,
            bitpix,
            pixels_expected,
            pixels_written: 0,
        })
    }

    /// The file descriptor (owned by the caller).
    pub fn fd(&self) -> Fd {
        self.fd
    }

    /// Encodes and appends pixels.
    pub fn write_pixels(&mut self, kernel: &mut Kernel, values: &[f64]) -> SimResult<()> {
        if self.pixels_written + values.len() as u64 > self.pixels_expected {
            return Err(format_error(format!(
                "writing {} pixels past the declared {}",
                values.len(),
                self.pixels_expected
            )));
        }
        kernel.write(self.fd, &self.bitpix.encode(values))?;
        self.pixels_written += values.len() as u64;
        Ok(())
    }

    /// Pads the data unit to a block boundary. Must be called after the
    /// last pixel; returns an error if the declared pixels were not all
    /// written.
    pub fn finish(self, kernel: &mut Kernel) -> SimResult<Fd> {
        if self.pixels_written != self.pixels_expected {
            return Err(format_error(format!(
                "wrote {} of {} declared pixels",
                self.pixels_written, self.pixels_expected
            )));
        }
        let data_bytes = self.pixels_written * self.bitpix.bytes_per_pixel() as u64;
        let pad = (padded_len(data_bytes) - data_bytes) as usize;
        if pad > 0 {
            kernel.write(self.fd, &vec![0u8; pad])?;
        }
        Ok(self.fd)
    }
}

/// Copies `count` raw bytes from `src` to `dst` in `chunk`-byte reads — the
/// pattern of fimhisto's first pass.
pub fn copy_bytes(
    kernel: &mut Kernel,
    src: Fd,
    dst: Fd,
    count: u64,
    chunk: usize,
) -> SimResult<()> {
    kernel.lseek(src, 0, Whence::Set)?;
    let mut left = count;
    while left > 0 {
        let n = left.min(chunk as u64) as usize;
        let buf = kernel.read(src, n)?;
        if buf.is_empty() {
            return Err(format_error("source shorter than expected"));
        }
        left -= buf.len() as u64;
        kernel.write(dst, &buf)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use sleds_devices::DiskDevice;

    fn kernel() -> Kernel {
        let mut k = Kernel::table3();
        k.mkdir("/data").unwrap();
        k.mount_disk("/data", DiskDevice::table3_disk("hda"))
            .unwrap();
        k
    }

    #[test]
    fn write_then_read_roundtrip() {
        let mut k = kernel();
        let values: Vec<f64> = (0..1000).map(|i| (i % 251) as f64).collect();
        let mut w = FitsWriter::create(&mut k, "/data/img.fits", Bitpix::I16, &[100, 10]).unwrap();
        w.write_pixels(&mut k, &values[..500]).unwrap();
        w.write_pixels(&mut k, &values[500..]).unwrap();
        let fd = w.finish(&mut k).unwrap();
        k.close(fd).unwrap();

        let r = FitsReader::open(&mut k, "/data/img.fits").unwrap();
        assert_eq!(r.bitpix(), Bitpix::I16);
        assert_eq!(r.pixel_count(), 1000);
        assert_eq!(r.header().axes().unwrap(), vec![100, 10]);
        let got = r.read_pixels_at(&mut k, 0, 1000).unwrap();
        assert_eq!(got, values);
        // Partial read somewhere in the middle.
        let mid = r.read_pixels_at(&mut k, 500, 10).unwrap();
        assert_eq!(mid, values[500..510]);
        k.close(r.fd()).unwrap();
    }

    #[test]
    fn file_is_block_aligned() {
        let mut k = kernel();
        let mut w = FitsWriter::create(&mut k, "/data/img.fits", Bitpix::U8, &[7]).unwrap();
        w.write_pixels(&mut k, &[1.0; 7]).unwrap();
        let fd = w.finish(&mut k).unwrap();
        k.close(fd).unwrap();
        let size = k.stat("/data/img.fits").unwrap().size;
        assert!(size.is_multiple_of(BLOCK_SIZE as u64));
        assert_eq!(size, 2 * BLOCK_SIZE as u64); // header + data block
    }

    #[test]
    fn appended_extension_hdu_is_readable() {
        let mut k = kernel();
        let mut w = FitsWriter::create(&mut k, "/data/img.fits", Bitpix::U8, &[4]).unwrap();
        w.write_pixels(&mut k, &[1.0, 2.0, 3.0, 4.0]).unwrap();
        let fd = w.finish(&mut k).unwrap();
        // Append a histogram-like IMAGE extension.
        let ext = FitsHeader::image_extension(Bitpix::F64, &[3]);
        let mut w2 = FitsWriter::begin_hdu(&mut k, fd, ext).unwrap();
        w2.write_pixels(&mut k, &[10.0, 20.0, 30.0]).unwrap();
        let fd = w2.finish(&mut k).unwrap();

        let primary = FitsReader::from_fd(&mut k, fd, 0).unwrap();
        let next = primary.next_hdu_offset().unwrap();
        let ext = FitsReader::from_fd(&mut k, fd, next).unwrap();
        assert_eq!(ext.pixel_count(), 3);
        assert_eq!(
            ext.read_pixels_at(&mut k, 0, 3).unwrap(),
            vec![10.0, 20.0, 30.0]
        );
        k.close(fd).unwrap();
    }

    #[test]
    fn writer_enforces_declared_size() {
        let mut k = kernel();
        let mut w = FitsWriter::create(&mut k, "/data/img.fits", Bitpix::U8, &[2]).unwrap();
        assert!(w.write_pixels(&mut k, &[1.0, 2.0, 3.0]).is_err());
        w.write_pixels(&mut k, &[1.0]).unwrap();
        assert!(w.finish(&mut k).is_err(), "short write must fail finish");
    }

    #[test]
    fn copy_bytes_duplicates_prefix() {
        let mut k = kernel();
        k.install_file("/data/src", &vec![7u8; 10_000]).unwrap();
        let src = k.open("/data/src", OpenFlags::RDONLY).unwrap();
        let dst = k.open("/data/dst", OpenFlags::CREATE).unwrap();
        copy_bytes(&mut k, src, dst, 10_000, 4096).unwrap();
        assert_eq!(k.stat("/data/dst").unwrap().size, 10_000);
    }

    #[test]
    fn open_missing_file_fails() {
        let mut k = kernel();
        assert!(FitsReader::open(&mut k, "/data/nope.fits").is_err());
    }
}
