//! A FITS (Flexible Image Transport System) implementation.
//!
//! The paper's LHEASOFT experiments (`fimhisto`, `fimgbin`) process FITS
//! images — the astronomy community's standard container: 2880-byte logical
//! blocks, 80-character header cards, big-endian pixel data typed by
//! `BITPIX`. This crate implements enough of the standard to support those
//! applications faithfully:
//!
//! * header card encoding/parsing ([`header`]);
//! * pixel codecs for BITPIX 8/16/32/-32/-64 ([`codec`]);
//! * streaming reader/writer over the simulated kernel's file API
//!   ([`io`]) — streaming matters, because the whole point of the paper's
//!   experiments is the applications' multi-pass I/O patterns;
//! * a synthetic star-field generator ([`gen`]) standing in for the
//!   proprietary telescope data the paper processed (see DESIGN.md's
//!   substitution table).

pub mod codec;
pub mod gen;
pub mod header;
pub mod io;

pub use codec::Bitpix;
pub use gen::generate_image_bytes;
pub use header::{FitsHeader, BLOCK_SIZE, CARD_SIZE};
pub use io::{FitsReader, FitsWriter};

use sleds_sim_core::{Errno, SimError};

/// Builds a format error.
pub(crate) fn format_error(msg: impl Into<String>) -> SimError {
    SimError::new(Errno::Einval, format!("FITS: {}", msg.into()))
}
