//! `find`: directory-tree walks with predicates, including `-latency`.
//!
//! The stock predicates (`-name`, `-size`, `-type`) work in both modes; the
//! `-latency` predicate is the SLEDs addition — it estimates each file's
//! total delivery time from its SLED vector and keeps or prunes the file,
//! letting users skip tape-resident or remote data exactly as the paper
//! describes. The paper notes the whole port took two extra routines and
//! under 100 lines; ours is similar.

use sleds::{
    compile_latency, pricing_from, total_delivery_time, AttackPlan, LatencyPredicate, SledsTable,
};
use sleds_fs::{FileKind, Kernel, OpenFlags};
use sleds_sim_core::{SimDuration, SimResult};

use crate::FileDiagnostic;

/// Per-entry CPU cost of the tree walk (glob matching, bookkeeping).
const FIND_NS_PER_ENTRY: u64 = 400;

/// Size comparisons for `-size`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SizeTest {
    /// Larger than `n` bytes.
    Greater(u64),
    /// Smaller than `n` bytes.
    Less(u64),
}

/// Options for a find run.
#[derive(Clone, Debug, Default)]
pub struct FindOptions {
    /// Keep entries whose basename matches this glob (`*`, `?` wildcards).
    pub name_glob: Option<String>,
    /// Keep only files / only directories.
    pub kind: Option<FileKind>,
    /// Keep files by size.
    pub size: Option<SizeTest>,
    /// Keep files whose estimated delivery time satisfies the predicate
    /// (requires SLEDs — pass a table to [`find`]).
    pub latency: Option<LatencyPredicate>,
}

/// A matched entry with the information find printed about it.
#[derive(Clone, Debug, PartialEq)]
pub struct FindHit {
    /// Full path.
    pub path: String,
    /// Estimated delivery time in seconds, when `-latency` ran.
    pub estimate_secs: Option<f64>,
}

/// Full outcome of a find run: the hits plus the entries the walk had to
/// skip over.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FindReport {
    /// Entries satisfying every predicate, in deterministic (name) order.
    pub hits: Vec<FindHit>,
    /// Entries the walk could not examine (stat, readdir or `-latency`
    /// estimation failed), with the error each one hit.
    pub skipped: Vec<FileDiagnostic>,
}

impl FindReport {
    /// Real find's exit status: 0 when the whole walk succeeded, 1 when
    /// any entry had to be skipped — nonzero but not fatal, the rest of
    /// the tree was still visited.
    pub fn exit_status(&self) -> i32 {
        i32::from(!self.skipped.is_empty())
    }
}

/// Walks `root` depth-first, returning entries that satisfy every
/// predicate, in deterministic (name) order.
///
/// `table` enables the `-latency` predicate; passing a predicate without a
/// table is an error, mirroring running the paper's find on a kernel
/// without SLEDs support. Per-entry failures (an unreadable directory, a
/// file whose `-latency` estimate fails) are skipped, as real find skips
/// them; use [`find_report`] to see the diagnostics and exit status.
pub fn find(
    kernel: &mut Kernel,
    root: &str,
    opts: &FindOptions,
    table: Option<&SledsTable>,
) -> SimResult<Vec<FindHit>> {
    find_report(kernel, root, opts, table).map(|r| r.hits)
}

/// [`find`] with real find's error semantics surfaced: every entry the
/// walk could not examine becomes a [`FileDiagnostic`] (the stderr line)
/// and flips the exit status to 1, while the rest of the tree is still
/// walked instead of propagating the first `SimError`.
pub fn find_report(
    kernel: &mut Kernel,
    root: &str,
    opts: &FindOptions,
    table: Option<&SledsTable>,
) -> SimResult<FindReport> {
    if opts.latency.is_some() && table.is_none() {
        return Err(sleds_sim_core::SimError::new(
            sleds_sim_core::Errno::Enosys,
            "find -latency requires SLEDs support",
        ));
    }
    kernel.trace_app_begin("find");
    let mut out = FindReport::default();
    walk(kernel, root, opts, table, &mut out);
    kernel.trace_app_end();
    Ok(out)
}

/// [`find_report`] with the `-latency` predicate pushed into the kernel.
///
/// The predicate compiles to a [`sleds_fs::PickProgram`] and the whole tree
/// is walked by one `FSLEDS_WALK` crossing: the kernel prices every file,
/// evaluates the program in place and hands back the verdicts, so no
/// per-file open/`FSLEDS_GET`/close round-trips happen. The stock
/// predicates (`-name`, `-type`, `-size`) still run user-side, *before* the
/// kernel's verdict is consulted — exactly the order [`keep`] applies them —
/// so hits, estimates and skip diagnostics are identical to the sequential
/// walk. Requires a `-latency` predicate; without one there is nothing to
/// push down, use [`find`].
pub fn find_prog(
    kernel: &mut Kernel,
    root: &str,
    opts: &FindOptions,
    table: &SledsTable,
) -> SimResult<FindReport> {
    let Some(pred) = opts.latency else {
        return Err(sleds_sim_core::SimError::new(
            sleds_sim_core::Errno::Einval,
            "find --prog requires a -latency predicate",
        ));
    };
    kernel.trace_app_begin("find");
    let result = (|| {
        let prog = compile_latency(&pred);
        let pricing = pricing_from(table);
        let entries = kernel.fsleds_walk(root, &prog, &pricing)?;
        let mut out = FindReport::default();
        for e in &entries {
            kernel.charge_cpu(SimDuration::from_nanos(FIND_NS_PER_ENTRY));
            if let Some(k) = opts.kind {
                if k != e.kind {
                    continue;
                }
            }
            if let Some(glob) = &opts.name_glob {
                let base = e.path.rsplit('/').next().unwrap_or(&e.path);
                if !glob_match(glob.as_bytes(), base.as_bytes()) {
                    continue;
                }
            }
            if let Some(sz) = opts.size {
                if e.kind != FileKind::File {
                    continue;
                }
                let ok = match sz {
                    SizeTest::Greater(n) => e.size > n,
                    SizeTest::Less(n) => e.size < n,
                };
                if !ok {
                    continue;
                }
            }
            // -latency: directories never match, and a file whose pricing
            // failed in the kernel is skipped with the same diagnostic the
            // sequential walk's failed FSLEDS_GET would have produced.
            if e.kind != FileKind::File {
                continue;
            }
            if let Some(error) = &e.error {
                out.skipped.push(FileDiagnostic {
                    path: e.path.clone(),
                    error: error.clone(),
                });
                continue;
            }
            if !e.matched {
                continue;
            }
            out.hits.push(FindHit {
                path: e.path.clone(),
                estimate_secs: e.estimate_secs,
            });
        }
        Ok(out)
    })();
    kernel.trace_app_end();
    result
}

fn walk(
    kernel: &mut Kernel,
    path: &str,
    opts: &FindOptions,
    table: Option<&SledsTable>,
    out: &mut FindReport,
) {
    let st = match kernel.stat(path) {
        Ok(st) => st,
        Err(error) => {
            out.skipped.push(FileDiagnostic {
                path: path.to_string(),
                error,
            });
            return;
        }
    };
    kernel.charge_cpu(SimDuration::from_nanos(FIND_NS_PER_ENTRY));
    if let Err(error) = keep(kernel, path, st.kind, st.size, opts, table, &mut out.hits) {
        out.skipped.push(FileDiagnostic {
            path: path.to_string(),
            error,
        });
    }
    if st.kind == FileKind::Dir {
        let names = match kernel.readdir(path) {
            Ok(names) => names,
            Err(error) => {
                out.skipped.push(FileDiagnostic {
                    path: path.to_string(),
                    error,
                });
                return;
            }
        };
        for name in names {
            let child = if path == "/" {
                format!("/{name}")
            } else {
                format!("{path}/{name}")
            };
            walk(kernel, &child, opts, table, out);
        }
    }
}

/// Applies the predicates; records and returns whether the entry matched.
fn keep(
    kernel: &mut Kernel,
    path: &str,
    kind: FileKind,
    size: u64,
    opts: &FindOptions,
    table: Option<&SledsTable>,
    out: &mut Vec<FindHit>,
) -> SimResult<bool> {
    if let Some(k) = opts.kind {
        if k != kind {
            return Ok(false);
        }
    }
    if let Some(glob) = &opts.name_glob {
        let base = path.rsplit('/').next().unwrap_or(path);
        if !glob_match(glob.as_bytes(), base.as_bytes()) {
            return Ok(false);
        }
    }
    if let Some(sz) = opts.size {
        if kind != FileKind::File {
            return Ok(false);
        }
        let ok = match sz {
            SizeTest::Greater(n) => size > n,
            SizeTest::Less(n) => size < n,
        };
        if !ok {
            return Ok(false);
        }
    }
    let mut estimate = None;
    // [sleds:begin]
    if let Some(pred) = opts.latency {
        if kind != FileKind::File {
            return Ok(false);
        }
        let table = table.expect("checked in find()");
        let fd = kernel.open(path, OpenFlags::RDONLY)?;
        let secs = total_delivery_time(kernel, table, fd, AttackPlan::Best)?;
        kernel.close(fd)?;
        if !pred.matches(secs) {
            return Ok(false);
        }
        estimate = Some(secs);
    }
    // [sleds:end]
    out.push(FindHit {
        path: path.to_string(),
        estimate_secs: estimate,
    });
    Ok(true)
}

/// Minimal glob: `*` matches any run, `?` any single byte.
fn glob_match(pattern: &[u8], text: &[u8]) -> bool {
    match (pattern.first(), text.first()) {
        (None, None) => true,
        (Some(b'*'), _) => {
            glob_match(&pattern[1..], text) || (!text.is_empty() && glob_match(pattern, &text[1..]))
        }
        (Some(b'?'), Some(_)) => glob_match(&pattern[1..], &text[1..]),
        (Some(&p), Some(&t)) if p == t => glob_match(&pattern[1..], &text[1..]),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sleds_devices::{DiskDevice, TapeDevice};
    use sleds_lmbench::fill_table;
    use sleds_sim_core::PAGE_SIZE;

    fn setup_tree() -> (Kernel, SledsTable) {
        let mut k = Kernel::table2();
        k.mkdir("/data").unwrap();
        let m = k
            .mount_disk("/data", DiskDevice::table2_disk("hda"))
            .unwrap();
        k.mkdir("/data/src").unwrap();
        k.mkdir("/data/src/deep").unwrap();
        k.install_file("/data/src/main.c", b"int main(){}\n")
            .unwrap();
        k.install_file("/data/src/util.c", b"void util(){}\n")
            .unwrap();
        k.install_file("/data/src/util.h", b"#pragma once\n")
            .unwrap();
        k.install_file("/data/src/deep/core.c", b"core\n").unwrap();
        k.install_file("/data/big.bin", &vec![0u8; 256 * 1024])
            .unwrap();
        let t = fill_table(&mut k, &[("/data", m)]).unwrap();
        (k, t)
    }

    #[test]
    fn glob_semantics() {
        assert!(glob_match(b"*.c", b"main.c"));
        assert!(!glob_match(b"*.c", b"main.h"));
        assert!(glob_match(b"a?c", b"abc"));
        assert!(!glob_match(b"a?c", b"ac"));
        assert!(glob_match(b"*", b""));
        assert!(glob_match(b"m*n*.c", b"main.c"));
    }

    #[test]
    fn name_glob_finds_c_files() {
        let (mut k, _) = setup_tree();
        let hits = find(
            &mut k,
            "/data",
            &FindOptions {
                name_glob: Some("*.c".into()),
                ..Default::default()
            },
            None,
        )
        .unwrap();
        let paths: Vec<&str> = hits.iter().map(|h| h.path.as_str()).collect();
        assert_eq!(
            paths,
            vec![
                "/data/src/deep/core.c",
                "/data/src/main.c",
                "/data/src/util.c"
            ]
        );
    }

    #[test]
    fn size_and_kind_predicates() {
        let (mut k, _) = setup_tree();
        let hits = find(
            &mut k,
            "/data",
            &FindOptions {
                size: Some(SizeTest::Greater(100 * 1024)),
                ..Default::default()
            },
            None,
        )
        .unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].path, "/data/big.bin");

        let dirs = find(
            &mut k,
            "/data",
            &FindOptions {
                kind: Some(FileKind::Dir),
                ..Default::default()
            },
            None,
        )
        .unwrap();
        assert_eq!(dirs.len(), 3); // /data, /data/src, /data/src/deep
    }

    #[test]
    fn latency_without_table_is_enosys() {
        let (mut k, _) = setup_tree();
        let err = find(
            &mut k,
            "/data",
            &FindOptions {
                latency: Some(LatencyPredicate::parse("-1").unwrap()),
                ..Default::default()
            },
            None,
        )
        .unwrap_err();
        assert_eq!(err.errno, sleds_sim_core::Errno::Enosys);
    }

    #[test]
    fn latency_separates_cached_from_cold() {
        let (mut k, t) = setup_tree();
        // Warm big.bin fully; main.c etc. stay tiny/cold.
        let fd = k.open("/data/big.bin", OpenFlags::RDONLY).unwrap();
        k.read(fd, 256 * 1024).unwrap();
        k.close(fd).unwrap();
        // Files retrievable in under ~10 ms: only the cached big file and
        // the tiny sources (one disk latency each, ~18ms) — so actually
        // only the cached one.
        let hits = find(
            &mut k,
            "/data",
            &FindOptions {
                latency: Some(LatencyPredicate::parse("-m10").unwrap()),
                ..Default::default()
            },
            Some(&t),
        )
        .unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].path, "/data/big.bin");
        assert!(hits[0].estimate_secs.unwrap() < 0.010);
    }

    #[test]
    fn latency_prunes_tape_resident_files() {
        let mut k = Kernel::table2();
        k.mkdir("/hsm").unwrap();
        let m = k
            .mount_hsm(
                "/hsm",
                DiskDevice::table2_disk("hda"),
                Box::new(TapeDevice::dlt("st0")),
                256,
            )
            .unwrap();
        let data = vec![1u8; 64 * PAGE_SIZE as usize];
        k.install_file("/hsm/online.dat", &data).unwrap();
        k.install_file("/hsm/offline.dat", &data).unwrap();
        let t = fill_table(&mut k, &[("/hsm", m)]).unwrap();
        k.hsm_migrate("/hsm/offline.dat", true).unwrap();

        // Ignore anything that takes over 10 seconds (i.e. tape mounts).
        let hits = find(
            &mut k,
            "/hsm",
            &FindOptions {
                latency: Some(LatencyPredicate::parse("-10").unwrap()),
                ..Default::default()
            },
            Some(&t),
        )
        .unwrap();
        let paths: Vec<&str> = hits.iter().map(|h| h.path.as_str()).collect();
        assert_eq!(paths, vec!["/hsm/online.dat"]);

        // And the inverse: only the expensive files.
        let hits = find(
            &mut k,
            "/hsm",
            &FindOptions {
                latency: Some(LatencyPredicate::parse("+10").unwrap()),
                ..Default::default()
            },
            Some(&t),
        )
        .unwrap();
        let paths: Vec<&str> = hits.iter().map(|h| h.path.as_str()).collect();
        assert_eq!(paths, vec!["/hsm/offline.dat"]);
        assert!(hits[0].estimate_secs.unwrap() > 10.0);
    }

    #[test]
    fn latency_treats_offline_extents_as_infinite() {
        use sleds_devices::FaultPlan;
        use sleds_sim_core::{SimDuration, SimTime};
        let (mut k, t) = setup_tree();
        // Warm big.bin fully; the sources stay cold on a disk that then
        // drops off the bus.
        let fd = k.open("/data/big.bin", OpenFlags::RDONLY).unwrap();
        k.read(fd, 256 * 1024).unwrap();
        k.close(fd).unwrap();
        k.apply_fault_plan(&FaultPlan::new().offline(
            "hda",
            SimTime::ZERO,
            SimTime::from_nanos(u64::MAX),
            SimDuration::from_millis(1),
        ));
        // Unreachable extents price as infinite latency: any upper bound
        // excludes them...
        let hits = find(
            &mut k,
            "/data",
            &FindOptions {
                latency: Some(LatencyPredicate::parse("-m10").unwrap()),
                ..Default::default()
            },
            Some(&t),
        )
        .unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].path, "/data/big.bin");
        // ...and any lower bound keeps exactly the unreachable files.
        let hits = find(
            &mut k,
            "/data",
            &FindOptions {
                latency: Some(LatencyPredicate::parse("+1000").unwrap()),
                ..Default::default()
            },
            Some(&t),
        )
        .unwrap();
        assert_eq!(hits.len(), 4);
        assert!(hits.iter().all(|h| h.estimate_secs.unwrap().is_infinite()));
    }

    #[test]
    fn find_report_skips_entries_it_cannot_estimate() {
        let mut k = Kernel::table2();
        k.mkdir("/a").unwrap();
        k.mkdir("/b").unwrap();
        let m = k.mount_disk("/a", DiskDevice::table2_disk("hda")).unwrap();
        k.mount_disk("/b", DiskDevice::table2_disk("hdb")).unwrap();
        k.install_file("/a/ok.c", b"int main(){}\n").unwrap();
        k.install_file("/b/stray.c", b"int x;\n").unwrap();
        // The table only knows hda: estimating /b/stray.c fails, and real
        // find skips the entry with a diagnostic instead of dying.
        let t = fill_table(&mut k, &[("/a", m)]).unwrap();
        k.drop_caches().unwrap();
        let r = find_report(
            &mut k,
            "/",
            &FindOptions {
                latency: Some(LatencyPredicate::parse("+0").unwrap()),
                ..Default::default()
            },
            Some(&t),
        )
        .unwrap();
        assert_eq!(r.skipped.len(), 1);
        assert_eq!(r.skipped[0].path, "/b/stray.c");
        assert_eq!(r.exit_status(), 1);
        let paths: Vec<&str> = r.hits.iter().map(|h| h.path.as_str()).collect();
        assert!(paths.contains(&"/a/ok.c"), "rest of the tree still walked");
        assert!(r.skipped[0]
            .render("find")
            .starts_with("find: /b/stray.c: "));
    }

    #[test]
    fn combined_predicates_and_everything_matches_default() {
        let (mut k, _) = setup_tree();
        let all = find(&mut k, "/data", &FindOptions::default(), None).unwrap();
        assert_eq!(all.len(), 8); // 3 dirs + 5 files
        let none = find(
            &mut k,
            "/data",
            &FindOptions {
                name_glob: Some("*.rs".into()),
                ..Default::default()
            },
            None,
        )
        .unwrap();
        assert!(none.is_empty());
    }

    #[test]
    fn prog_pushdown_matches_the_sequential_walk() {
        let (mut k, t) = setup_tree();
        // Warm big.bin so cached and cold files straddle the predicate.
        let fd = k.open("/data/big.bin", OpenFlags::RDONLY).unwrap();
        k.read(fd, 256 * 1024).unwrap();
        k.close(fd).unwrap();
        for spec in ["-m10", "+m10", "-1", "+0", "0"] {
            let opts = FindOptions {
                latency: Some(LatencyPredicate::parse(spec).unwrap()),
                ..Default::default()
            };
            let before = k.usage();
            let seq = find_report(&mut k, "/data", &opts, Some(&t)).unwrap();
            let seq_u = k.usage().since(&before);
            let before = k.usage();
            let prog = find_prog(&mut k, "/data", &opts, &t).unwrap();
            let prog_u = k.usage().since(&before);
            assert_eq!(seq, prog, "same hits, estimates and skips for {spec}");
            assert!(
                prog_u.syscall_crossings < seq_u.syscall_crossings,
                "{spec}: pushdown {} vs sequential {} crossings",
                prog_u.syscall_crossings,
                seq_u.syscall_crossings
            );
        }
    }

    #[test]
    fn prog_pushdown_composes_with_user_side_predicates() {
        let (mut k, t) = setup_tree();
        let opts = FindOptions {
            name_glob: Some("*.c".into()),
            latency: Some(LatencyPredicate::parse("+0").unwrap()),
            ..Default::default()
        };
        let seq = find_report(&mut k, "/data", &opts, Some(&t)).unwrap();
        let prog = find_prog(&mut k, "/data", &opts, &t).unwrap();
        assert_eq!(seq, prog);
        let paths: Vec<&str> = prog.hits.iter().map(|h| h.path.as_str()).collect();
        assert_eq!(
            paths,
            vec![
                "/data/src/deep/core.c",
                "/data/src/main.c",
                "/data/src/util.c"
            ]
        );
    }

    #[test]
    fn prog_pushdown_prunes_tape_like_the_sequential_walk() {
        let mut k = Kernel::table2();
        k.mkdir("/hsm").unwrap();
        let m = k
            .mount_hsm(
                "/hsm",
                DiskDevice::table2_disk("hda"),
                Box::new(TapeDevice::dlt("st0")),
                256,
            )
            .unwrap();
        let data = vec![1u8; 64 * PAGE_SIZE as usize];
        k.install_file("/hsm/online.dat", &data).unwrap();
        k.install_file("/hsm/offline.dat", &data).unwrap();
        let t = fill_table(&mut k, &[("/hsm", m)]).unwrap();
        k.hsm_migrate("/hsm/offline.dat", true).unwrap();
        for spec in ["-10", "+10"] {
            let opts = FindOptions {
                latency: Some(LatencyPredicate::parse(spec).unwrap()),
                ..Default::default()
            };
            let seq = find_report(&mut k, "/hsm", &opts, Some(&t)).unwrap();
            let prog = find_prog(&mut k, "/hsm", &opts, &t).unwrap();
            assert_eq!(seq, prog, "tape pruning identical for {spec}");
        }
    }

    #[test]
    fn prog_pushdown_requires_a_latency_predicate() {
        let (mut k, t) = setup_tree();
        let err = find_prog(&mut k, "/data", &FindOptions::default(), &t).unwrap_err();
        assert_eq!(err.errno, sleds_sim_core::Errno::Einval);
    }
}
