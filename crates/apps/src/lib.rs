//! The paper's applications, reimplemented against the simulated kernel.
//!
//! Every application comes in two modes sharing one code path wherever the
//! paper's versions did: a **baseline** that reads front to back like the
//! stock GNU/LHEASOFT tool, and a **SLEDs** mode that orders its I/O through
//! the pick library. The SLEDs-specific regions are bracketed with
//! `// [sleds:begin]` / `// [sleds:end]` markers; the Table 4 reproduction
//! counts those lines.
//!
//! | app        | paper's use of SLEDs            | module        |
//! |------------|---------------------------------|---------------|
//! | `wc`       | reorder (order-insensitive)     | [`wc`]        |
//! | `grep`     | reorder + sorted output, `-q`   | [`grep`]      |
//! | `find`     | prune via `-latency`            | [`find`]      |
//! | `gmc`      | report retrieval estimates      | [`gmc`]       |
//! | `fimhisto` | reorder passes 2–3 (LHEASOFT)   | [`fimhisto`]  |
//! | `fimgbin`  | reorder rebin reads (LHEASOFT)  | [`fimgbin`]   |

pub mod fimgbin;
pub mod fimhisto;
pub mod find;
pub mod gmc;
pub mod grep;
pub mod treegrep;
pub mod wc;

use sleds_sim_core::{SimDuration, SimError};

/// Default application buffer size, matching the BUFSIZE the paper's
/// pseudocode passes to `sleds_pick_init`.
pub const BUFSIZE: usize = 64 << 10;

/// A per-file failure a multi-file tool skipped over instead of dying on —
/// the `grep: foo: Input/output error` line real tools print to stderr
/// while continuing with the rest of their arguments.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FileDiagnostic {
    /// The file that could not be processed.
    pub path: String,
    /// Why.
    pub error: SimError,
}

impl FileDiagnostic {
    /// The stderr line a real tool would print for this failure.
    pub fn render(&self, tool: &str) -> String {
        format!("{tool}: {}: {}", self.path, self.error)
    }
}

/// Charges `ns_per_byte` of application CPU for processing `bytes`.
pub(crate) fn charge_per_byte(kernel: &mut sleds_fs::Kernel, bytes: usize, ns_per_byte: u64) {
    kernel.charge_cpu(SimDuration::from_nanos(ns_per_byte * bytes as u64));
}
