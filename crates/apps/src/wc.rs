//! `wc`: line, word and byte counts.
//!
//! The baseline scans the file front to back. The SLEDs mode reads chunks
//! in the pick library's order — the paper notes `wc` was the easy port
//! because counting is order-insensitive. Word counts are *not* quite
//! order-insensitive (a word can straddle a chunk boundary), so the SLEDs
//! mode counts per contiguous segment and stitches segment boundaries
//! afterwards, which keeps its output bit-identical to the baseline.

use sleds::{PickConfig, PickSession, SledsTable};
use sleds_fs::{
    Fd, Kernel, OpenFlags, RingOp, RingPayload, SubmissionRing, Whence, DEFAULT_RING_ENTRIES,
};
use sleds_sim_core::SimResult;

use crate::{charge_per_byte, FileDiagnostic, BUFSIZE};

/// CPU cost of the counting loop, per byte scanned.
const WC_NS_PER_BYTE: u64 = 6;

/// `wc` output.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WcResult {
    /// Newline count.
    pub lines: u64,
    /// Word count (maximal runs of non-whitespace).
    pub words: u64,
    /// Byte count.
    pub bytes: u64,
}

/// Counting state for one contiguous byte range.
#[derive(Clone, Copy, Debug)]
struct Segment {
    start: u64,
    end: u64,
    lines: u64,
    words: u64,
    starts_in_word: bool,
    ends_in_word: bool,
}

fn is_space(b: u8) -> bool {
    matches!(b, b' ' | b'\t' | b'\n' | b'\r' | 0x0b | 0x0c)
}

/// Counts one buffer in isolation.
fn count_chunk(offset: u64, buf: &[u8]) -> Segment {
    let mut lines = 0;
    let mut words = 0;
    let mut in_word = false;
    let mut starts_in_word = false;
    for (i, &b) in buf.iter().enumerate() {
        if b == b'\n' {
            lines += 1;
        }
        if is_space(b) {
            in_word = false;
        } else {
            if !in_word {
                words += 1;
            }
            if i == 0 {
                starts_in_word = true;
            }
            in_word = true;
        }
    }
    Segment {
        start: offset,
        end: offset + buf.len() as u64,
        lines,
        words,
        starts_in_word,
        ends_in_word: in_word,
    }
}

/// Merges adjacent segments: a word spanning the join was counted twice.
fn stitch(mut segments: Vec<Segment>) -> WcResult {
    segments.sort_by_key(|s| s.start);
    let mut out = WcResult::default();
    let mut prev: Option<Segment> = None;
    for s in segments {
        out.lines += s.lines;
        out.words += s.words;
        out.bytes += s.end - s.start;
        if let Some(p) = prev {
            debug_assert_eq!(p.end, s.start, "segments must tile the file");
            if p.ends_in_word && s.starts_in_word {
                out.words -= 1;
            }
        }
        prev = Some(s);
    }
    out
}

/// Outcome of a multi-file wc run ([`wc_files`]).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct WcFilesResult {
    /// Per-file counts, in argument order, for the files that could be
    /// read.
    pub files: Vec<(String, WcResult)>,
    /// The `total` line.
    pub total: WcResult,
    /// Files that could not be read, with the error each one hit.
    pub skipped: Vec<FileDiagnostic>,
}

impl WcFilesResult {
    /// Real wc's exit status: 0 when every argument was counted, 1 when
    /// any could not be read — nonzero but not fatal, the remaining
    /// arguments were still counted and totalled.
    pub fn exit_status(&self) -> i32 {
        i32::from(!self.skipped.is_empty())
    }
}

/// Counts every path in `paths`, skipping files whose reads fail the way
/// real wc does: a [`FileDiagnostic`] per failure, a nonzero exit status,
/// and the surviving files still counted and totalled instead of
/// propagating the first `SimError`.
pub fn wc_files(kernel: &mut Kernel, paths: &[&str], table: Option<&SledsTable>) -> WcFilesResult {
    let mut out = WcFilesResult::default();
    for &path in paths {
        match wc(kernel, path, table) {
            Ok(r) => {
                out.total.lines += r.lines;
                out.total.words += r.words;
                out.total.bytes += r.bytes;
                out.files.push((path.to_string(), r));
            }
            Err(error) => out.skipped.push(FileDiagnostic {
                path: path.to_string(),
                error,
            }),
        }
    }
    out
}

/// Runs `wc` on `path`.
///
/// `table` selects the mode: `Some` uses the SLEDs pick library (the
/// paper's `wc --sleds` switch), `None` is the stock sequential scan.
pub fn wc(kernel: &mut Kernel, path: &str, table: Option<&SledsTable>) -> SimResult<WcResult> {
    kernel.trace_app_begin(if table.is_some() { "wc --sleds" } else { "wc" });
    let result = (|| {
        let fd = kernel.open(path, OpenFlags::RDONLY)?;
        let result = match table {
            None => wc_baseline(kernel, fd),
            Some(table) => wc_sleds(kernel, fd, table),
        };
        kernel.close(fd)?;
        result
    })();
    kernel.trace_app_end();
    result
}

fn wc_baseline(kernel: &mut Kernel, fd: Fd) -> SimResult<WcResult> {
    let mut segments = Vec::new();
    let mut offset = 0u64;
    loop {
        let buf = kernel.read(fd, BUFSIZE)?;
        if buf.is_empty() {
            break;
        }
        charge_per_byte(kernel, buf.len(), WC_NS_PER_BYTE);
        segments.push(count_chunk(offset, &buf));
        offset += buf.len() as u64;
    }
    Ok(stitch(segments))
}

/// `wc` over the asynchronous-I/O model the paper's related work discusses
/// (POSIX AIO + container buffers): chunks are processed in completion
/// order and CPU overlaps I/O. Returns the counts plus the AIO accounting;
/// callers compare `report.elapsed` against the synchronous modes.
pub fn wc_aio(kernel: &mut Kernel, path: &str) -> SimResult<(WcResult, sleds_fs::AioReport)> {
    let fd = kernel.open(path, OpenFlags::RDONLY)?;
    let (chunks, report) = kernel.aio_read_file(fd, BUFSIZE, WC_NS_PER_BYTE)?;
    kernel.close(fd)?;
    let segments = chunks
        .iter()
        .map(|(off, bytes)| count_chunk(*off, bytes))
        .collect();
    Ok((stitch(segments), report))
}

/// `wc --sleds` over the submission ring: the SLED retrieval and every
/// chunk read go through the ring, a batch per ring's worth of chunks, so
/// a plan of N chunks costs about `1 + ceil(N / capacity)` boundary
/// crossings instead of `2N` (`lseek` + `read` each). The counting,
/// stitching, and the pick order itself are identical to [`wc`] with a
/// table — the output is bit-identical, and rusage differs only in
/// `cpu`, `syscalls` and `syscall_crossings`.
pub fn wc_ring(kernel: &mut Kernel, path: &str, table: &SledsTable) -> SimResult<WcResult> {
    kernel.trace_app_begin("wc --sleds");
    let result = (|| {
        let fd = kernel.open(path, OpenFlags::RDONLY)?;
        let mut ring = SubmissionRing::new(DEFAULT_RING_ENTRIES);
        let result = wc_ring_fd(kernel, &mut ring, fd, table);
        kernel.close(fd)?;
        result
    })();
    kernel.trace_app_end();
    result
}

fn wc_ring_fd(
    kernel: &mut Kernel,
    ring: &mut SubmissionRing,
    fd: Fd,
    table: &SledsTable,
) -> SimResult<WcResult> {
    let mut pick = PickSession::init_ring(kernel, ring, table, fd, PickConfig::bytes(BUFSIZE))?;
    let mut segments = Vec::new();
    loop {
        // Fill the submission queue with the next ring's worth of chunks;
        // the chunk offset doubles as the completion tag.
        let mut queued = 0usize;
        while queued < ring.capacity() {
            let Some((offset, len)) = pick.next_read() else {
                break;
            };
            ring.push(
                offset,
                RingOp::Pread {
                    fd,
                    pos: offset,
                    len,
                },
            )?;
            queued += 1;
        }
        if queued == 0 {
            break;
        }
        kernel.ring_enter(ring)?;
        for c in kernel.ring_reap(ring) {
            let buf = match c.result? {
                RingPayload::Bytes(b) => b,
                _ => unreachable!("pread completes with bytes"),
            };
            charge_per_byte(kernel, buf.len(), WC_NS_PER_BYTE);
            segments.push(count_chunk(c.user_data, &buf));
        }
    }
    pick.finish();
    Ok(stitch(segments))
}

// [sleds:begin]
fn wc_sleds(kernel: &mut Kernel, fd: Fd, table: &SledsTable) -> SimResult<WcResult> {
    let mut pick = PickSession::init(kernel, table, fd, PickConfig::bytes(BUFSIZE))?;
    let mut segments = Vec::new();
    while let Some((offset, len)) = pick.next_read() {
        kernel.lseek(fd, offset as i64, Whence::Set)?;
        let buf = kernel.read(fd, len)?;
        charge_per_byte(kernel, buf.len(), WC_NS_PER_BYTE);
        segments.push(count_chunk(offset, &buf));
    }
    pick.finish();
    Ok(stitch(segments))
}
// [sleds:end]

#[cfg(test)]
mod tests {
    use super::*;
    use sleds_devices::DiskDevice;
    use sleds_sim_core::{DetRng, PAGE_SIZE};

    fn setup() -> (Kernel, SledsTable) {
        let mut k = Kernel::table2();
        k.mkdir("/data").unwrap();
        let m = k
            .mount_disk("/data", DiskDevice::table2_disk("hda"))
            .unwrap();
        let dev = k.device_of_mount(m).unwrap();
        let mut t = SledsTable::new();
        t.fill_memory(sleds::SledsEntry::new(175e-9, 48e6));
        t.fill_device(dev, sleds::SledsEntry::new(0.018, 9e6));
        (k, t)
    }

    fn random_text(n: usize, seed: u64) -> Vec<u8> {
        let mut rng = DetRng::new(seed);
        let mut out = Vec::with_capacity(n);
        while out.len() < n {
            match rng.range_u64(0, 10) {
                0 => out.push(b'\n'),
                1 | 2 => out.push(b' '),
                _ => out.push(b'a' + rng.range_u64(0, 26) as u8),
            }
        }
        out.truncate(n);
        out
    }

    #[test]
    fn counts_known_text() {
        let (mut k, _) = setup();
        k.install_file("/data/f", b"hello world\nfoo  bar baz\n\n  tail")
            .unwrap();
        let r = wc(&mut k, "/data/f", None).unwrap();
        assert_eq!(r.lines, 3);
        assert_eq!(r.words, 6);
        assert_eq!(r.bytes, 32);
    }

    #[test]
    fn empty_file() {
        let (mut k, t) = setup();
        k.install_file("/data/e", b"").unwrap();
        assert_eq!(wc(&mut k, "/data/e", None).unwrap(), WcResult::default());
        assert_eq!(
            wc(&mut k, "/data/e", Some(&t)).unwrap(),
            WcResult::default()
        );
    }

    #[test]
    fn sleds_mode_matches_baseline_exactly() {
        let (mut k, t) = setup();
        let text = random_text(8 * PAGE_SIZE as usize + 321, 5);
        k.install_file("/data/f", &text).unwrap();
        let base = wc(&mut k, "/data/f", None).unwrap();
        // Warm a middle slice so the pick order is genuinely scrambled.
        let fd = k.open("/data/f", OpenFlags::RDONLY).unwrap();
        k.lseek(fd, 3 * PAGE_SIZE as i64, Whence::Set).unwrap();
        k.read(fd, 2 * PAGE_SIZE as usize).unwrap();
        k.close(fd).unwrap();
        let with = wc(&mut k, "/data/f", Some(&t)).unwrap();
        assert_eq!(base, with);
    }

    #[test]
    fn word_spanning_chunks_counted_once() {
        // A single word larger than BUFSIZE must still count as one.
        let (mut k, _) = setup();
        let text = vec![b'x'; BUFSIZE + 100];
        k.install_file("/data/f", &text).unwrap();
        let r = wc(&mut k, "/data/f", None).unwrap();
        assert_eq!(r.words, 1);
        assert_eq!(r.lines, 0);
    }

    #[test]
    fn stitching_is_orderproof() {
        // Count a text cut at awkward boundaries in shuffled order.
        let text = b"alpha beta\ngamma delta epsilon\nzeta";
        let cuts = [0usize, 3, 11, 12, 20, 29, text.len()];
        let mut segs = Vec::new();
        for w in cuts.windows(2) {
            segs.push(count_chunk(w[0] as u64, &text[w[0]..w[1]]));
        }
        segs.reverse();
        let r = stitch(segs);
        assert_eq!(r.lines, 2);
        assert_eq!(r.words, 6);
        assert_eq!(r.bytes, text.len() as u64);
    }

    #[test]
    fn aio_counts_match_and_overlap_io() {
        let (mut k, _) = setup();
        let text = random_text(6 * PAGE_SIZE as usize + 17, 21);
        k.install_file("/data/f", &text).unwrap();
        let base = wc(&mut k, "/data/f", None).unwrap();
        k.drop_caches().unwrap();
        let (aio, rep) = wc_aio(&mut k, "/data/f").unwrap();
        assert_eq!(base, aio, "completion-order counting must agree");
        assert_eq!(rep.elapsed, rep.cpu.max(rep.io));
    }

    #[test]
    fn wc_files_skips_unreadable_and_totals_the_rest() {
        use sleds_devices::FaultPlan;
        use sleds_sim_core::{SimDuration, SimTime};
        let (mut k, _) = setup();
        k.install_file("/data/ok", b"one two\nthree\n").unwrap();
        k.install_file("/data/bad", b"cold file\n").unwrap();
        k.drop_caches().unwrap();
        let fd = k.open("/data/ok", OpenFlags::RDONLY).unwrap();
        k.read(fd, 1024).unwrap();
        k.close(fd).unwrap();
        k.apply_fault_plan(&FaultPlan::new().offline(
            "hda",
            SimTime::ZERO,
            SimTime::from_nanos(u64::MAX),
            SimDuration::from_millis(1),
        ));
        let r = wc_files(&mut k, &["/data/ok", "/data/bad"], None);
        assert_eq!(r.files.len(), 1);
        assert_eq!(r.files[0].0, "/data/ok");
        assert_eq!(r.total.lines, 2);
        assert_eq!(r.total.words, 3);
        assert_eq!(r.total.bytes, 14);
        assert_eq!(r.skipped.len(), 1);
        assert_eq!(r.skipped[0].path, "/data/bad");
        assert_eq!(r.exit_status(), 1, "nonzero but the rest was counted");
    }

    #[test]
    fn warm_sleds_run_is_faster_than_warm_baseline() {
        // The paper's headline: with a warm cache and a file bigger than
        // the cache, reordering wins. A scaled-down machine (4 MiB RAM)
        // keeps the test fast; the dynamics are size-independent.
        let mut cfg = sleds_fs::MachineConfig::table2();
        cfg.ram = sleds_sim_core::ByteSize::mib(4);
        let mut k = Kernel::new(cfg);
        k.mkdir("/data").unwrap();
        let m = k
            .mount_disk("/data", DiskDevice::table2_disk("hda"))
            .unwrap();
        let dev = k.device_of_mount(m).unwrap();
        let mut t = SledsTable::new();
        t.fill_memory(sleds::SledsEntry::new(175e-9, 48e6));
        t.fill_device(dev, sleds::SledsEntry::new(0.018, 9e6));
        let cache_bytes = k.config().cache_bytes().as_u64() as usize;
        let n = cache_bytes + cache_bytes / 2;
        let text = random_text(n, 9);
        k.install_file("/data/big", &text).unwrap();

        // Warm: one full baseline pass.
        wc(&mut k, "/data/big", None).unwrap();
        // Measured baseline pass (cache now holds the tail).
        let j = k.start_job();
        let r1 = wc(&mut k, "/data/big", None).unwrap();
        let base = k.finish_job(&j);
        // Re-warm with another baseline pass so cache state matches.
        wc(&mut k, "/data/big", None).unwrap();
        let j = k.start_job();
        let r2 = wc(&mut k, "/data/big", Some(&t)).unwrap();
        let sleds = k.finish_job(&j);

        assert_eq!(r1, r2, "same answer either way");
        assert!(
            sleds.usage.major_faults < base.usage.major_faults / 2,
            "sleds {} vs base {} major faults",
            sleds.usage.major_faults,
            base.usage.major_faults
        );
        assert!(
            sleds.elapsed.as_secs_f64() < 0.7 * base.elapsed.as_secs_f64(),
            "sleds {} vs base {}",
            sleds.elapsed,
            base.elapsed
        );
    }

    #[test]
    fn ring_mode_is_equivalent_modulo_crossings() {
        // Two identically-prepared kernels, so both runs start from the
        // same cache state (a run warms pages, which would otherwise make
        // the second run's faults trivially different).
        let prepared = || {
            let (mut k, t) = setup();
            let text = random_text(20 * BUFSIZE + 321, 9);
            k.install_file("/data/f", &text).unwrap();
            // Warm a middle slice so the pick order is genuinely scrambled.
            let fd = k.open("/data/f", OpenFlags::RDONLY).unwrap();
            k.lseek(fd, 3 * PAGE_SIZE as i64, Whence::Set).unwrap();
            k.read(fd, 2 * PAGE_SIZE as usize).unwrap();
            k.close(fd).unwrap();
            (k, t)
        };

        let (mut k, t) = prepared();
        let before = k.usage();
        let seq = wc(&mut k, "/data/f", Some(&t)).unwrap();
        let seq_u = k.usage().since(&before);

        let (mut k, t) = prepared();
        let ops_before = k.ring_ops_serviced();
        let before = k.usage();
        let ring = wc_ring(&mut k, "/data/f", &t).unwrap();
        let ring_u = k.usage().since(&before);
        let ring_ops = k.ring_ops_serviced() - ops_before;
        assert!(seq_u.major_faults > 0, "cold pages faulted in both runs");

        assert_eq!(seq, ring, "byte-identical answer");
        // Identical data motion and paging either way...
        assert_eq!(seq_u.bytes_read, ring_u.bytes_read);
        assert_eq!(seq_u.major_faults, ring_u.major_faults);
        assert_eq!(seq_u.minor_faults, ring_u.minor_faults);
        assert_eq!(seq_u.device_reads, ring_u.device_reads);
        // io_wait is only near-identical: the disk model's rotational
        // position depends on virtual time, which the differing trap
        // charges shift slightly.
        let (a, b) = (seq_u.io_wait.as_secs_f64(), ring_u.io_wait.as_secs_f64());
        assert!((a - b).abs() < 0.05 * a, "io_wait {a} vs {b}");
        // ...but far fewer kernel boundary crossings,
        assert!(
            ring_u.syscall_crossings < seq_u.syscall_crossings / 8,
            "ring {} vs sequential {} crossings",
            ring_u.syscall_crossings,
            seq_u.syscall_crossings
        );
        // and the CPU gap is exactly the trap charges saved minus the
        // per-op ring servicing cost — nothing else moved.
        let cfg = k.config();
        let saved = (seq_u.syscall_crossings - ring_u.syscall_crossings) as f64
            * cfg.syscall_cpu.as_secs_f64();
        let ring_cost = ring_ops as f64 * cfg.ring_op_cpu.as_secs_f64();
        let gap = seq_u.cpu.as_secs_f64() - ring_u.cpu.as_secs_f64();
        assert!(
            (gap - (saved - ring_cost)).abs() < 1e-9,
            "gap {gap} vs saved {saved} - ring {ring_cost}"
        );
    }
}
