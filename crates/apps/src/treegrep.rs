//! Searching a source tree: the paper's motivating `find -exec grep` story.
//!
//! Section 5.2: "Programmers may do find -exec grep ... If the routine is
//! near the end of the set of files as normally scanned by find, or if the
//! user types control-C after seeing what he wants to see, the entry may be
//! cached but earlier files may already have been flushed. Repeating the
//! operation, then, causes a complete rescan ... the SLEDs-aware find
//! allows him to search cache first, then higher latency data only as
//! needed."
//!
//! [`tree_grep`] implements both behaviours over a directory tree: the
//! baseline greps files in `find`'s deterministic (name) order; the SLEDs
//! mode estimates each file's delivery time first (one cheap `FSLEDS_GET`
//! per file — this is Steere's file-sets idea expressed in SLEDs) and greps
//! cheapest-first, additionally using the in-file pick ordering. With
//! `stop_after_first`, the search ends at the first matching file — the
//! repeated-interactive-search case the paper describes.

use sleds::{total_delivery_time, AttackPlan, SledsTable};
use sleds_fs::{FileKind, Kernel, OpenFlags};
use sleds_sim_core::{SimDuration, SimResult};
use sleds_textmatch::Regex;

use crate::find::{find, FindOptions};
use crate::grep::{grep, GrepOptions};

/// One file's outcome in a tree search.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TreeMatch {
    /// The file searched.
    pub path: String,
    /// Matching lines found in it.
    pub match_count: usize,
}

/// Result of a tree search.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TreeGrepResult {
    /// Files with at least one match, in the order they were searched.
    pub matches: Vec<TreeMatch>,
    /// Files actually opened and searched.
    pub files_searched: usize,
    /// True when the search stopped at the first matching file.
    pub stopped_early: bool,
}

/// Options for a tree search.
#[derive(Clone, Debug, Default)]
pub struct TreeGrepOptions {
    /// Only files whose basename matches this glob (e.g. `*.c`).
    pub name_glob: Option<String>,
    /// Stop at the first file containing a match (the interactive
    /// "control-C after seeing what he wants" case).
    pub stop_after_first: bool,
}

/// Searches every file under `root` for `re`. `table` selects the SLEDs
/// mode: file *set* ordered cheapest-first, each file read in pick order.
pub fn tree_grep(
    kernel: &mut Kernel,
    root: &str,
    re: &Regex,
    opts: &TreeGrepOptions,
    table: Option<&SledsTable>,
) -> SimResult<TreeGrepResult> {
    let hits = find(
        kernel,
        root,
        &FindOptions {
            name_glob: opts.name_glob.clone(),
            kind: Some(FileKind::File),
            ..Default::default()
        },
        None,
    )?;
    let mut files: Vec<String> = hits.into_iter().map(|h| h.path).collect();

    // [sleds:begin]
    if let Some(table) = table {
        // Order the file set by estimated delivery time, cheapest first;
        // ties keep name order (stable sort).
        let mut keyed: Vec<(f64, String)> = Vec::with_capacity(files.len());
        for path in files.drain(..) {
            let fd = kernel.open(&path, OpenFlags::RDONLY)?;
            let est = total_delivery_time(kernel, table, fd, AttackPlan::Best)?;
            kernel.close(fd)?;
            keyed.push((est, path));
        }
        kernel.charge_cpu(SimDuration::from_nanos(150 * keyed.len() as u64));
        keyed.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite estimates"));
        files = keyed.into_iter().map(|(_, p)| p).collect();
    }
    // [sleds:end]

    let mut out = TreeGrepResult::default();
    let grep_opts = GrepOptions {
        first_match_only: opts.stop_after_first,
    };
    for path in files {
        let r = grep(kernel, &path, re, &grep_opts, table)?;
        out.files_searched += 1;
        if !r.matches.is_empty() {
            out.matches.push(TreeMatch {
                path,
                match_count: r.matches.len(),
            });
            if opts.stop_after_first {
                out.stopped_early = true;
                break;
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sleds_devices::DiskDevice;
    use sleds_fs::MachineConfig;
    use sleds_lmbench::fill_table;
    use sleds_sim_core::{ByteSize, DetRng};

    fn corpus(n: usize, seed: u64, needle: bool) -> Vec<u8> {
        let mut rng = DetRng::new(seed);
        let mut out = Vec::with_capacity(n);
        while out.len() < n {
            for _ in 0..rng.range_u64(4, 9) {
                out.push(b'a' + rng.range_u64(0, 26) as u8);
            }
            out.push(if rng.chance(0.2) { b'\n' } else { b' ' });
        }
        out.truncate(n);
        if needle {
            let p = n * 3 / 4;
            out[p..p + 4].copy_from_slice(b"ZQXJ");
        }
        out
    }

    fn setup_tree(file_kb: usize) -> (Kernel, SledsTable, Vec<String>) {
        let mut cfg = MachineConfig::table2();
        cfg.ram = ByteSize::mib(4);
        let mut k = Kernel::new(cfg);
        k.mkdir("/src").unwrap();
        let m = k
            .mount_disk("/src", DiskDevice::table2_disk("hda"))
            .unwrap();
        k.mkdir("/src/sub").unwrap();
        let mut paths = Vec::new();
        for i in 0..8 {
            let path = if i % 2 == 0 {
                format!("/src/f{i}.c")
            } else {
                format!("/src/sub/f{i}.c")
            };
            // The needle lives only in the LAST file in name order.
            let has_needle = i == 7;
            k.install_file(&path, &corpus(file_kb << 10, 100 + i as u64, has_needle))
                .unwrap();
            paths.push(path);
        }
        let t = fill_table(&mut k, &[("/src", m)]).unwrap();
        k.reset_counters();
        (k, t, paths)
    }

    #[test]
    fn both_modes_find_the_same_files() {
        let (mut k, t, _) = setup_tree(64);
        let re = Regex::new("ZQXJ").unwrap();
        let opts = TreeGrepOptions {
            name_glob: Some("*.c".into()),
            stop_after_first: false,
        };
        let base = tree_grep(&mut k, "/src", &re, &opts, None).unwrap();
        let with = tree_grep(&mut k, "/src", &re, &opts, Some(&t)).unwrap();
        let mut b: Vec<&str> = base.matches.iter().map(|m| m.path.as_str()).collect();
        let mut w: Vec<&str> = with.matches.iter().map(|m| m.path.as_str()).collect();
        b.sort();
        w.sort();
        assert_eq!(b, w);
        assert_eq!(b, vec!["/src/sub/f7.c"]);
    }

    #[test]
    fn repeated_search_hits_cache_first_and_stops_early() {
        // The paper's scenario: a first search warmed the match file, the
        // head of the file set has been flushed (the tree exceeds the
        // cache); repeating the search with SLEDs starts from the cached
        // tail of the set and does no device I/O.
        let (mut k, t, paths) = setup_tree(512);
        let re = Regex::new("ZQXJ").unwrap();
        let opts = TreeGrepOptions {
            name_glob: Some("*.c".into()),
            stop_after_first: true,
        };
        // First (baseline) search: scans f0..f7 in order, ends at f7,
        // leaving the last few files cached and the head flushed.
        let first = tree_grep(&mut k, "/src", &re, &opts, None).unwrap();
        assert!(first.stopped_early);
        assert_eq!(first.files_searched, 8, "needle is in the last file");

        // Repeat with SLEDs: cached files are estimated cheapest and
        // searched first; the match is found among them with zero
        // physical I/O.
        k.reset_counters();
        let j = k.start_job();
        let repeat = tree_grep(&mut k, "/src", &re, &opts, Some(&t)).unwrap();
        let rep = k.finish_job(&j);
        assert!(repeat.stopped_early);
        assert!(
            repeat.files_searched < 8,
            "cache-first order skips the flushed head"
        );
        assert_eq!(repeat.matches[0].path, *paths.last().unwrap());
        assert_eq!(rep.usage.major_faults, 0, "no physical I/O at all");

        // Repeating the baseline instead rescans everything from disk.
        k.reset_counters();
        let j = k.start_job();
        let naive = tree_grep(&mut k, "/src", &re, &opts, None).unwrap();
        let naive_rep = k.finish_job(&j);
        assert_eq!(naive.files_searched, 8);
        assert!(naive_rep.usage.major_faults > 500);
        assert!(
            naive_rep.elapsed.as_secs_f64() > 5.0 * rep.elapsed.as_secs_f64(),
            "rescan {} vs cache-first {}",
            naive_rep.elapsed,
            rep.elapsed
        );
    }

    #[test]
    fn glob_filters_the_file_set() {
        let (mut k, t, _) = setup_tree(16);
        k.install_file("/src/readme.txt", b"ZQXJ\n").unwrap();
        let re = Regex::new("ZQXJ").unwrap();
        let opts = TreeGrepOptions {
            name_glob: Some("*.txt".into()),
            stop_after_first: false,
        };
        let r = tree_grep(&mut k, "/src", &re, &opts, Some(&t)).unwrap();
        assert_eq!(r.files_searched, 1);
        assert_eq!(r.matches[0].path, "/src/readme.txt");
    }

    #[test]
    fn empty_tree_is_empty_result() {
        let mut k = Kernel::table2();
        k.mkdir("/empty").unwrap();
        k.mount_disk("/empty", DiskDevice::table2_disk("hda"))
            .unwrap();
        let re = Regex::new("x").unwrap();
        let r = tree_grep(&mut k, "/empty", &re, &TreeGrepOptions::default(), None).unwrap();
        assert_eq!(r, TreeGrepResult::default());
    }
}
