//! `grep`: regular-expression search.
//!
//! The baseline streams the file, matching line by line, printing matches
//! in file order, and with `-q` stops at the first match. The SLEDs mode
//! reads chunks in pick order (record-oriented, so no line ever straddles a
//! latency boundary), buffers its matches, and sorts them by offset before
//! returning — the paper calls out exactly this extra buffering/sorting as
//! why `grep` needed the most code of its ports, and why switches like `-n`
//! had to be reimplemented. Line numbers are reconstructed from per-segment
//! newline counts after the scan.
//!
//! With `-q` (first match wins), the SLEDs mode is the paper's "ideal
//! benchmark": if any cached chunk contains a match, it terminates without
//! a single device read.

use sleds::{PickConfig, PickSession, SledsTable};
use sleds_fs::{
    Fd, Kernel, OpenFlags, RingOp, RingPayload, SubmissionRing, Whence, DEFAULT_RING_ENTRIES,
};
use sleds_sim_core::{SimDuration, SimResult};
use sleds_textmatch::Regex;

use crate::{charge_per_byte, FileDiagnostic, BUFSIZE};

/// Fixed per-line CPU cost (line assembly, bookkeeping).
const GREP_NS_PER_LINE: u64 = 60;

/// Scan cost per byte per 8 compiled instructions.
const GREP_NS_PER_BYTE_BASE: u64 = 4;

/// One match.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GrepMatch {
    /// Byte offset of the start of the matching line.
    pub offset: u64,
    /// 1-based line number.
    pub line_number: u64,
    /// The matching line, without its newline.
    pub line: Vec<u8>,
}

/// `grep` output.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct GrepResult {
    /// Matches in file order.
    pub matches: Vec<GrepMatch>,
    /// True when `-q` stopped the scan early.
    pub stopped_early: bool,
}

/// Options for a grep run.
#[derive(Clone, Debug, Default)]
pub struct GrepOptions {
    /// Stop at the first match (`-q`).
    pub first_match_only: bool,
}

fn scan_cost(re: &Regex, bytes: usize) -> u64 {
    GREP_NS_PER_BYTE_BASE.max(re.instruction_count() as u64 / 8) * bytes as u64
}

/// Outcome of a multi-file grep run ([`grep_files`]).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct GrepFilesResult {
    /// Per-file results, in argument order, for the files that could be
    /// searched.
    pub files: Vec<(String, GrepResult)>,
    /// Files that could not be read, with the error each one hit.
    pub skipped: Vec<FileDiagnostic>,
}

impl GrepFilesResult {
    /// True when any searched file matched.
    pub fn any_match(&self) -> bool {
        self.files.iter().any(|(_, r)| !r.matches.is_empty())
    }

    /// Real grep's exit status: 0 when a match was found, 1 when none
    /// was, 2 when any file could not be read — nonzero but not fatal,
    /// the remaining arguments were still searched.
    pub fn exit_status(&self) -> i32 {
        if !self.skipped.is_empty() {
            2
        } else if self.any_match() {
            0
        } else {
            1
        }
    }
}

/// Greps every path in `paths`, skipping files whose reads fail the way
/// real grep does: the failure becomes a [`FileDiagnostic`] (the stderr
/// line), the exit status goes to 2, and the scan continues with the next
/// argument instead of propagating the first `SimError`.
pub fn grep_files(
    kernel: &mut Kernel,
    paths: &[&str],
    re: &Regex,
    opts: &GrepOptions,
    table: Option<&SledsTable>,
) -> GrepFilesResult {
    let mut out = GrepFilesResult::default();
    for &path in paths {
        match grep(kernel, path, re, opts, table) {
            Ok(r) => {
                let stop = r.stopped_early;
                out.files.push((path.to_string(), r));
                if stop && opts.first_match_only {
                    break;
                }
            }
            Err(error) => out.skipped.push(FileDiagnostic {
                path: path.to_string(),
                error,
            }),
        }
    }
    out
}

/// Runs grep over `path`. `table` selects SLEDs mode.
pub fn grep(
    kernel: &mut Kernel,
    path: &str,
    re: &Regex,
    opts: &GrepOptions,
    table: Option<&SledsTable>,
) -> SimResult<GrepResult> {
    kernel.trace_app_begin(if table.is_some() {
        "grep --sleds"
    } else {
        "grep"
    });
    let result = (|| {
        let fd = kernel.open(path, OpenFlags::RDONLY)?;
        let result = match table {
            None => grep_baseline(kernel, fd, re, opts),
            Some(table) => grep_sleds(kernel, fd, re, opts, table),
        };
        kernel.close(fd)?;
        result
    })();
    kernel.trace_app_end();
    result
}

fn grep_baseline(
    kernel: &mut Kernel,
    fd: Fd,
    re: &Regex,
    opts: &GrepOptions,
) -> SimResult<GrepResult> {
    let mut out = GrepResult::default();
    let mut carry: Vec<u8> = Vec::new();
    let mut carry_start = 0u64;
    let mut line_number = 1u64;
    let mut offset = 0u64;
    loop {
        let buf = kernel.read(fd, BUFSIZE)?;
        if buf.is_empty() {
            break;
        }
        charge_per_byte(kernel, buf.len(), 1); // copy into line assembly
        kernel.charge_cpu(SimDuration::from_nanos(scan_cost(re, buf.len())));
        let mut line_begin = 0usize;
        for (i, &b) in buf.iter().enumerate() {
            if b != b'\n' {
                continue;
            }
            kernel.charge_cpu(SimDuration::from_nanos(GREP_NS_PER_LINE));
            let (line_off, hit) = if carry.is_empty() {
                let line = &buf[line_begin..i];
                (offset + line_begin as u64, re.is_match(line))
            } else {
                carry.extend_from_slice(&buf[line_begin..i]);
                (carry_start, re.is_match(&carry))
            };
            if hit {
                let line = if carry.is_empty() {
                    buf[line_begin..i].to_vec()
                } else {
                    std::mem::take(&mut carry)
                };
                out.matches.push(GrepMatch {
                    offset: line_off,
                    line_number,
                    line,
                });
                if opts.first_match_only {
                    out.stopped_early = true;
                    return Ok(out);
                }
            }
            carry.clear();
            line_number += 1;
            line_begin = i + 1;
        }
        if line_begin < buf.len() {
            if carry.is_empty() {
                carry_start = offset + line_begin as u64;
            }
            carry.extend_from_slice(&buf[line_begin..]);
        }
        offset += buf.len() as u64;
    }
    // Unterminated final line.
    if !carry.is_empty() {
        kernel.charge_cpu(SimDuration::from_nanos(GREP_NS_PER_LINE));
        if re.is_match(&carry) {
            out.matches.push(GrepMatch {
                offset: carry_start,
                line_number,
                line: carry,
            });
            out.stopped_early = opts.first_match_only;
        }
    }
    Ok(out)
}

// [sleds:begin]
/// Per-segment scan state for the reordered pass.
///
/// A *segment* is a maximal contiguous run of chunks the pick plan returned
/// back to back. Because the plan is record-oriented, every segment starts
/// and ends on a record boundary (or at the file's edges), so no line spans
/// segments and each can be scanned independently.
struct SegmentScan {
    start: u64,
    end: u64,
    newlines: u64,
    /// (line start offset, newlines before it within the segment, text).
    matches: Vec<(u64, u64, Vec<u8>)>,
}

fn grep_sleds(
    kernel: &mut Kernel,
    fd: Fd,
    re: &Regex,
    opts: &GrepOptions,
    table: &SledsTable,
) -> SimResult<GrepResult> {
    let mut pick = PickSession::init(kernel, table, fd, PickConfig::records(BUFSIZE, b'\n'))?;
    let mut segments: Vec<SegmentScan> = Vec::new();
    let mut out = GrepResult::default();

    // Each contiguous run of chunks is scanned with the ordinary carry
    // logic. Record-aligned SLED edges guarantee runs start and end on line
    // boundaries, so a non-empty carry can only remain at end of file.
    let mut run: Option<SegmentScan> = None;
    let mut carry: Vec<u8> = Vec::new();
    let mut carry_start = 0u64;

    let close_run = |kernel: &mut Kernel,
                     run: &mut Option<SegmentScan>,
                     carry: &mut Vec<u8>,
                     carry_start: u64,
                     segments: &mut Vec<SegmentScan>,
                     re: &Regex| {
        if let Some(mut r) = run.take() {
            if !carry.is_empty() {
                // Unterminated final line (EOF), since runs end on record
                // boundaries everywhere else.
                kernel.charge_cpu(SimDuration::from_nanos(GREP_NS_PER_LINE));
                if re.is_match(carry) {
                    r.matches
                        .push((carry_start, r.newlines, std::mem::take(carry)));
                } else {
                    carry.clear();
                }
            }
            segments.push(r);
        }
    };

    while let Some((offset, len)) = pick.next_read() {
        let contiguous = matches!(&run, Some(r) if r.end == offset);
        if !contiguous {
            close_run(kernel, &mut run, &mut carry, carry_start, &mut segments, re);
            run = Some(SegmentScan {
                start: offset,
                end: offset,
                newlines: 0,
                matches: Vec::new(),
            });
        }
        let r = run.as_mut().expect("run just ensured");
        kernel.lseek(fd, offset as i64, Whence::Set)?;
        let buf = kernel.read(fd, len)?;
        charge_per_byte(kernel, buf.len(), 1);
        kernel.charge_cpu(SimDuration::from_nanos(scan_cost(re, buf.len())));
        let mut line_begin = 0usize;
        for (i, &b) in buf.iter().enumerate() {
            if b != b'\n' {
                continue;
            }
            kernel.charge_cpu(SimDuration::from_nanos(GREP_NS_PER_LINE));
            let (line_off, text): (u64, Vec<u8>) = if carry.is_empty() {
                (offset + line_begin as u64, buf[line_begin..i].to_vec())
            } else {
                carry.extend_from_slice(&buf[line_begin..i]);
                (carry_start, std::mem::take(&mut carry))
            };
            if re.is_match(&text) {
                r.matches.push((line_off, r.newlines, text));
                if opts.first_match_only {
                    let (off, _, line) = r.matches.pop().expect("just pushed");
                    out.matches.push(GrepMatch {
                        offset: off,
                        // Unknowable without scanning everything before it;
                        // the paper's -q likewise suppresses output.
                        line_number: 0,
                        line,
                    });
                    out.stopped_early = true;
                    pick.finish();
                    return Ok(out);
                }
            }
            r.newlines += 1;
            line_begin = i + 1;
        }
        if line_begin < buf.len() {
            if carry.is_empty() {
                carry_start = offset + line_begin as u64;
            }
            carry.extend_from_slice(&buf[line_begin..]);
        }
        r.end = offset + buf.len() as u64;
    }
    close_run(kernel, &mut run, &mut carry, carry_start, &mut segments, re);
    pick.finish();

    // Stitch: order the segments, assign line numbers by prefix sums over
    // per-segment newline counts, and emit matches in file order. This is
    // the buffering-and-sorting the paper's grep port had to add.
    segments.sort_by_key(|s| s.start);
    let match_count: u64 = segments.iter().map(|s| s.matches.len() as u64).sum();
    kernel.charge_cpu(SimDuration::from_nanos(
        200 * (segments.len() as u64 + 1) + 80 * match_count,
    ));
    let mut lines_before = 0u64;
    for s in &segments {
        for (off, nl_before, text) in &s.matches {
            out.matches.push(GrepMatch {
                offset: *off,
                line_number: lines_before + nl_before + 1,
                line: text.clone(),
            });
        }
        lines_before += s.newlines;
    }
    out.matches.sort_by_key(|m| m.offset);
    Ok(out)
}
// [sleds:end]

/// [`grep`] in SLEDs mode over the submission ring: the SLED retrieval
/// and the chunk reads go through the ring, a batch per ring's worth of
/// chunks. The pick plan, the scan order, the carry logic and the stitch
/// are identical to the sequential SLEDs mode, so the output is
/// bit-identical — including `-q`, where the ring may have *read* a few
/// chunks past the match (they were already in flight in the batch) but
/// scanning still stops at the same first match.
pub fn grep_ring(
    kernel: &mut Kernel,
    path: &str,
    re: &Regex,
    opts: &GrepOptions,
    table: &SledsTable,
) -> SimResult<GrepResult> {
    kernel.trace_app_begin("grep --sleds");
    let result = (|| {
        let fd = kernel.open(path, OpenFlags::RDONLY)?;
        let mut ring = SubmissionRing::new(DEFAULT_RING_ENTRIES);
        let result = grep_ring_fd(kernel, &mut ring, fd, re, opts, table);
        kernel.close(fd)?;
        result
    })();
    kernel.trace_app_end();
    result
}

fn grep_ring_fd(
    kernel: &mut Kernel,
    ring: &mut SubmissionRing,
    fd: Fd,
    re: &Regex,
    opts: &GrepOptions,
    table: &SledsTable,
) -> SimResult<GrepResult> {
    let mut pick =
        PickSession::init_ring(kernel, ring, table, fd, PickConfig::records(BUFSIZE, b'\n'))?;
    let mut segments: Vec<SegmentScan> = Vec::new();
    let mut out = GrepResult::default();
    let mut run: Option<SegmentScan> = None;
    let mut carry: Vec<u8> = Vec::new();
    let mut carry_start = 0u64;

    let close_run = |kernel: &mut Kernel,
                     run: &mut Option<SegmentScan>,
                     carry: &mut Vec<u8>,
                     carry_start: u64,
                     segments: &mut Vec<SegmentScan>,
                     re: &Regex| {
        if let Some(mut r) = run.take() {
            if !carry.is_empty() {
                kernel.charge_cpu(SimDuration::from_nanos(GREP_NS_PER_LINE));
                if re.is_match(carry) {
                    r.matches
                        .push((carry_start, r.newlines, std::mem::take(carry)));
                } else {
                    carry.clear();
                }
            }
            segments.push(r);
        }
    };

    loop {
        // Queue the next ring's worth of chunks; the chunk offset doubles
        // as the completion tag. Completions come back in submission
        // order, so the scan below sees the same chunk order the
        // sequential mode reads in.
        let mut queued = 0usize;
        while queued < ring.capacity() {
            let Some((offset, len)) = pick.next_read() else {
                break;
            };
            ring.push(
                offset,
                RingOp::Pread {
                    fd,
                    pos: offset,
                    len,
                },
            )?;
            queued += 1;
        }
        if queued == 0 {
            break;
        }
        kernel.ring_enter(ring)?;
        for c in kernel.ring_reap(ring) {
            let offset = c.user_data;
            let buf = match c.result? {
                RingPayload::Bytes(b) => b,
                _ => unreachable!("pread completes with bytes"),
            };
            let contiguous = matches!(&run, Some(r) if r.end == offset);
            if !contiguous {
                close_run(kernel, &mut run, &mut carry, carry_start, &mut segments, re);
                run = Some(SegmentScan {
                    start: offset,
                    end: offset,
                    newlines: 0,
                    matches: Vec::new(),
                });
            }
            let r = run.as_mut().expect("run just ensured");
            charge_per_byte(kernel, buf.len(), 1);
            kernel.charge_cpu(SimDuration::from_nanos(scan_cost(re, buf.len())));
            let mut line_begin = 0usize;
            for (i, &b) in buf.iter().enumerate() {
                if b != b'\n' {
                    continue;
                }
                kernel.charge_cpu(SimDuration::from_nanos(GREP_NS_PER_LINE));
                let (line_off, text): (u64, Vec<u8>) = if carry.is_empty() {
                    (offset + line_begin as u64, buf[line_begin..i].to_vec())
                } else {
                    carry.extend_from_slice(&buf[line_begin..i]);
                    (carry_start, std::mem::take(&mut carry))
                };
                if re.is_match(&text) {
                    r.matches.push((line_off, r.newlines, text));
                    if opts.first_match_only {
                        let (off, _, line) = r.matches.pop().expect("just pushed");
                        out.matches.push(GrepMatch {
                            offset: off,
                            line_number: 0,
                            line,
                        });
                        out.stopped_early = true;
                        pick.finish();
                        return Ok(out);
                    }
                }
                r.newlines += 1;
                line_begin = i + 1;
            }
            if line_begin < buf.len() {
                if carry.is_empty() {
                    carry_start = offset + line_begin as u64;
                }
                carry.extend_from_slice(&buf[line_begin..]);
            }
            r.end = offset + buf.len() as u64;
        }
    }
    close_run(kernel, &mut run, &mut carry, carry_start, &mut segments, re);
    pick.finish();

    segments.sort_by_key(|s| s.start);
    let match_count: u64 = segments.iter().map(|s| s.matches.len() as u64).sum();
    kernel.charge_cpu(SimDuration::from_nanos(
        200 * (segments.len() as u64 + 1) + 80 * match_count,
    ));
    let mut lines_before = 0u64;
    for s in &segments {
        for (off, nl_before, text) in &s.matches {
            out.matches.push(GrepMatch {
                offset: *off,
                line_number: lines_before + nl_before + 1,
                line: text.clone(),
            });
        }
        lines_before += s.newlines;
    }
    out.matches.sort_by_key(|m| m.offset);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sleds_devices::DiskDevice;
    use sleds_sim_core::{DetRng, PAGE_SIZE};

    fn setup() -> (Kernel, SledsTable) {
        let mut k = Kernel::table2();
        k.mkdir("/data").unwrap();
        let m = k
            .mount_disk("/data", DiskDevice::table2_disk("hda"))
            .unwrap();
        let dev = k.device_of_mount(m).unwrap();
        let mut t = SledsTable::new();
        t.fill_memory(sleds::SledsEntry::new(175e-9, 48e6));
        t.fill_device(dev, sleds::SledsEntry::new(0.018, 9e6));
        (k, t)
    }

    /// Lines of pseudo-words, one in `hit_every` containing "needle".
    fn corpus(n: usize, hit_every: u64, seed: u64) -> Vec<u8> {
        let mut rng = DetRng::new(seed);
        let mut out = Vec::with_capacity(n);
        let mut line_no = 0u64;
        while out.len() < n {
            line_no += 1;
            let words = rng.range_u64(3, 10);
            for w in 0..words {
                if w > 0 {
                    out.push(b' ');
                }
                if hit_every > 0 && line_no.is_multiple_of(hit_every) && w == 1 {
                    out.extend_from_slice(b"needle");
                } else {
                    for _ in 0..rng.range_u64(2, 9) {
                        out.push(b'a' + rng.range_u64(0, 26) as u8);
                    }
                }
            }
            out.push(b'\n');
        }
        out.truncate(n);
        // Keep the corpus newline-terminated for determinism.
        if let Some(last) = out.last_mut() {
            *last = b'\n';
        }
        out
    }

    #[test]
    fn finds_matches_with_line_numbers() {
        let (mut k, _) = setup();
        k.install_file("/data/f", b"one\ntwo needle x\nthree\nneedle\n")
            .unwrap();
        let re = Regex::new("needle").unwrap();
        let r = grep(&mut k, "/data/f", &re, &GrepOptions::default(), None).unwrap();
        assert_eq!(r.matches.len(), 2);
        assert_eq!(r.matches[0].line_number, 2);
        assert_eq!(r.matches[0].line, b"two needle x");
        assert_eq!(r.matches[1].line_number, 4);
        assert!(!r.stopped_early);
    }

    #[test]
    fn q_stops_early() {
        let (mut k, _) = setup();
        k.install_file("/data/f", b"x\nneedle\ny\nneedle\n")
            .unwrap();
        let re = Regex::new("needle").unwrap();
        let r = grep(
            &mut k,
            "/data/f",
            &re,
            &GrepOptions {
                first_match_only: true,
            },
            None,
        )
        .unwrap();
        assert_eq!(r.matches.len(), 1);
        assert!(r.stopped_early);
    }

    #[test]
    fn sleds_mode_matches_baseline_cold() {
        let (mut k, t) = setup();
        let text = corpus(6 * PAGE_SIZE as usize, 37, 3);
        k.install_file("/data/f", &text).unwrap();
        let re = Regex::new("needle").unwrap();
        let base = grep(&mut k, "/data/f", &re, &GrepOptions::default(), None).unwrap();
        k.drop_caches().unwrap();
        let with = grep(&mut k, "/data/f", &re, &GrepOptions::default(), Some(&t)).unwrap();
        assert_eq!(base.matches.len(), with.matches.len());
        for (a, b) in base.matches.iter().zip(&with.matches) {
            assert_eq!(a.offset, b.offset);
            assert_eq!(a.line, b.line);
            assert_eq!(a.line_number, b.line_number);
        }
    }

    #[test]
    fn sleds_mode_matches_baseline_warm_scrambled() {
        let (mut k, t) = setup();
        let text = corpus(10 * PAGE_SIZE as usize, 53, 4);
        k.install_file("/data/f", &text).unwrap();
        let re = Regex::new("needle").unwrap();
        let base = grep(&mut k, "/data/f", &re, &GrepOptions::default(), None).unwrap();
        // Warm two separated ranges so the plan has several latency runs.
        let fd = k.open("/data/f", OpenFlags::RDONLY).unwrap();
        k.lseek(fd, 2 * PAGE_SIZE as i64, Whence::Set).unwrap();
        k.read(fd, 2 * PAGE_SIZE as usize).unwrap();
        k.lseek(fd, 7 * PAGE_SIZE as i64, Whence::Set).unwrap();
        k.read(fd, PAGE_SIZE as usize).unwrap();
        k.close(fd).unwrap();
        let with = grep(&mut k, "/data/f", &re, &GrepOptions::default(), Some(&t)).unwrap();
        assert_eq!(base, with);
    }

    #[test]
    fn sleds_q_terminates_without_io_when_match_cached() {
        let (mut k, t) = setup();
        // Match near the END of the file; warm exactly that region.
        let mut text = corpus(20 * PAGE_SIZE as usize, 0, 5);
        let pos = 18 * PAGE_SIZE as usize;
        text[pos..pos + 6].copy_from_slice(b"needle");
        k.install_file("/data/f", &text).unwrap();
        let fd = k.open("/data/f", OpenFlags::RDONLY).unwrap();
        k.lseek(fd, 17 * PAGE_SIZE as i64, Whence::Set).unwrap();
        k.read(fd, 3 * PAGE_SIZE as usize).unwrap();
        k.close(fd).unwrap();
        k.reset_counters();

        let re = Regex::new("needle").unwrap();
        let j = k.start_job();
        let r = grep(
            &mut k,
            "/data/f",
            &re,
            &GrepOptions {
                first_match_only: true,
            },
            Some(&t),
        )
        .unwrap();
        let rep = k.finish_job(&j);
        assert!(r.stopped_early);
        assert_eq!(
            rep.usage.major_faults, 0,
            "match was cached; no device I/O needed"
        );

        // Baseline from the front must fault its way through ~18 pages.
        k.reset_counters();
        let j = k.start_job();
        grep(
            &mut k,
            "/data/f",
            &re,
            &GrepOptions {
                first_match_only: true,
            },
            None,
        )
        .unwrap();
        let rep = k.finish_job(&j);
        assert!(rep.usage.major_faults > 10);
    }

    #[test]
    fn no_match_returns_empty() {
        let (mut k, t) = setup();
        k.install_file("/data/f", b"aaa\nbbb\n").unwrap();
        let re = Regex::new("zzz").unwrap();
        for table in [None, Some(&t)] {
            let r = grep(&mut k, "/data/f", &re, &GrepOptions::default(), table).unwrap();
            assert!(r.matches.is_empty());
        }
    }

    #[test]
    fn unterminated_last_line_is_searched() {
        let (mut k, t) = setup();
        k.install_file("/data/f", b"aaa\nneedle-at-eof").unwrap();
        let re = Regex::new("needle").unwrap();
        let base = grep(&mut k, "/data/f", &re, &GrepOptions::default(), None).unwrap();
        assert_eq!(base.matches.len(), 1);
        assert_eq!(base.matches[0].line_number, 2);
        let with = grep(&mut k, "/data/f", &re, &GrepOptions::default(), Some(&t)).unwrap();
        assert_eq!(base, with);
    }

    #[test]
    fn grep_files_skips_unreadable_files_with_diagnostics() {
        use sleds_devices::FaultPlan;
        use sleds_sim_core::SimTime;
        let (mut k, _) = setup();
        k.install_file("/data/ok", b"a needle here\n").unwrap();
        k.install_file("/data/bad", b"another needle\n").unwrap();
        k.drop_caches().unwrap();
        // Warm only /data/ok, then take the disk offline: the cached file
        // still greps, the cold one fails with EIO.
        let fd = k.open("/data/ok", OpenFlags::RDONLY).unwrap();
        k.read(fd, 1024).unwrap();
        k.close(fd).unwrap();
        k.apply_fault_plan(&FaultPlan::new().offline(
            "hda",
            SimTime::ZERO,
            SimTime::from_nanos(u64::MAX),
            SimDuration::from_millis(1),
        ));
        let re = Regex::new("needle").unwrap();
        let r = grep_files(
            &mut k,
            &["/data/ok", "/data/bad"],
            &re,
            &GrepOptions::default(),
            None,
        );
        assert_eq!(r.files.len(), 1);
        assert_eq!(r.files[0].0, "/data/ok");
        assert_eq!(r.files[0].1.matches.len(), 1);
        assert_eq!(r.skipped.len(), 1);
        assert_eq!(r.skipped[0].path, "/data/bad");
        assert_eq!(r.skipped[0].error.errno, sleds_sim_core::Errno::Eio);
        assert!(r.skipped[0].render("grep").starts_with("grep: /data/bad: "));
        assert_eq!(r.exit_status(), 2, "errors trump matches, like real grep");
    }

    #[test]
    fn grep_files_exit_status_reflects_matches() {
        let (mut k, _) = setup();
        k.install_file("/data/a", b"needle\n").unwrap();
        k.install_file("/data/b", b"nothing\n").unwrap();
        let re = Regex::new("needle").unwrap();
        let hit = grep_files(&mut k, &["/data/a"], &re, &GrepOptions::default(), None);
        assert_eq!(hit.exit_status(), 0);
        let miss = grep_files(&mut k, &["/data/b"], &re, &GrepOptions::default(), None);
        assert_eq!(miss.exit_status(), 1);
    }

    #[test]
    fn regex_patterns_work_through_grep() {
        let (mut k, _) = setup();
        k.install_file(
            "/data/src.c",
            b"int main() {\n  sleds_pick_init(fd, SZ);\n}\n",
        )
        .unwrap();
        let re = Regex::new(r"sleds_pick_\w+\(").unwrap();
        let r = grep(&mut k, "/data/src.c", &re, &GrepOptions::default(), None).unwrap();
        assert_eq!(r.matches.len(), 1);
        assert_eq!(r.matches[0].line_number, 2);
    }

    #[test]
    fn ring_mode_matches_sleds_mode_exactly() {
        let (mut k, t) = setup();
        let text = corpus(6 * BUFSIZE + 777, 97, 11);
        k.install_file("/data/f", &text).unwrap();
        // Warm a middle slice so the pick plan genuinely reorders.
        let fd = k.open("/data/f", OpenFlags::RDONLY).unwrap();
        k.lseek(fd, 5 * PAGE_SIZE as i64, Whence::Set).unwrap();
        k.read(fd, 3 * PAGE_SIZE as usize).unwrap();
        k.close(fd).unwrap();
        let re = Regex::new("needle").unwrap();
        let seq = grep(&mut k, "/data/f", &re, &GrepOptions::default(), Some(&t)).unwrap();
        let ring = grep_ring(&mut k, "/data/f", &re, &GrepOptions::default(), &t).unwrap();
        assert_eq!(seq, ring, "offsets, line numbers and text all identical");
        assert!(!ring.matches.is_empty());
    }

    #[test]
    fn ring_mode_q_stops_at_the_same_first_match() {
        let (mut k, t) = setup();
        let text = corpus(4 * BUFSIZE, 53, 13);
        k.install_file("/data/f", &text).unwrap();
        let re = Regex::new("needle").unwrap();
        let opts = GrepOptions {
            first_match_only: true,
        };
        let seq = grep(&mut k, "/data/f", &re, &opts, Some(&t)).unwrap();
        let ring = grep_ring(&mut k, "/data/f", &re, &opts, &t).unwrap();
        assert_eq!(seq, ring);
        assert!(ring.stopped_early);
        assert_eq!(ring.matches.len(), 1);
        assert_eq!(ring.matches[0].line_number, 0, "-q suppresses numbering");
    }
}
