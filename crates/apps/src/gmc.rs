//! `gmc`: the file manager's SLEDs properties panel.
//!
//! The paper added a panel to GNOME Midnight Commander's file-properties
//! dialog showing each SLED of the file and the estimated total delivery
//! time (its Figure 6), so users can decide whether a file is worth opening
//! — the pure *reporting* use of SLEDs. This module produces that panel.

use sleds::{fsleds_get, AttackPlan, ObservedError, SledReport, SledsTable};
use sleds_fs::{Kernel, OpenFlags};
use sleds_sim_core::SimResult;

/// The information the panel displays.
#[derive(Clone, Debug)]
pub struct PropertiesPanel {
    /// Formatted report (per-SLED rows + totals).
    pub report: SledReport,
    /// File size in bytes.
    pub size: u64,
    /// Estimated delivery (linear plan), seconds.
    pub linear_secs: f64,
    /// Estimated delivery (reordered plan), seconds.
    pub best_secs: f64,
    /// Fraction of bytes at the cheapest level.
    pub cached_fraction: f64,
    /// Forecast (section 3.4 extension): competing bytes the cache can
    /// absorb before the cheapest SLED starts degrading, when predictable.
    pub stable_for_bytes: Option<u64>,
}

// [sleds:begin]
/// Builds the SLEDs properties panel for `path`.
pub fn properties_panel(
    kernel: &mut Kernel,
    table: &SledsTable,
    path: &str,
) -> SimResult<PropertiesPanel> {
    let size = kernel.stat(path)?.size;
    let fd = kernel.open(path, OpenFlags::RDONLY)?;
    let sleds = fsleds_get(kernel, fd, table)?;
    let forecasts = sleds::forecast(kernel, table, fd)?;
    // Observed prediction error for the class that would serve this file,
    // from the kernel's rolling accuracy windows. The ioctl is issued
    // unconditionally so a traced panel costs the same virtual time as an
    // untraced one; an untraced kernel just returns empty windows.
    let class = kernel.serving_class_code(fd)?;
    let stats = kernel.fsleds_stat(fd)?;
    let eta_error = stats
        .device
        .get(class as usize)
        .and_then(|cm| {
            cm.accuracy
                .mean_abs_rel_err()
                .map(|e| (e, cm.accuracy.len()))
        })
        .map(|(e, n)| ObservedError {
            mean_abs_rel_err: e,
            samples: n,
        });
    kernel.close(fd)?;
    let stable_for_bytes = forecasts.iter().filter_map(|f| f.survives_bytes()).min();
    let report = SledReport::new(path, sleds).with_observed_error(eta_error);
    Ok(PropertiesPanel {
        linear_secs: report.total_secs(AttackPlan::Linear),
        best_secs: report.total_secs(AttackPlan::Best),
        cached_fraction: report.cached_fraction(),
        size,
        report,
        stable_for_bytes,
    })
}
// [sleds:end]

impl std::fmt::Display for PropertiesPanel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.report)?;
        writeln!(
            f,
            "  size {} bytes, {:.0}% cached",
            self.size,
            self.cached_fraction * 100.0
        )?;
        if let Some(b) = self.stable_for_bytes {
            writeln!(
                f,
                "  cached portion stable for ~{} MiB of competing traffic",
                b >> 20
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sleds_devices::DiskDevice;
    use sleds_fs::Whence;
    use sleds_lmbench::fill_table;
    use sleds_sim_core::PAGE_SIZE;

    #[test]
    fn panel_reflects_cache_state() {
        let mut k = Kernel::table2();
        k.mkdir("/data").unwrap();
        let m = k
            .mount_disk("/data", DiskDevice::table2_disk("hda"))
            .unwrap();
        let data = vec![0u8; 16 * PAGE_SIZE as usize];
        k.install_file("/data/f", &data).unwrap();
        let t = fill_table(&mut k, &[("/data", m)]).unwrap();

        let cold = properties_panel(&mut k, &t, "/data/f").unwrap();
        assert_eq!(cold.size, data.len() as u64);
        assert_eq!(cold.cached_fraction, 0.0);
        assert!(cold.linear_secs > 0.01, "cold file needs a disk access");

        // Warm half the file.
        let fd = k.open("/data/f", OpenFlags::RDONLY).unwrap();
        k.lseek(fd, 8 * PAGE_SIZE as i64, Whence::Set).unwrap();
        k.read(fd, 8 * PAGE_SIZE as usize).unwrap();
        k.close(fd).unwrap();

        let warm = properties_panel(&mut k, &t, "/data/f").unwrap();
        assert!((warm.cached_fraction - 0.5).abs() < 0.01);
        assert!(warm.best_secs < cold.best_secs);
        assert!(warm.best_secs <= warm.linear_secs + 1e-12);
        assert!(
            warm.stable_for_bytes.is_some(),
            "LRU cache state is forecastable"
        );
        assert!(
            cold.stable_for_bytes.is_none(),
            "nothing cached, nothing to hold"
        );
        let text = format!("{warm}");
        assert!(text.contains("50% cached"));
        assert!(text.contains("estimated delivery"));
        assert!(text.contains("stable for"));
    }

    #[test]
    fn panel_carries_observed_error_bar_when_traced() {
        let mut k = Kernel::table2();
        k.enable_tracing();
        k.mkdir("/data").unwrap();
        let m = k
            .mount_disk("/data", DiskDevice::table2_disk("hda"))
            .unwrap();
        let data = vec![7u8; 8 * PAGE_SIZE as usize];
        k.install_file("/data/f", &data).unwrap();
        let t = fill_table(&mut k, &[("/data", m)]).unwrap();

        // No audited predictions yet: panel renders without an error bar.
        let before = properties_panel(&mut k, &t, "/data/f").unwrap();
        assert!(before.report.observed_error().is_none());

        // Predict, read to completion, close — one audited pair.
        let fd = k.open("/data/f", OpenFlags::RDONLY).unwrap();
        sleds::total_delivery_time(&mut k, &t, fd, AttackPlan::Linear).unwrap();
        k.read(fd, data.len()).unwrap();
        k.close(fd).unwrap();

        let after = properties_panel(&mut k, &t, "/data/f").unwrap();
        let err = after.report.observed_error().expect("window has a sample");
        assert_eq!(err.samples, 1);
        assert!(format!("{after}").contains("observed error"));
    }

    #[test]
    fn panel_on_missing_file_fails() {
        let mut k = Kernel::table2();
        let t = SledsTable::new();
        assert!(properties_panel(&mut k, &t, "/nope").is_err());
    }
}
