//! `fimgbin`: rebin a FITS image with a rectangular boxcar filter.
//!
//! An `f x f` boxcar reduces the data volume by `f^2` (the paper ran
//! factors 4 and 16, i.e. 2x2 and 4x4). The baseline streams input rows and
//! writes each finished output row sequentially. The SLEDs port reorders
//! the *input* reads; output rows then complete out of order and are
//! written positionally through an accumulation buffer — the "substantially
//! more complex write path with more internal buffering" the paper blames
//! for fimgbin's smaller elapsed-time gains despite similar fault
//! reductions.

use std::collections::HashMap;

use sleds::{PickConfig, PickSession, SledsTable};
use sleds_fits::{header::FitsHeader, FitsReader};
use sleds_fs::{Fd, Kernel, OpenFlags, Whence};
use sleds_sim_core::{Errno, SimDuration, SimError, SimResult};

use crate::{charge_per_byte, BUFSIZE};

/// CPU cost of convert + accumulate, per input pixel.
const ACCUM_NS_PER_PIXEL: u64 = 7;

/// CPU cost of encoding output pixels, per byte.
const ENCODE_NS_PER_BYTE: u64 = 3;

/// fimgbin's output description.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FimgbinResult {
    /// Output path.
    pub output: String,
    /// Boxcar edge (2 for 4x reduction, 4 for 16x).
    pub factor: usize,
    /// Output image width.
    pub out_width: usize,
    /// Output image height.
    pub out_height: usize,
}

/// One output row being accumulated.
struct RowAccum {
    sums: Vec<f64>,
    samples: u64,
}

/// Shared output-file state.
struct Output {
    fd: Fd,
    data_start: u64,
    out_width: usize,
    row_bytes: u64,
    bitpix: sleds_fits::Bitpix,
    rows_written: u64,
}

impl Output {
    fn write_row(&mut self, kernel: &mut Kernel, row_index: u64, means: &[f64]) -> SimResult<()> {
        debug_assert_eq!(means.len(), self.out_width);
        let bytes = self.bitpix.encode(means);
        charge_per_byte(kernel, bytes.len(), ENCODE_NS_PER_BYTE);
        kernel.lseek(
            self.fd,
            (self.data_start + row_index * self.row_bytes) as i64,
            Whence::Set,
        )?;
        kernel.write(self.fd, &bytes)?;
        self.rows_written += 1;
        Ok(())
    }
}

/// Runs fimgbin: rebins `input` by `factor` into `output`. `table` selects
/// the SLEDs mode. Trailing rows/columns that do not fill a whole box are
/// discarded, as the LHEASOFT tool does.
pub fn fimgbin(
    kernel: &mut Kernel,
    input: &str,
    output: &str,
    factor: usize,
    table: Option<&SledsTable>,
) -> SimResult<FimgbinResult> {
    if factor < 2 {
        return Err(SimError::new(Errno::Einval, "fimgbin: factor must be >= 2"));
    }
    let reader = FitsReader::open(kernel, input)?;
    let axes = reader.header().axes()?;
    if axes.len() != 2 {
        return Err(SimError::new(Errno::Einval, "fimgbin: need a 2-D image"));
    }
    let (in_w, in_h) = (axes[0], axes[1]);
    let (out_w, out_h) = (in_w / factor, in_h / factor);
    if out_w == 0 || out_h == 0 {
        return Err(SimError::new(
            Errno::Einval,
            "fimgbin: image smaller than box",
        ));
    }
    let bitpix = reader.bitpix();

    // Output header, then positional row writes into the data unit.
    let out_fd = kernel.open(output, OpenFlags::CREATE_RDWR)?;
    let header = FitsHeader::primary(bitpix, &[out_w, out_h]);
    let enc = header.encode();
    kernel.write(out_fd, &enc)?;
    let mut out = Output {
        fd: out_fd,
        data_start: enc.len() as u64,
        out_width: out_w,
        row_bytes: (out_w * bitpix.bytes_per_pixel()) as u64,
        bitpix,
        rows_written: 0,
    };

    let box_samples = (factor * factor * out_w) as u64;
    let mut accums: HashMap<u64, RowAccum> = HashMap::new();
    let mut process = |kernel: &mut Kernel,
                       out: &mut Output,
                       first_pixel: u64,
                       values: &[f64]|
     -> SimResult<()> {
        kernel.charge_cpu(SimDuration::from_nanos(
            ACCUM_NS_PER_PIXEL * values.len() as u64,
        ));
        for (i, &v) in values.iter().enumerate() {
            let idx = first_pixel + i as u64;
            let x = (idx % in_w as u64) as usize;
            let y = (idx / in_w as u64) as usize;
            if x >= out_w * factor || y >= out_h * factor {
                continue; // discarded remainder
            }
            let row = (y / factor) as u64;
            let acc = accums.entry(row).or_insert_with(|| RowAccum {
                sums: vec![0.0; out_w],
                samples: 0,
            });
            acc.sums[x / factor] += v;
            acc.samples += 1;
            if acc.samples == box_samples {
                let acc = accums.remove(&row).expect("just inserted");
                let denom = (factor * factor) as f64;
                let means: Vec<f64> = acc.sums.iter().map(|s| s / denom).collect();
                out.write_row(kernel, row, &means)?;
            }
        }
        Ok(())
    };

    let bpp = bitpix.bytes_per_pixel() as u64;
    let data_start = reader.data_start();
    let data_end = data_start + reader.pixel_count() * bpp;
    match table {
        None => {
            let mut pos = data_start;
            while pos < data_end {
                let len = (data_end - pos).min(BUFSIZE as u64) as usize;
                let bytes = kernel.pread(reader.fd(), pos, len)?;
                let values = bitpix.decode(&bytes)?;
                process(kernel, &mut out, (pos - data_start) / bpp, &values)?;
                pos += len as u64;
            }
        }
        // [sleds:begin]
        Some(table) => {
            let mut pick =
                PickSession::init(kernel, table, reader.fd(), PickConfig::bytes(BUFSIZE))?;
            while let Some((offset, len)) = pick.next_read() {
                let lo = offset.max(data_start);
                let hi = (offset + len as u64).min(data_end);
                if lo >= hi {
                    continue;
                }
                let bytes = kernel.pread(reader.fd(), lo, (hi - lo) as usize)?;
                let values = bitpix.decode(&bytes)?;
                process(kernel, &mut out, (lo - data_start) / bpp, &values)?;
            }
            pick.finish();
        } // [sleds:end]
    }

    if out.rows_written != out_h as u64 {
        return Err(SimError::new(
            Errno::Eio,
            format!(
                "fimgbin: {} of {} output rows completed",
                out.rows_written, out_h
            ),
        ));
    }
    // Pad the data unit to a FITS block boundary.
    let data_bytes = out_h as u64 * out.row_bytes;
    let padded = sleds_fits::header::padded_len(data_bytes);
    if padded > data_bytes {
        kernel.lseek(out_fd, (out.data_start + data_bytes) as i64, Whence::Set)?;
        kernel.write(out_fd, &vec![0u8; (padded - data_bytes) as usize])?;
    }
    kernel.close(reader.fd())?;
    kernel.close(out_fd)?;
    Ok(FimgbinResult {
        output: output.to_string(),
        factor,
        out_width: out_w,
        out_height: out_h,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sleds_devices::DiskDevice;
    use sleds_fits::{generate_image_bytes, Bitpix, FitsWriter};
    use sleds_lmbench::fill_table;

    fn setup() -> (Kernel, SledsTable) {
        let mut k = Kernel::table3();
        k.mkdir("/data").unwrap();
        let m = k
            .mount_disk("/data", DiskDevice::table3_disk("hda"))
            .unwrap();
        let t = fill_table(&mut k, &[("/data", m)]).unwrap();
        (k, t)
    }

    /// Reads an output image fully, as f64 pixels.
    fn read_image(k: &mut Kernel, path: &str) -> (Vec<usize>, Vec<f64>) {
        let r = FitsReader::open(k, path).unwrap();
        let axes = r.header().axes().unwrap();
        let px = r.read_pixels_at(k, 0, r.pixel_count() as usize).unwrap();
        k.close(r.fd()).unwrap();
        (axes, px)
    }

    #[test]
    fn boxcar_means_are_exact() {
        let (mut k, _) = setup();
        // 4x2 image with known values; 2x2 boxes -> 2x1 output.
        let mut w = FitsWriter::create(&mut k, "/data/in.fits", Bitpix::F64, &[4, 2]).unwrap();
        w.write_pixels(&mut k, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0])
            .unwrap();
        let fd = w.finish(&mut k).unwrap();
        k.close(fd).unwrap();
        let r = fimgbin(&mut k, "/data/in.fits", "/data/out.fits", 2, None).unwrap();
        assert_eq!((r.out_width, r.out_height), (2, 1));
        let (axes, px) = read_image(&mut k, "/data/out.fits");
        assert_eq!(axes, vec![2, 1]);
        // Boxes: {1,2,5,6} -> 3.5 and {3,4,7,8} -> 5.5.
        assert_eq!(px, vec![3.5, 5.5]);
    }

    #[test]
    fn ragged_edges_are_discarded() {
        let (mut k, _) = setup();
        let mut w = FitsWriter::create(&mut k, "/data/in.fits", Bitpix::F32, &[5, 5]).unwrap();
        w.write_pixels(&mut k, &[2.0; 25]).unwrap();
        let fd = w.finish(&mut k).unwrap();
        k.close(fd).unwrap();
        let r = fimgbin(&mut k, "/data/in.fits", "/data/out.fits", 2, None).unwrap();
        assert_eq!((r.out_width, r.out_height), (2, 2));
        let (_, px) = read_image(&mut k, "/data/out.fits");
        assert_eq!(px, vec![2.0; 4]);
    }

    #[test]
    fn sleds_mode_output_is_identical() {
        let (mut k, t) = setup();
        let img = generate_image_bytes(256, 128, Bitpix::I16, 21);
        k.install_file("/data/in.fits", &img).unwrap();
        fimgbin(&mut k, "/data/in.fits", "/data/b.fits", 2, None).unwrap();
        fimgbin(&mut k, "/data/in.fits", "/data/s.fits", 2, Some(&t)).unwrap();
        let (ab, pb) = read_image(&mut k, "/data/b.fits");
        let (as_, ps) = read_image(&mut k, "/data/s.fits");
        assert_eq!(ab, as_);
        assert_eq!(pb, ps);
    }

    #[test]
    fn factor_16_writes_one_sixteenth() {
        let (mut k, _) = setup();
        let img = generate_image_bytes(512, 256, Bitpix::I16, 22);
        k.install_file("/data/in.fits", &img).unwrap();
        k.reset_counters();
        let j = k.start_job();
        fimgbin(&mut k, "/data/in.fits", "/data/out.fits", 4, None).unwrap();
        let rep = k.finish_job(&j);
        let ratio = rep.usage.bytes_written as f64 / rep.usage.bytes_read as f64;
        assert!(
            ratio < 0.12,
            "16x reduction should write ~1/16 of what it reads, got {ratio}"
        );
    }

    #[test]
    fn errors_on_bad_factor_and_shape() {
        let (mut k, _) = setup();
        let img = generate_image_bytes(8, 8, Bitpix::U8, 23);
        k.install_file("/data/in.fits", &img).unwrap();
        assert!(fimgbin(&mut k, "/data/in.fits", "/data/o.fits", 1, None).is_err());
        assert!(fimgbin(&mut k, "/data/in.fits", "/data/o.fits", 16, None).is_err());
        // 1-D image is rejected.
        let mut w = FitsWriter::create(&mut k, "/data/one.fits", Bitpix::U8, &[32]).unwrap();
        w.write_pixels(&mut k, &vec![0.0; 32]).unwrap();
        let fd = w.finish(&mut k).unwrap();
        k.close(fd).unwrap();
        assert!(fimgbin(&mut k, "/data/one.fits", "/data/o.fits", 2, None).is_err());
    }
}
