//! `fimhisto`: copy a FITS image and append a histogram of its pixels.
//!
//! Faithful to the LHEASOFT tool's three-pass structure, which is what
//! makes it interesting for SLEDs (the paper observed its cache behaviour
//! matches Figure 3):
//!
//! 1. copy the main data unit to the output file, unprocessed;
//! 2. read the pixels again (with format conversion) to find the value
//!    range for binning;
//! 3. read the pixels a third time, bin them, and append the histogram to
//!    the output.
//!
//! The SLEDs port reorders the reads of passes 2 and 3 — pass 1's output
//! copy stays sequential, exactly as the paper did it. About a quarter of
//! the total I/O is writes, which SLEDs does not help; that is the paper's
//! explanation for fimhisto's smaller gains, and it emerges here too.

use sleds::{PickConfig, PickSession, SledsTable};
use sleds_fits::{header::FitsHeader, Bitpix, FitsReader, FitsWriter};
use sleds_fs::{Kernel, OpenFlags, Whence};
use sleds_sim_core::{SimDuration, SimResult};

use crate::{charge_per_byte, BUFSIZE};

/// CPU cost of pixel format conversion, per byte.
const CONVERT_NS_PER_BYTE: u64 = 5;

/// CPU cost of histogram binning, per pixel.
const BIN_NS_PER_PIXEL: u64 = 4;

/// Histogram bins, matching the LHEASOFT default.
pub const DEFAULT_BINS: usize = 256;

/// fimhisto's output: where the copy went and what the histogram was.
#[derive(Clone, Debug, PartialEq)]
pub struct FimhistoResult {
    /// The output file (copy + appended histogram HDU).
    pub output: String,
    /// Pixel value range found in pass 2.
    pub min: f64,
    /// Pixel value range found in pass 2.
    pub max: f64,
    /// Bin counts from pass 3.
    pub histogram: Vec<u64>,
}

/// Runs fimhisto: copies `input` to `output` and appends a histogram HDU.
/// `table` selects the SLEDs mode for passes 2 and 3.
pub fn fimhisto(
    kernel: &mut Kernel,
    input: &str,
    output: &str,
    bins: usize,
    table: Option<&SledsTable>,
) -> SimResult<FimhistoResult> {
    let reader = FitsReader::open(kernel, input)?;
    let in_fd = reader.fd();
    let bitpix = reader.bitpix();
    let file_size = kernel.fstat(in_fd)?.size;

    // Pass 1: copy everything, sequentially (both modes).
    let out_fd = kernel.open(output, OpenFlags::CREATE_RDWR)?;
    sleds_fits::io::copy_bytes(kernel, in_fd, out_fd, file_size, BUFSIZE)?;

    // Pass 2: find the value range.
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    for_each_pixel_chunk(kernel, &reader, table, |kernel, values| {
        charge_per_byte(
            kernel,
            values.len() * bitpix.bytes_per_pixel(),
            CONVERT_NS_PER_BYTE,
        );
        for &v in values {
            min = min.min(v);
            max = max.max(v);
        }
    })?;
    if !min.is_finite() || !max.is_finite() {
        min = 0.0;
        max = 0.0;
    }

    // Pass 3: bin.
    let mut histogram = vec![0u64; bins.max(1)];
    let width = if max > min { max - min } else { 1.0 };
    let last_bin = histogram.len() - 1;
    for_each_pixel_chunk(kernel, &reader, table, |kernel, values| {
        charge_per_byte(
            kernel,
            values.len() * bitpix.bytes_per_pixel(),
            CONVERT_NS_PER_BYTE,
        );
        kernel.charge_cpu(SimDuration::from_nanos(
            BIN_NS_PER_PIXEL * values.len() as u64,
        ));
        for &v in values {
            let b = (((v - min) / width) * last_bin as f64).round() as usize;
            histogram[b.min(last_bin)] += 1;
        }
    })?;

    // Append the histogram as an IMAGE extension on the output.
    kernel.lseek(out_fd, 0, Whence::End)?;
    let ext = FitsHeader::image_extension(Bitpix::F64, &[histogram.len()]);
    let mut w = FitsWriter::begin_hdu(kernel, out_fd, ext)?;
    let as_f64: Vec<f64> = histogram.iter().map(|&c| c as f64).collect();
    w.write_pixels(kernel, &as_f64)?;
    let out_fd = w.finish(kernel)?;

    kernel.close(in_fd)?;
    kernel.close(out_fd)?;
    Ok(FimhistoResult {
        output: output.to_string(),
        min,
        max,
        histogram,
    })
}

/// Drives one full pass over the input pixels, in sequential order
/// (baseline) or pick order (SLEDs), invoking `f` with decoded values.
fn for_each_pixel_chunk(
    kernel: &mut Kernel,
    reader: &FitsReader,
    table: Option<&SledsTable>,
    mut f: impl FnMut(&mut Kernel, &[f64]),
) -> SimResult<()> {
    let bpp = reader.bitpix().bytes_per_pixel() as u64;
    let data_start = reader.data_start();
    let data_end = data_start + reader.pixel_count() * bpp;
    match table {
        None => {
            let mut pos = data_start;
            while pos < data_end {
                let len = (data_end - pos).min(BUFSIZE as u64) as usize;
                let bytes = kernel.pread(reader.fd(), pos, len)?;
                let values = reader.bitpix().decode(&bytes)?;
                f(kernel, &values);
                pos += len as u64;
            }
        }
        // [sleds:begin]
        Some(table) => {
            let mut pick =
                PickSession::init(kernel, table, reader.fd(), PickConfig::bytes(BUFSIZE))?;
            while let Some((offset, len)) = pick.next_read() {
                // Clip the chunk to the pixel region. Cut points stay
                // pixel-aligned: pages, FITS blocks and pixels all divide
                // evenly into each other.
                let lo = offset.max(data_start);
                let hi = (offset + len as u64).min(data_end);
                if lo >= hi {
                    continue;
                }
                debug_assert!((lo - data_start).is_multiple_of(bpp));
                let bytes = kernel.pread(reader.fd(), lo, (hi - lo) as usize)?;
                let values = reader.bitpix().decode(&bytes)?;
                f(kernel, &values);
            }
            pick.finish();
        } // [sleds:end]
    }
    Ok(())
}

/// Convenience for tests and benches: decoded histogram of a finished
/// output file's extension HDU.
pub fn read_back_histogram(kernel: &mut Kernel, output: &str) -> SimResult<Vec<u64>> {
    let primary = FitsReader::open(kernel, output)?;
    let next = primary.next_hdu_offset()?;
    let fd = primary.fd();
    let ext = FitsReader::from_fd(kernel, fd, next)?;
    let values = ext.read_pixels_at(kernel, 0, ext.pixel_count() as usize)?;
    kernel.close(fd)?;
    Ok(values.iter().map(|&v| v as u64).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use sleds_devices::DiskDevice;
    use sleds_fits::generate_image_bytes;
    use sleds_lmbench::fill_table;

    fn setup() -> (Kernel, SledsTable) {
        let mut k = Kernel::table3();
        k.mkdir("/data").unwrap();
        let m = k
            .mount_disk("/data", DiskDevice::table3_disk("hda"))
            .unwrap();
        let t = fill_table(&mut k, &[("/data", m)]).unwrap();
        (k, t)
    }

    #[test]
    fn histogram_counts_every_pixel() {
        let (mut k, _) = setup();
        let img = generate_image_bytes(128, 64, Bitpix::I16, 11);
        k.install_file("/data/in.fits", &img).unwrap();
        let r = fimhisto(&mut k, "/data/in.fits", "/data/out.fits", 64, None).unwrap();
        assert_eq!(r.histogram.iter().sum::<u64>(), 128 * 64);
        assert!(r.min < r.max);
        // Output file contains the copy plus the histogram HDU.
        let back = read_back_histogram(&mut k, "/data/out.fits").unwrap();
        assert_eq!(back, r.histogram);
        let out_size = k.stat("/data/out.fits").unwrap().size;
        assert!(out_size > img.len() as u64);
    }

    #[test]
    fn sleds_mode_bitwise_matches_baseline() {
        let (mut k, t) = setup();
        let img = generate_image_bytes(256, 96, Bitpix::F32, 12);
        k.install_file("/data/in.fits", &img).unwrap();
        let base = fimhisto(&mut k, "/data/in.fits", "/data/b.fits", DEFAULT_BINS, None).unwrap();
        // Leave the cache warm and scrambled, then run the SLEDs port.
        let with = fimhisto(
            &mut k,
            "/data/in.fits",
            "/data/s.fits",
            DEFAULT_BINS,
            Some(&t),
        )
        .unwrap();
        assert_eq!(base.histogram, with.histogram);
        assert_eq!(base.min, with.min);
        assert_eq!(base.max, with.max);
    }

    #[test]
    fn constant_image_degenerates_gracefully() {
        let (mut k, _) = setup();
        // All-zero image via a writer.
        let mut w = FitsWriter::create(&mut k, "/data/z.fits", Bitpix::U8, &[100]).unwrap();
        w.write_pixels(&mut k, &[7.0; 100]).unwrap();
        let fd = w.finish(&mut k).unwrap();
        k.close(fd).unwrap();
        let r = fimhisto(&mut k, "/data/z.fits", "/data/zo.fits", 16, None).unwrap();
        assert_eq!(r.min, 7.0);
        assert_eq!(r.max, 7.0);
        assert_eq!(r.histogram[0], 100);
        assert_eq!(r.histogram.iter().sum::<u64>(), 100);
    }

    #[test]
    fn writes_are_a_real_fraction_of_io() {
        // The paper: "fimhisto's I/O workload is one fourth writes".
        let (mut k, _) = setup();
        let img = generate_image_bytes(1024, 256, Bitpix::I16, 13);
        k.install_file("/data/in.fits", &img).unwrap();
        k.reset_counters();
        let j = k.start_job();
        fimhisto(
            &mut k,
            "/data/in.fits",
            "/data/out.fits",
            DEFAULT_BINS,
            None,
        )
        .unwrap();
        let rep = k.finish_job(&j);
        let frac = rep.usage.bytes_written as f64
            / (rep.usage.bytes_read + rep.usage.bytes_written) as f64;
        assert!(
            (0.15..0.35).contains(&frac),
            "write fraction {frac} (3 read passes + 1 copy write)"
        );
    }
}
