//! Aggregates every `results/BENCH_*.json` envelope into
//! `results/BENCH_index.json`.
//!
//! ```text
//! cargo run --release -p sleds-bench --bin bench_index
//! ```
//!
//! Each benchmark writer leads its JSON with the common `sleds-bench-v1`
//! envelope — `name`, `config`, `virtual_ns`, `host_wall_ns`,
//! `ops_per_sec` — followed by whatever detail shape it likes. This tool
//! extracts just the envelope from each file (top-level keys sit at
//! 2-space indent; detail rows nest deeper, so a line match is exact) and
//! emits one index, sorted by file name, so CI and readers get a single
//! schema-versioned overview of every benchmark run.
//!
//! A `BENCH_*.json` without the envelope is an error, not a skip: the
//! index exists to prove the consolidation holds.

use std::fmt::Write as _;
use std::path::PathBuf;

/// Envelope keys every benchmark must lead with, in index order.
const ENVELOPE_KEYS: [&str; 5] = [
    "name",
    "config",
    "virtual_ns",
    "host_wall_ns",
    "ops_per_sec",
];

fn results_dir() -> PathBuf {
    std::env::var("SLEDS_RESULTS")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("results"))
}

/// Returns the raw JSON value of a top-level `"key": value,` line.
///
/// Top-level keys are at exactly 2-space indent; nested detail objects
/// (scenario rows, workload blocks) indent deeper, so matching the
/// prefix verbatim cannot collide with them.
fn top_level_value<'a>(text: &'a str, key: &str) -> Option<&'a str> {
    let prefix = format!("  \"{key}\": ");
    text.lines()
        .find(|l| l.starts_with(&prefix))
        .map(|l| l[prefix.len()..].trim_end_matches(',').trim())
}

fn main() {
    let dir = results_dir();
    let mut files: Vec<String> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("read {}: {e}", dir.display()))
        .filter_map(|entry| {
            let name = entry.expect("dir entry").file_name();
            let name = name.to_string_lossy().into_owned();
            (name.starts_with("BENCH_") && name.ends_with(".json") && name != "BENCH_index.json")
                .then_some(name)
        })
        .collect();
    files.sort();
    assert!(
        !files.is_empty(),
        "no BENCH_*.json found under {}",
        dir.display()
    );

    let mut out = String::new();
    out.push_str("{\n  \"schema\": \"sleds-bench-index-v1\",\n");
    out.push_str("  \"regenerate\": \"cargo run --release -p sleds-bench --bin bench_index\",\n");
    out.push_str("  \"benches\": [\n");
    for (i, file) in files.iter().enumerate() {
        let path = dir.join(file);
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
        let schema = top_level_value(&text, "schema")
            .unwrap_or_else(|| panic!("{file}: missing top-level \"schema\" key"));
        assert_eq!(
            schema, "\"sleds-bench-v1\"",
            "{file}: expected the sleds-bench-v1 envelope, found {schema}"
        );
        out.push_str("    {\n");
        writeln!(out, "      \"file\": \"{file}\",").expect("fmt");
        for key in ENVELOPE_KEYS {
            let value = top_level_value(&text, key)
                .unwrap_or_else(|| panic!("{file}: missing envelope key \"{key}\""));
            writeln!(out, "      \"{key}\": {value},").expect("fmt");
        }
        // Trailing comma from the loop above: drop it on the last key.
        let trimmed = out.trim_end_matches('\n').trim_end_matches(',').len();
        out.truncate(trimmed);
        out.push('\n');
        out.push_str(if i + 1 == files.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    out.push_str("  ]\n}\n");

    let path = dir.join("BENCH_index.json");
    std::fs::write(&path, &out).unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
    println!("indexed {} benches -> {}", files.len(), path.display());
}
