//! Host-side overhead of the virtual-clock tracer.
//!
//! ```text
//! cargo run --release -p sleds-bench --bin trace_overhead_bench
//! SLEDS_QUICK=1 cargo run --release -p sleds-bench --bin trace_overhead_bench
//! ```
//!
//! The tracer's contract has two halves. The *virtual* half is absolute:
//! tracing never advances the clock or touches `Rusage`, enabled or not —
//! the determinism tests prove it, and this harness re-asserts it on its
//! workload. The *host wall-clock* half is what this benchmark measures:
//!
//! * **hooks** — the raw cost of a `begin`/`end` span pair and of a device
//!   event against a disabled tracer (one null check) and an enabled one
//!   (a ring-buffer write). The disabled numbers are the price every
//!   untraced simulation pays for carrying the instrumentation at all, so
//!   they must stay within noise of zero;
//! * **workload** — a warm `pread` loop (pure syscall + cache-hit path,
//!   the worst case for relative overhead) run with tracing off and on,
//!   plus the enabled tracer's event throughput.
//!
//! Results print as a table and land in `results/BENCH_trace_overhead.json`.

use std::fmt::Write as _;
use std::path::PathBuf;

use sleds_bench::microbench;
use sleds_devices::DiskDevice;
use sleds_fs::{Fd, Kernel, OpenFlags};
use sleds_sim_core::{SimTime, PAGE_SIZE};
use sleds_trace::{Layer, Tracer};

/// Warm `pread`s per workload iteration.
const READS_PER_ITER: u64 = 256;

fn hook_pair_ns(t: &mut Tracer) -> f64 {
    let label = if t.is_enabled() {
        "hook begin/end (enabled)"
    } else {
        "hook begin/end (disabled)"
    };
    let mut ts = 0u64;
    microbench::time(label, || {
        t.begin(
            Layer::Syscall,
            "read",
            SimTime::from_nanos(ts),
            [3, 4096, 0],
        );
        t.end(SimTime::from_nanos(ts + 10_000));
        ts += 20_000;
    })
    .ns_per_iter
}

fn device_event_ns(t: &mut Tracer) -> f64 {
    let label = if t.is_enabled() {
        "hook device+phases (enabled)"
    } else {
        "hook device+phases (disabled)"
    };
    let phases = [
        ("seek", sleds_sim_core::SimDuration::from_nanos(8_000_000)),
        ("rotate", sleds_sim_core::SimDuration::from_nanos(4_000_000)),
        ("transfer", sleds_sim_core::SimDuration::from_nanos(900_000)),
    ];
    let mut ts = 0u64;
    microbench::time(label, || {
        t.device(
            1,
            "disk.read",
            false,
            SimTime::from_nanos(ts),
            sleds_sim_core::SimDuration::ZERO,
            sleds_sim_core::SimDuration::from_nanos(12_900_000),
            ts / 1000,
            8,
            8 * 512,
            900_000,
            &phases,
        );
        ts += 20_000_000;
    })
    .ns_per_iter
}

/// A kernel with one fully warmed file; iterations only hit the cache.
fn warm_kernel() -> (Kernel, Fd) {
    let mut k = Kernel::table2();
    k.mkdir("/data").expect("mkdir");
    k.mount_disk("/data", DiskDevice::table2_disk("hda"))
        .expect("mount");
    let bytes = READS_PER_ITER * PAGE_SIZE;
    k.install_file("/data/f", &vec![5u8; bytes as usize])
        .expect("install");
    k.warm_file_pages("/data/f", 0, READS_PER_ITER)
        .expect("warm");
    let fd = k.open("/data/f", OpenFlags::RDONLY).expect("open");
    (k, fd)
}

/// One workload iteration: `READS_PER_ITER` warm page-sized preads.
fn iter(k: &mut Kernel, fd: Fd) {
    for p in 0..READS_PER_ITER {
        k.pread(fd, p * PAGE_SIZE, PAGE_SIZE as usize)
            .expect("pread");
    }
}

struct WorkloadRow {
    ns_per_syscall_off: f64,
    ns_per_syscall_on: f64,
    events_per_sec: f64,
    virtual_cpu_ns_off: u64,
    virtual_cpu_ns_on: u64,
}

fn workload() -> WorkloadRow {
    let (mut k, fd) = warm_kernel();
    let cpu0 = k.usage().cpu;
    iter(&mut k, fd);
    let virtual_cpu_ns_off = (k.usage().cpu - cpu0).as_nanos();
    let off = microbench::time("warm pread x256 (tracing off)", || iter(&mut k, fd));

    let (mut k, fd) = warm_kernel();
    k.enable_tracing_with_capacity(4 * READS_PER_ITER as usize);
    let cpu0 = k.usage().cpu;
    iter(&mut k, fd);
    let virtual_cpu_ns_on = (k.usage().cpu - cpu0).as_nanos();
    let on = microbench::time("warm pread x256 (tracing on)", || iter(&mut k, fd));
    // Each traced pread is one begin + one end event.
    let events_per_iter = 2.0 * READS_PER_ITER as f64;
    let events_per_sec = events_per_iter / (on.ns_per_iter * 1e-9);

    assert_eq!(
        virtual_cpu_ns_off, virtual_cpu_ns_on,
        "tracing must charge zero virtual CPU"
    );

    WorkloadRow {
        ns_per_syscall_off: off.ns_per_iter / READS_PER_ITER as f64,
        ns_per_syscall_on: on.ns_per_iter / READS_PER_ITER as f64,
        events_per_sec,
        virtual_cpu_ns_off,
        virtual_cpu_ns_on,
    }
}

fn results_dir() -> PathBuf {
    std::env::var("SLEDS_RESULTS")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("results"))
}

fn main() {
    let quick = sleds_bench::quick_mode();

    // The timing loop itself (an `Instant::now` check per iteration plus
    // the closure's argument setup) costs tens of nanoseconds; measure it
    // so the hook numbers can be reported net of harness overhead.
    let mut sink = 0u64;
    let harness_ns = microbench::time("harness noop", || {
        sink = sink.wrapping_add(20_000);
        std::hint::black_box(sink);
    })
    .ns_per_iter;

    let mut off = Tracer::disabled();
    let disabled_pair_ns = (hook_pair_ns(&mut off) - harness_ns).max(0.0);
    let disabled_device_ns = (device_event_ns(&mut off) - harness_ns).max(0.0);
    assert_eq!(off.emitted(), 0, "disabled tracer must record nothing");

    let mut on = Tracer::enabled();
    let enabled_pair_ns = (hook_pair_ns(&mut on) - harness_ns).max(0.0);
    let enabled_device_ns = (device_event_ns(&mut on) - harness_ns).max(0.0);
    assert!(on.emitted() > 0, "enabled tracer must record");

    let w = workload();

    println!(
        "\nper-syscall wall overhead: {:.1} ns off, {:.1} ns on ({:+.1} ns, {:.2}%)",
        w.ns_per_syscall_off,
        w.ns_per_syscall_on,
        w.ns_per_syscall_on - w.ns_per_syscall_off,
        100.0 * (w.ns_per_syscall_on - w.ns_per_syscall_off) / w.ns_per_syscall_off
    );
    println!(
        "enabled event throughput: {:.1} M events/sec; virtual CPU identical at {} ns",
        w.events_per_sec / 1e6,
        w.virtual_cpu_ns_on
    );

    // The disabled hook is a null check; hold it to single-digit
    // nanoseconds so "tracing compiled in" never becomes a tax. The bound
    // is generous because CI machines are noisy.
    assert!(
        disabled_pair_ns < 25.0,
        "disabled begin/end pair must be near-zero, got {disabled_pair_ns:.1} ns"
    );

    let mut out = String::new();
    out.push_str("{\n");
    // Common bench envelope (see bench_index): headline is the traced
    // workload iteration — 256 warm preads with the ring enabled.
    out.push_str("  \"schema\": \"sleds-bench-v1\",\n");
    out.push_str("  \"name\": \"trace-overhead\",\n");
    out.push_str("  \"config\": \"256 warm page preads per iteration, tracer on vs off\",\n");
    writeln!(out, "  \"virtual_ns\": {},", w.virtual_cpu_ns_on).expect("fmt");
    writeln!(
        out,
        "  \"host_wall_ns\": {:.0},",
        w.ns_per_syscall_on * 256.0
    )
    .expect("fmt");
    writeln!(out, "  \"ops_per_sec\": {:.0},", w.events_per_sec).expect("fmt");
    out.push_str("  \"benchmark\": \"tracer host-side overhead: disabled null check vs enabled ring write\",\n");
    out.push_str(
        "  \"regenerate\": \"cargo run --release -p sleds-bench --bin trace_overhead_bench\",\n",
    );
    writeln!(out, "  \"quick_mode\": {quick},").expect("fmt");
    out.push_str("  \"units\": {\n");
    out.push_str("    \"hook_ns\": \"host wall-clock per hook call, self-timed mean, net of harness overhead\",\n");
    out.push_str(
        "    \"workload\": \"256 warm page preads per iteration; per-syscall figures divide by 256\",\n",
    );
    out.push_str("    \"virtual_cpu_ns\": \"simulated CPU charged per workload iteration\"\n");
    out.push_str("  },\n");
    out.push_str("  \"hooks\": {\n");
    writeln!(out, "    \"harness_noop_ns\": {harness_ns:.1},").expect("fmt");
    writeln!(out, "    \"span_pair_disabled_ns\": {disabled_pair_ns:.1},").expect("fmt");
    writeln!(out, "    \"span_pair_enabled_ns\": {enabled_pair_ns:.1},").expect("fmt");
    writeln!(
        out,
        "    \"device_event_disabled_ns\": {disabled_device_ns:.1},"
    )
    .expect("fmt");
    writeln!(
        out,
        "    \"device_event_enabled_ns\": {enabled_device_ns:.1}"
    )
    .expect("fmt");
    out.push_str("  },\n");
    out.push_str("  \"workload\": {\n");
    writeln!(
        out,
        "    \"ns_per_syscall_tracing_off\": {:.1},",
        w.ns_per_syscall_off
    )
    .expect("fmt");
    writeln!(
        out,
        "    \"ns_per_syscall_tracing_on\": {:.1},",
        w.ns_per_syscall_on
    )
    .expect("fmt");
    writeln!(out, "    \"events_per_sec\": {:.0},", w.events_per_sec).expect("fmt");
    writeln!(
        out,
        "    \"virtual_cpu_ns_tracing_off\": {},",
        w.virtual_cpu_ns_off
    )
    .expect("fmt");
    writeln!(
        out,
        "    \"virtual_cpu_ns_tracing_on\": {}",
        w.virtual_cpu_ns_on
    )
    .expect("fmt");
    out.push_str("  }\n}\n");

    let dir = results_dir();
    std::fs::create_dir_all(&dir).expect("mkdir results");
    let path = dir.join("BENCH_trace_overhead.json");
    std::fs::write(&path, out).expect("write json");
    println!("-> {}", path.display());
}
