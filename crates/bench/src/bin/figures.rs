//! Regenerates the paper's tables and figures.
//!
//! ```text
//! cargo run --release -p sleds-bench --bin figures -- all
//! cargo run --release -p sleds-bench --bin figures -- fig7 fig8 table2
//! SLEDS_QUICK=1 cargo run -p sleds-bench --bin figures -- all   # fast sweep
//! ```
//!
//! CSV data and text renderings land in `results/`; ASCII plots also print
//! to stdout so the shape is visible in a terminal.

use std::path::PathBuf;

use sleds_bench::figures::{self, Figure, LevelRow, LocRow};
use sleds_bench::output::{ascii_plot, write_csv};

fn results_dir() -> PathBuf {
    std::env::var("SLEDS_RESULTS")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("results"))
}

fn emit_figure(fig: &Figure) {
    let plot = ascii_plot(&fig.title, &fig.x_name, &fig.y_name, &fig.series);
    println!("{plot}");
    let path = results_dir().join(format!("{}.csv", fig.id));
    write_csv(&path, &fig.x_name, &fig.series).expect("write csv");
    println!("  -> {}\n", path.display());
}

fn emit_text(id: &str, text: &str) {
    println!("{text}");
    let dir = results_dir();
    std::fs::create_dir_all(&dir).expect("mkdir results");
    let path = dir.join(format!("{id}.txt"));
    std::fs::write(&path, text).expect("write text");
    println!("  -> {}\n", path.display());
}

fn level_table(title: &str, rows: &[LevelRow]) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    writeln!(out, "{title}").expect("fmt");
    writeln!(
        out,
        "{:<10} {:>14} {:>14} {:>14} {:>14}",
        "level", "latency", "paper-latency", "throughput", "paper-thpt"
    )
    .expect("fmt");
    for r in rows {
        writeln!(
            out,
            "{:<10} {:>14} {:>14} {:>11.1}MB/s {:>10.1}MB/s",
            r.level,
            fmt_latency(r.latency),
            fmt_latency(r.paper_latency),
            r.bandwidth / 1e6,
            r.paper_bandwidth / 1e6,
        )
        .expect("fmt");
    }
    out
}

fn fmt_latency(s: f64) -> String {
    if s >= 1e-3 {
        format!("{:.1}ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.1}us", s * 1e6)
    } else {
        format!("{:.0}ns", s * 1e9)
    }
}

fn loc_table(rows: &[LocRow]) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    writeln!(out, "Table 4: lines of code in the SLEDs ports").expect("fmt");
    writeln!(
        out,
        "{:<10} {:>12} {:>12} {:>16} {:>14}",
        "app", "sleds-lines", "total-lines", "paper-modified", "paper-total"
    )
    .expect("fmt");
    for r in rows {
        writeln!(
            out,
            "{:<10} {:>12} {:>12} {:>16} {:>14}",
            r.app, r.sleds_lines, r.total_lines, r.paper_modified, r.paper_total
        )
        .expect("fmt");
    }
    writeln!(
        out,
        "\n(our counts are Rust lines inside [sleds:begin]/[sleds:end] markers;\n\
         the paper counted modified lines of the C originals — compare shape,\n\
         not absolutes: grep is the most invasive port, find among the least)"
    )
    .expect("fmt");
    out
}

fn run(id: &str) {
    match id {
        "fig3" => {
            let (text, _, _) = figures::fig3();
            emit_text("fig3", &text);
        }
        "fig4" => emit_text("fig4", &figures::fig4()),
        "table2" => emit_text(
            "table2",
            &level_table(
                "Table 2: storage levels, Unix-utility machine",
                &figures::table2(),
            ),
        ),
        "table3" => emit_text(
            "table3",
            &level_table(
                "Table 3: storage levels, LHEASOFT machine",
                &figures::table3(),
            ),
        ),
        "table4" => emit_text("table4", &loc_table(&figures::table4())),
        "fig7" | "fig8" => {
            let (f7, f8) = figures::fig7_8();
            emit_figure(&f7);
            emit_figure(&f8);
        }
        "fig9" => emit_figure(&figures::fig9()),
        "fig10" => emit_figure(&figures::fig10()),
        "fig11" | "fig12" => {
            let (f11, f12) = figures::fig11_12();
            emit_figure(&f11);
            emit_figure(&f12);
        }
        "fig13" => emit_figure(&figures::fig13()),
        "fig14" => {
            let (elapsed, faults) = figures::fig14();
            emit_figure(&elapsed);
            emit_figure(&faults);
        }
        "fig15" => {
            for f in figures::fig15() {
                emit_figure(&f);
            }
        }
        "ablations" => emit_text("ablations", &sleds_bench::ablations::report()),
        "tree" => emit_text("tree", &figures::tree_demo()),
        "hsm" => {
            let (pruned, full) = figures::hsm_prune_demo();
            let text = format!(
                "HSM extension: find -latency -10 | grep vs grep everything\n\
                 pruned walk: {pruned:.1}s   full walk (stages tapes): {full:.1}s\n\
                 pruning advantage: {:.0}x\n\n{}",
                full / pruned.max(1e-9),
                figures::gmc_hsm_report()
            );
            emit_text("hsm", &text);
        }
        other => {
            eprintln!("unknown experiment {other:?}");
            std::process::exit(2);
        }
    }
}

const ALL: &[&str] = &[
    "fig3",
    "fig4",
    "table2",
    "table3",
    "table4",
    "fig7",
    "fig9",
    "fig10",
    "fig11",
    "fig13",
    "fig14",
    "fig15",
    "hsm",
    "tree",
    "ablations",
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("usage: figures [all | fig3 fig4 table2 table3 table4 fig7 fig8 fig9 fig10");
        eprintln!("                 fig11 fig12 fig13 fig14 fig15 hsm ablations]...");
        eprintln!("set SLEDS_QUICK=1 for a reduced sweep, SLEDS_RESULTS=dir for output dir");
        std::process::exit(2);
    }
    let list: Vec<&str> = if args.iter().any(|a| a == "all") {
        ALL.to_vec()
    } else {
        args.iter().map(|s| s.as_str()).collect()
    };
    for id in list {
        eprintln!("== running {id} ==");
        run(id);
    }
}
