//! Before/after microbenchmark for the extent-based `FSLEDS_GET` walk.
//!
//! ```text
//! cargo run --release -p sleds-bench --bin fsleds_get_bench
//! SLEDS_QUICK=1 cargo run --release -p sleds-bench --bin fsleds_get_bench
//! ```
//!
//! For each (file size, cache-fragmentation pattern) scenario the harness
//! measures one `FSLEDS_GET` residency walk three ways:
//!
//! * **old** — [`Kernel::page_locations_per_page_reference`], the retained
//!   per-page walk: clones the whole per-page placement map and probes the
//!   cache once per page (`page_walk_cpu * pages` virtual CPU);
//! * **new** — [`Kernel::page_extents`], the extent-index walk: one range
//!   probe per residency run (`page_walk_cpu * extents + floor * pages`);
//! * **cached repeat** — [`SledCache::get`] twice, showing the
//!   generation-stamp hit path costs one syscall and no walk at all.
//!
//! Virtual-clock CPU comes from the simulator's rusage deltas; wall-clock
//! comes from the self-timing harness in [`sleds_bench::microbench`]; the
//! "entries" columns count allocated result entries (per-page vectors
//! before, run-length extents after). Results print as a table and land in
//! `results/BENCH_fsleds_get.json`.

use std::fmt::Write as _;
use std::path::PathBuf;

use sleds::{fsleds_get, SledCache, SledsEntry, SledsTable};
use sleds_bench::microbench;
use sleds_devices::DiskDevice;
use sleds_fs::{Fd, Kernel, MachineConfig, OpenFlags};
use sleds_sim_core::{ByteSize, PAGE_SIZE};

/// One measured scenario.
struct Row {
    name: String,
    file_bytes: u64,
    pages: u64,
    resident_runs: usize,
    page_extents: u64,
    sleds: u64,
    old_virtual_cpu_ns: u64,
    new_virtual_cpu_ns: u64,
    old_wall_ns: f64,
    new_wall_ns: f64,
    old_entries: u64,
    new_entries: u64,
    cached_repeat_cpu_ns: u64,
}

impl Row {
    fn virtual_ratio(&self) -> f64 {
        self.old_virtual_cpu_ns as f64 / self.new_virtual_cpu_ns.max(1) as f64
    }
    fn wall_ratio(&self) -> f64 {
        self.old_wall_ns / self.new_wall_ns.max(1.0)
    }
}

/// How the cache is populated before the walk.
enum Pattern {
    /// Nothing resident: the walk sees only layout runs.
    Cold,
    /// The first half of the file resident as one contiguous run.
    Half,
    /// `n` evenly spaced resident runs.
    Runs(u64),
    /// Every `k`-th page resident — pathological fragmentation, worst
    /// case for the extent walk.
    Every(u64),
}

impl Pattern {
    fn label(&self) -> String {
        match self {
            Pattern::Cold => "cold".into(),
            Pattern::Half => "half".into(),
            Pattern::Runs(n) => format!("runs{n}"),
            Pattern::Every(k) => format!("every{k}th"),
        }
    }

    /// Applies the pattern to `path` (a file of `pages` pages).
    fn warm(&self, k: &mut Kernel, path: &str, pages: u64) {
        match *self {
            Pattern::Cold => {}
            Pattern::Half => {
                k.warm_file_pages(path, 0, pages / 2).expect("warm half");
            }
            Pattern::Runs(n) => {
                let n = n.min(pages);
                if n == 0 {
                    return;
                }
                // n runs, each a 1/(2n) slice of the file, evenly spaced so
                // every run is separated by a cold gap.
                let stride = pages / n;
                let len = (stride / 2).max(1);
                for i in 0..n {
                    k.warm_file_pages(path, i * stride, len).expect("warm run");
                }
            }
            Pattern::Every(step) => {
                let mut p = 0;
                while p < pages {
                    k.warm_file_pages(path, p, 1).expect("warm page");
                    p += step;
                }
            }
        }
    }
}

/// A machine whose page cache comfortably holds the largest warmed state
/// (half of 1 GiB), so warm patterns never self-evict. Cost parameters are
/// Table 2's.
fn big_cache_machine() -> MachineConfig {
    MachineConfig {
        ram: ByteSize::gib(2),
        ..MachineConfig::table2()
    }
}

fn setup(size: u64, pattern: &Pattern) -> (Kernel, SledsTable, Fd) {
    let mut k = Kernel::new(big_cache_machine());
    k.mkdir("/data").expect("mkdir");
    let m = k
        .mount_disk("/data", DiskDevice::table2_disk("hda"))
        .expect("mount");
    let dev = k.device_of_mount(m).expect("dev");
    k.install_sparse_file("/data/f", size).expect("install");
    pattern.warm(&mut k, "/data/f", size.div_ceil(PAGE_SIZE));
    let mut t = SledsTable::new();
    t.fill_memory(SledsEntry::new(175e-9, 48e6));
    t.fill_device(dev, SledsEntry::new(0.018, 9e6));
    let fd = k.open("/data/f", OpenFlags::RDONLY).expect("open");
    (k, t, fd)
}

fn virtual_cpu_of(k: &mut Kernel, mut f: impl FnMut(&mut Kernel)) -> u64 {
    let before = k.usage().cpu;
    f(k);
    (k.usage().cpu - before).as_nanos()
}

fn measure(size: u64, pattern: Pattern) -> Row {
    let (mut k, t, fd) = setup(size, &pattern);
    let pages = size.div_ceil(PAGE_SIZE);

    let resident_runs = k.resident_extents(fd).expect("resident runs");
    let extents = k.page_extents(fd).expect("extents");
    let sleds = fsleds_get(&mut k, fd, &t).expect("fsleds_get");

    let old_virtual_cpu_ns = virtual_cpu_of(&mut k, |k| {
        drop(k.page_locations_per_page_reference(fd).expect("old"))
    });
    let new_virtual_cpu_ns = virtual_cpu_of(&mut k, |k| drop(k.page_extents(fd).expect("new")));

    // Generation-cached repeat: one get to fill, then a stamp-validated hit.
    let mut cache = SledCache::new();
    cache.get(&mut k, &t, fd).expect("fill");
    let cached_repeat_cpu_ns = virtual_cpu_of(&mut k, |k| drop(cache.get(k, &t, fd).expect("hit")));
    assert_eq!(cache.hits(), 1, "repeat get must hit the memoized vector");

    let name = format!("{}_{}", ByteSize::bytes(size), pattern.label());
    let old_wall = microbench::time(&format!("{name} old(per-page)"), || {
        k.page_locations_per_page_reference(fd).expect("old")
    });
    let new_wall = microbench::time(&format!("{name} new(extents)"), || {
        k.page_extents(fd).expect("new")
    });

    Row {
        name,
        file_bytes: size,
        pages,
        resident_runs,
        page_extents: extents.len() as u64,
        sleds: sleds.len() as u64,
        old_virtual_cpu_ns,
        new_virtual_cpu_ns,
        old_wall_ns: old_wall.ns_per_iter,
        new_wall_ns: new_wall.ns_per_iter,
        old_entries: pages,
        new_entries: extents.len() as u64,
        cached_repeat_cpu_ns,
    }
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn to_json(rows: &[Row], quick: bool) -> String {
    // Common bench envelope (see bench_index): headline is the extent
    // walk under test — summed virtual CPU and mean per-call host wall.
    let virtual_ns: u64 = rows.iter().map(|r| r.new_virtual_cpu_ns).sum();
    let host_wall_ns: f64 = rows.iter().map(|r| r.new_wall_ns).sum();
    let ops_per_sec = if host_wall_ns > 0.0 {
        rows.len() as f64 * 1e9 / host_wall_ns
    } else {
        0.0
    };
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"sleds-bench-v1\",\n");
    out.push_str("  \"name\": \"fsleds-get-extent-walk\",\n");
    out.push_str(
        "  \"config\": \"4KiB..1GiB files x residency patterns (cold, half, runs8, every7)\",\n",
    );
    writeln!(out, "  \"virtual_ns\": {virtual_ns},").expect("fmt");
    writeln!(out, "  \"host_wall_ns\": {:.0},", host_wall_ns).expect("fmt");
    writeln!(out, "  \"ops_per_sec\": {ops_per_sec:.0},").expect("fmt");
    out.push_str(
        "  \"benchmark\": \"FSLEDS_GET residency walk: per-page reference vs extent index\",\n",
    );
    out.push_str(
        "  \"regenerate\": \"cargo run --release -p sleds-bench --bin fsleds_get_bench\",\n",
    );
    writeln!(out, "  \"quick_mode\": {quick},").expect("fmt");
    out.push_str("  \"units\": {\n");
    out.push_str("    \"virtual_cpu_ns\": \"simulated CPU charged by the kernel's cost model\",\n");
    out.push_str("    \"wall_ns_per_iter\": \"host wall-clock per call, self-timed mean\",\n");
    out.push_str("    \"entries\": \"allocated result entries per call\"\n");
    out.push_str("  },\n");
    out.push_str("  \"scenarios\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str("    {\n");
        writeln!(out, "      \"name\": \"{}\",", json_escape(&r.name)).expect("fmt");
        writeln!(out, "      \"file_bytes\": {},", r.file_bytes).expect("fmt");
        writeln!(out, "      \"pages\": {},", r.pages).expect("fmt");
        writeln!(out, "      \"resident_runs\": {},", r.resident_runs).expect("fmt");
        writeln!(out, "      \"page_extents\": {},", r.page_extents).expect("fmt");
        writeln!(out, "      \"sleds\": {},", r.sleds).expect("fmt");
        writeln!(
            out,
            "      \"old\": {{ \"virtual_cpu_ns\": {}, \"wall_ns_per_iter\": {:.1}, \"entries\": {} }},",
            r.old_virtual_cpu_ns, r.old_wall_ns, r.old_entries
        )
        .expect("fmt");
        writeln!(
            out,
            "      \"new\": {{ \"virtual_cpu_ns\": {}, \"wall_ns_per_iter\": {:.1}, \"entries\": {} }},",
            r.new_virtual_cpu_ns, r.new_wall_ns, r.new_entries
        )
        .expect("fmt");
        writeln!(
            out,
            "      \"cached_repeat_cpu_ns\": {},",
            r.cached_repeat_cpu_ns
        )
        .expect("fmt");
        writeln!(
            out,
            "      \"virtual_cpu_ratio\": {:.2},",
            r.virtual_ratio()
        )
        .expect("fmt");
        writeln!(out, "      \"wall_ratio\": {:.2}", r.wall_ratio()).expect("fmt");
        out.push_str(if i + 1 == rows.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    out.push_str("  ]\n}\n");
    out
}

fn table(rows: &[Row]) -> String {
    let mut out = String::new();
    writeln!(
        out,
        "{:<20} {:>10} {:>6} {:>8} {:>14} {:>14} {:>8} {:>10}",
        "scenario", "pages", "runs", "extents", "old-vcpu", "new-vcpu", "speedup", "hit-vcpu"
    )
    .expect("fmt");
    for r in rows {
        writeln!(
            out,
            "{:<20} {:>10} {:>6} {:>8} {:>12}ns {:>12}ns {:>7.1}x {:>8}ns",
            r.name,
            r.pages,
            r.resident_runs,
            r.page_extents,
            r.old_virtual_cpu_ns,
            r.new_virtual_cpu_ns,
            r.virtual_ratio(),
            r.cached_repeat_cpu_ns,
        )
        .expect("fmt");
    }
    out
}

fn results_dir() -> PathBuf {
    std::env::var("SLEDS_RESULTS")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("results"))
}

fn main() {
    let quick = sleds_bench::quick_mode();
    let sizes: &[u64] = if quick {
        &[4 * 1024, MIB, 64 * MIB]
    } else {
        &[4 * 1024, MIB, 64 * MIB, GIB]
    };
    let mut rows = Vec::new();
    for &size in sizes {
        rows.push(measure(size, Pattern::Cold));
        rows.push(measure(size, Pattern::Half));
        rows.push(measure(size, Pattern::Runs(8)));
        // The pathological pattern is where the extent walk degrades
        // gracefully toward per-page cost; cap it below 1 GiB so the
        // full sweep stays fast.
        if size <= 64 * MIB {
            rows.push(measure(size, Pattern::Every(7)));
        }
    }

    println!("\n{}", table(&rows));

    // The acceptance bar: a 1 GiB file with <= 8 residency runs must walk
    // at least 10x cheaper in virtual CPU than the per-page reference.
    if let Some(r) = rows
        .iter()
        .find(|r| r.file_bytes == GIB && r.resident_runs <= 8 && r.resident_runs > 0)
    {
        let ratio = r.virtual_ratio();
        println!(
            "1 GiB / {} resident runs: {:.1}x virtual-CPU reduction (need >= 10x)",
            r.resident_runs, ratio
        );
        assert!(
            ratio >= 10.0,
            "extent walk must be >= 10x cheaper, got {ratio:.1}x"
        );
    }

    let dir = results_dir();
    std::fs::create_dir_all(&dir).expect("mkdir results");
    let path = dir.join("BENCH_fsleds_get.json");
    std::fs::write(&path, to_json(&rows, quick)).expect("write json");
    println!("-> {}", path.display());
}

const MIB: u64 = 1 << 20;
const GIB: u64 = 1 << 30;
