//! The evaluation harness: regenerates every table and figure of the paper.
//!
//! The `figures` binary (`cargo run --release -p sleds-bench --bin figures`)
//! drives the experiment runners in [`figures`], which follow the paper's
//! protocol: warm file cache, runs repeated in the same mode with the first
//! discarded, twelve measured runs, means with 90% confidence intervals.
//! Results are written as CSV plus ASCII plots under `results/`.
//!
//! Self-timed micro-benchmarks (under `benches/`, driven by
//! [`microbench`]) measure this *implementation's* real-time costs; the
//! paper reproduction numbers are virtual-time outputs of the simulator and
//! come only from the `figures` binary.

pub mod ablations;
pub mod env;
pub mod figures;
pub mod microbench;
pub mod output;
pub mod workload;

pub use env::{Env, FsKind};
pub use output::{ascii_plot, write_csv, Series};

/// Runs-per-point, matching the paper ("All runs were done twelve times").
pub const RUNS: usize = 12;

/// True when the environment asks for a fast, reduced sweep (used by CI and
/// the smoke tests): fewer sizes, fewer runs.
pub fn quick_mode() -> bool {
    std::env::var("SLEDS_QUICK").is_ok_and(|v| v != "0")
}

/// The measured run count honoring quick mode.
pub fn runs() -> usize {
    if quick_mode() {
        4
    } else {
        RUNS
    }
}

/// A size sweep in MiB honoring quick mode.
pub fn size_sweep(lo: u64, hi: u64, step: u64) -> Vec<u64> {
    let step = if quick_mode() { step * 4 } else { step };
    (lo..=hi).step_by(step as usize).collect()
}
