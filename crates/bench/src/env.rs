//! Experiment environments: a booted machine with one mounted file system,
//! a calibrated sleds table, and an installed test file.

use sleds::SledsTable;
use sleds_devices::{CdRomDevice, DiskDevice, NfsDevice, TapeDevice};
use sleds_fs::{Kernel, MachineConfig, MountId};
use sleds_lmbench::fill_table;
use sleds_sim_core::DetRng;

/// Which file system the experiment runs against — the three the paper
/// measured, plus the HSM it predicts the biggest wins for.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FsKind {
    /// Local disk (ext2 in the paper).
    Ext2,
    /// CD-ROM (ISO9660).
    CdRom,
    /// NFS mount.
    Nfs,
    /// Hierarchical storage manager: staging disk + tape.
    Hsm,
}

impl FsKind {
    /// Label used in figure output.
    pub fn label(self) -> &'static str {
        match self {
            FsKind::Ext2 => "ext2",
            FsKind::CdRom => "cdrom",
            FsKind::Nfs => "nfs",
            FsKind::Hsm => "hsm",
        }
    }
}

/// A ready-to-measure environment.
pub struct Env {
    /// The booted kernel.
    pub kernel: Kernel,
    /// Calibrated table (the boot script already ran).
    pub table: SledsTable,
    /// The data mount.
    pub mount: MountId,
    /// Directory of the data mount.
    pub dir: &'static str,
}

impl Env {
    /// Builds an environment on the Table 2 machine (Unix utilities).
    ///
    /// `seed` drives device jitter (background-activity variability, which
    /// is where the paper's error bars come from).
    pub fn table2(fs: FsKind, seed: u64) -> Env {
        Env::build(MachineConfig::table2(), fs, seed, false)
    }

    /// Builds an environment on the Table 3 machine (LHEASOFT), whose disk
    /// is the slightly slower 16.5 ms / 7 MB/s model.
    pub fn table3(fs: FsKind, seed: u64) -> Env {
        Env::build(MachineConfig::table3(), fs, seed, true)
    }

    fn build(cfg: MachineConfig, fs: FsKind, seed: u64, lheasoft_disk: bool) -> Env {
        let rng = DetRng::new(seed);
        let mut kernel = Kernel::new(cfg);
        let jitter = 0.04;
        let (dir, mount) = match fs {
            FsKind::Ext2 => {
                kernel.mkdir("/data").expect("mkdir /data");
                let disk = if lheasoft_disk {
                    DiskDevice::table3_disk("hda")
                } else {
                    DiskDevice::table2_disk("hda")
                }
                .with_jitter(rng.derive(1), jitter);
                (
                    "/data",
                    kernel.mount_disk("/data", disk).expect("mount disk"),
                )
            }
            FsKind::CdRom => {
                kernel.mkdir("/cdrom").expect("mkdir /cdrom");
                let cd = CdRomDevice::table2_drive("cd0").with_jitter(rng.derive(1), jitter);
                (
                    "/cdrom",
                    kernel.mount_cdrom("/cdrom", cd).expect("mount cd"),
                )
            }
            FsKind::Nfs => {
                kernel.mkdir("/nfs").expect("mkdir /nfs");
                let nfs = NfsDevice::table2_mount("srv:/export").with_jitter(rng.derive(1), jitter);
                ("/nfs", kernel.mount_nfs("/nfs", nfs).expect("mount nfs"))
            }
            FsKind::Hsm => {
                kernel.mkdir("/hsm").expect("mkdir /hsm");
                let disk = DiskDevice::table2_disk("hda").with_jitter(rng.derive(1), jitter);
                let tape = TapeDevice::dlt("st0");
                (
                    "/hsm",
                    kernel
                        .mount_hsm("/hsm", disk, Box::new(tape), 512)
                        .expect("mount hsm"),
                )
            }
        };
        let table = fill_table(&mut kernel, &[(dir, mount)]).expect("lmbench calibration");
        kernel.reset_counters();
        Env {
            kernel,
            table,
            mount,
            dir,
        }
    }

    /// Installs the test file and returns its path.
    pub fn install(&mut self, name: &str, data: &[u8]) -> String {
        let path = format!("{}/{name}", self.dir);
        self.kernel
            .install_file(&path, data)
            .expect("install test file");
        path
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_environments_boot_and_calibrate() {
        for fs in [FsKind::Ext2, FsKind::CdRom, FsKind::Nfs, FsKind::Hsm] {
            let env = Env::table2(fs, 1);
            assert!(env.table.is_filled(), "{fs:?} table unfilled");
            let dev = env.kernel.device_of_mount(env.mount).unwrap();
            assert!(env.table.device(dev).is_some(), "{fs:?} missing device row");
        }
    }

    #[test]
    fn calibrations_order_sensibly() {
        let ext2 = Env::table2(FsKind::Ext2, 2);
        let nfs = Env::table2(FsKind::Nfs, 2);
        let d_ext2 = ext2.kernel.device_of_mount(ext2.mount).unwrap();
        let d_nfs = nfs.kernel.device_of_mount(nfs.mount).unwrap();
        let l_ext2 = ext2.table.device(d_ext2).unwrap().latency;
        let l_nfs = nfs.table.device(d_nfs).unwrap().latency;
        assert!(l_ext2 < l_nfs, "disk {l_ext2} should beat NFS {l_nfs}");
    }

    #[test]
    fn install_places_file_in_mount() {
        let mut env = Env::table2(FsKind::Ext2, 3);
        let path = env.install("f.dat", b"hello");
        assert_eq!(env.kernel.stat(&path).unwrap().size, 5);
    }
}
