//! Workload generators: the test files the experiments read.

use sleds_sim_core::DetRng;

/// The marker planted for first-match grep runs. Uppercase letters never
/// appear in the generated corpus, so the only occurrence is the planted
/// one.
pub const NEEDLE: &[u8] = b"ZQXJKV";

/// Generates `n` bytes of line-structured text: lowercase pseudo-words,
/// 3–9 words per line. When `hit_every_lines > 0`, every that-many-th line
/// carries [`NEEDLE`] (for the all-matches grep experiments, which use a
/// small match percentage).
pub fn text_corpus(n: usize, hit_every_lines: u64, seed: u64) -> Vec<u8> {
    let mut rng = DetRng::new(seed);
    let mut out = Vec::with_capacity(n + 64);
    let mut line_no = 0u64;
    while out.len() < n {
        line_no += 1;
        let words = rng.range_u64(3, 10);
        for w in 0..words {
            if w > 0 {
                out.push(b' ');
            }
            if hit_every_lines > 0 && line_no.is_multiple_of(hit_every_lines) && w == 1 {
                out.extend_from_slice(NEEDLE);
            } else {
                for _ in 0..rng.range_u64(2, 9) {
                    out.push(b'a' + rng.range_u64(0, 26) as u8);
                }
            }
        }
        out.push(b'\n');
    }
    out.truncate(n);
    if let Some(last) = out.last_mut() {
        *last = b'\n';
    }
    out
}

/// Picks a random in-bounds offset for planting [`NEEDLE`], keeping clear
/// of the file's first and last pages so the needle never splits the file
/// edges.
pub fn needle_position(rng: &mut DetRng, file_len: usize) -> u64 {
    let margin = 4096.min(file_len / 4);
    rng.range_u64(margin as u64, (file_len - margin - NEEDLE.len()) as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_is_line_structured_lowercase() {
        let c = text_corpus(10_000, 0, 1);
        assert_eq!(c.len(), 10_000);
        assert_eq!(*c.last().unwrap(), b'\n');
        assert!(c
            .iter()
            .all(|&b| b == b'\n' || b == b' ' || b.is_ascii_lowercase()));
        assert!(c.iter().filter(|&&b| b == b'\n').count() > 100);
    }

    #[test]
    fn hit_lines_contain_needle() {
        let c = text_corpus(50_000, 20, 2);
        let hits = c.windows(NEEDLE.len()).filter(|w| *w == NEEDLE).count();
        assert!(hits > 10, "expected periodic needles, got {hits}");
        // Small match percentage, like the paper's experiments.
        assert!(hits < 200);
    }

    #[test]
    fn clean_corpus_has_no_needle() {
        let c = text_corpus(100_000, 0, 3);
        assert!(!c.windows(NEEDLE.len()).any(|w| w == NEEDLE));
    }

    #[test]
    fn needle_positions_are_in_bounds_and_varied() {
        let mut rng = DetRng::new(4);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..100 {
            let p = needle_position(&mut rng, 1 << 20);
            assert!(p >= 4096);
            assert!((p as usize) < (1 << 20) - 4096);
            seen.insert(p / 65536);
        }
        assert!(seen.len() > 5, "positions should spread across the file");
    }
}
