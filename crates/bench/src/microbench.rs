//! Minimal self-timing harness for the `cargo bench` targets.
//!
//! Replaces the external benchmark framework so the default workspace
//! builds offline. Each benchmark runs a short warmup, then as many timed
//! iterations as fit a small wall-clock budget, and reports the mean
//! nanoseconds per iteration. `SLEDS_QUICK=1` shrinks the budget for CI.

use std::time::{Duration, Instant};

/// One benchmark's result.
#[derive(Clone, Debug)]
pub struct Timing {
    /// Benchmark name as printed.
    pub name: String,
    /// Timed iterations.
    pub iters: u64,
    /// Mean wall-clock nanoseconds per iteration.
    pub ns_per_iter: f64,
}

impl Timing {
    /// Formats like `name ... 1234.5 ns/iter (n=100)`.
    pub fn report(&self) -> String {
        format!(
            "{:<44} {:>14.1} ns/iter  (n={})",
            self.name, self.ns_per_iter, self.iters
        )
    }
}

/// The per-benchmark wall-clock budget.
fn budget() -> Duration {
    if crate::quick_mode() {
        Duration::from_millis(20)
    } else {
        Duration::from_millis(200)
    }
}

/// Times `f` under the budget and prints + returns the result.
///
/// The closure's return value is consumed with [`std::hint::black_box`] so
/// the compiler cannot elide the benchmarked work.
pub fn time<T>(name: &str, mut f: impl FnMut() -> T) -> Timing {
    // Warmup: one call always, a few more if they are cheap.
    let warm_start = Instant::now();
    std::hint::black_box(f());
    let first = warm_start.elapsed();
    let warmups = if first < Duration::from_millis(5) {
        4
    } else {
        0
    };
    for _ in 0..warmups {
        std::hint::black_box(f());
    }

    let budget = budget();
    let start = Instant::now();
    let mut iters = 0u64;
    while start.elapsed() < budget {
        std::hint::black_box(f());
        iters += 1;
    }
    let total = start.elapsed();
    let t = Timing {
        name: name.to_string(),
        iters,
        ns_per_iter: total.as_nanos() as f64 / iters.max(1) as f64,
    };
    println!("{}", t.report());
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timing_counts_iterations() {
        let mut calls = 0u64;
        let t = time("noop", || calls += 1);
        // warmup (1 + 4) + timed iterations
        assert_eq!(calls, t.iters + 5);
        assert!(t.iters >= 1);
        assert!(t.ns_per_iter >= 0.0);
    }

    #[test]
    fn report_contains_name() {
        let t = Timing {
            name: "x".into(),
            iters: 3,
            ns_per_iter: 1.5,
        };
        assert!(t.report().contains("x"));
        assert!(t.report().contains("n=3"));
    }
}
