//! Ablation studies for the design choices DESIGN.md calls out.
//!
//! These go beyond the paper's figures: they vary one design decision at a
//! time and measure the two-pass workload that drives every headline
//! result.

use sleds::{PickConfig, PickSession};
use sleds_apps::wc::{wc, wc_aio};
use sleds_devices::DiskDevice;
use sleds_fs::{Kernel, MachineConfig, OpenFlags, Whence};
use sleds_lmbench::fill_table;
use sleds_pagecache::PolicyKind;
use sleds_sim_core::ByteSize;

use crate::workload::text_corpus;

/// One ablation data point.
#[derive(Clone, Debug)]
pub struct AblationRow {
    /// Variant label.
    pub variant: String,
    /// Elapsed seconds, baseline app.
    pub baseline_secs: f64,
    /// Elapsed seconds, SLEDs app.
    pub sleds_secs: f64,
    /// Major faults, baseline.
    pub baseline_faults: u64,
    /// Major faults, SLEDs.
    pub sleds_faults: u64,
}

impl AblationRow {
    /// Speedup of SLEDs over the baseline for this variant.
    pub fn speedup(&self) -> f64 {
        self.baseline_secs / self.sleds_secs.max(1e-12)
    }
}

/// A small machine for ablations: 8 MiB RAM, same dynamics, fast runs.
fn machine(policy: PolicyKind) -> MachineConfig {
    let mut cfg = MachineConfig::table2();
    cfg.ram = ByteSize::mib(8);
    cfg.policy = policy;
    cfg
}

fn measure_two_pass(cfg: MachineConfig, file_factor_pct: u64) -> (AblationRow, usize) {
    let mut k = Kernel::new(cfg);
    k.mkdir("/data").expect("mkdir");
    let m = k
        .mount_disk("/data", DiskDevice::table2_disk("hda"))
        .expect("mount");
    let table = fill_table(&mut k, &[("/data", m)]).expect("calibration");
    let cache = k.config().cache_bytes().as_u64();
    let n = (cache * file_factor_pct / 100) as usize;
    let data = text_corpus(n, 0, 77);
    k.install_file("/data/f.txt", &data).expect("install");

    // Warm + measure, baseline mode.
    wc(&mut k, "/data/f.txt", None).expect("warm");
    let j = k.start_job();
    wc(&mut k, "/data/f.txt", None).expect("wc");
    let base = k.finish_job(&j);
    // Re-warm in baseline mode so both modes see the same starting state.
    wc(&mut k, "/data/f.txt", None).expect("rewarm");
    let j = k.start_job();
    wc(&mut k, "/data/f.txt", Some(&table)).expect("wc sleds");
    let with = k.finish_job(&j);
    (
        AblationRow {
            variant: String::new(),
            baseline_secs: base.elapsed_secs(),
            sleds_secs: with.elapsed_secs(),
            baseline_faults: base.usage.major_faults,
            sleds_faults: with.usage.major_faults,
        },
        n,
    )
}

/// Ablation 1 — replacement policy: how much of the SLEDs win is an
/// artifact of LRU? (MRU is scan-optimal, so the baseline improves and the
/// SLEDs *advantage* shrinks; FIFO/Clock behave like LRU.)
pub fn replacement_policies() -> Vec<AblationRow> {
    PolicyKind::all()
        .into_iter()
        .map(|p| {
            let (mut row, _) = measure_two_pass(machine(p), 150);
            row.variant = p.name().to_string();
            row
        })
        .collect()
}

/// Ablation 2 — attack plan estimates: how well do `SLEDS_LINEAR` and
/// `SLEDS_BEST` predict the measured whole-file read time, cold and warm?
/// Returns (state, plan, estimate, measured) rows.
pub fn attack_plan_accuracy() -> Vec<(String, f64, f64)> {
    let mut k = Kernel::new(machine(PolicyKind::Lru));
    k.mkdir("/data").expect("mkdir");
    let m = k
        .mount_disk("/data", DiskDevice::table2_disk("hda"))
        .expect("mount");
    let table = fill_table(&mut k, &[("/data", m)]).expect("calibration");
    let n = 4 << 20;
    k.install_file("/data/f.bin", &vec![1u8; n])
        .expect("install");
    let fd = k.open("/data/f.bin", OpenFlags::RDONLY).expect("open");

    let mut rows = Vec::new();
    for (state, warm_frac) in [("cold", 0.0f64), ("half-warm", 0.5)] {
        k.drop_caches().expect("drop");
        if warm_frac > 0.0 {
            let bytes = (n as f64 * warm_frac) as usize & !4095;
            k.lseek(fd, (n - bytes) as i64, Whence::Set).expect("seek");
            k.read(fd, bytes).expect("warm");
        }
        let est_best = sleds::total_delivery_time(&mut k, &table, fd, sleds::AttackPlan::Best)
            .expect("estimate");
        // Measure a reordered read (pick order).
        let mut pick =
            PickSession::init(&mut k, &table, fd, PickConfig::bytes(64 << 10)).expect("pick");
        let j = k.start_job();
        while let Some((off, len)) = pick.next_read() {
            k.lseek(fd, off as i64, Whence::Set).expect("seek");
            k.read(fd, len).expect("read");
        }
        let measured = k.finish_job(&j).elapsed_secs();
        rows.push((format!("{state}/best"), est_best, measured));
    }
    rows
}

/// Ablation 3 — SLED refresh: a competing reader warms the tail *after*
/// the pick plan was made; refreshing mid-run picks the change up.
/// Returns (no_refresh_secs, refresh_secs).
pub fn refresh_mid_run() -> (f64, f64) {
    let run = |refresh: bool| -> f64 {
        let mut k = Kernel::new(machine(PolicyKind::Lru));
        k.mkdir("/data").expect("mkdir");
        let m = k
            .mount_disk("/data", DiskDevice::table2_disk("hda"))
            .expect("mount");
        let table = fill_table(&mut k, &[("/data", m)]).expect("calibration");
        // Twice the cache: under that pressure, the tail the competitor
        // warms will be evicted again before a plan-once reader arrives.
        let n = (k.config().cache_bytes().as_u64() * 2) as usize;
        k.install_file("/data/f.bin", &vec![1u8; n])
            .expect("install");
        let fd = k.open("/data/f.bin", OpenFlags::RDONLY).expect("open");
        let cfg = PickConfig::bytes(64 << 10);
        let mut pick = PickSession::init(&mut k, &table, fd, cfg).expect("pick");
        let total_chunks = pick.planned_chunks();
        let j = k.start_job();
        let mut i = 0usize;
        while let Some((off, len)) = pick.next_read() {
            k.lseek(fd, off as i64, Whence::Set).expect("seek");
            k.read(fd, len).expect("read");
            i += 1;
            if i == total_chunks / 4 {
                // Another job reads the tail of f (e.g. tail -f): the tail
                // is now cached, but the existing plan doesn't know.
                let g = k.open("/data/f.bin", OpenFlags::RDONLY).expect("open2");
                k.lseek(g, (n - n / 4) as i64, Whence::Set).expect("seek2");
                k.read(g, n / 4).expect("other reader");
                k.close(g).expect("close2");
                if refresh {
                    pick.refresh(&mut k, &table, fd, cfg).expect("refresh");
                }
            }
        }
        k.finish_job(&j).elapsed_secs()
    };
    (run(false), run(true))
}

/// Ablation 4 — fragmentation: the same cold scan on a contiguous vs a
/// fragmented layout. Returns (contiguous_secs, fragmented_secs).
pub fn fragmentation_cost() -> (f64, f64) {
    let run = |fragmented: bool| -> f64 {
        let mut k = Kernel::new(machine(PolicyKind::Lru));
        k.mkdir("/data").expect("mkdir");
        let m = k
            .mount_disk("/data", DiskDevice::table2_disk("hda"))
            .expect("mount");
        if fragmented {
            k.set_fragmentation(m, 8, 512, 7);
        }
        let data = text_corpus(4 << 20, 0, 99);
        k.install_file("/data/f.txt", &data).expect("install");
        let j = k.start_job();
        wc(&mut k, "/data/f.txt", None).expect("wc");
        k.finish_job(&j).elapsed_secs()
    };
    (run(false), run(true))
}

/// Ablation 5 — HSM staging chunk size: a few isolated touches of a
/// tape-resident file under different staging granularities, with the
/// tape already mounted (so the chunk size is what varies, not the mount).
/// Returns (chunk_pages, secs).
pub fn hsm_stage_chunk() -> Vec<(u64, f64)> {
    [64u64, 512, 4096]
        .into_iter()
        .map(|chunk| {
            let mut k = Kernel::new(machine(PolicyKind::Lru));
            k.mkdir("/hsm").expect("mkdir");
            k.mount_hsm(
                "/hsm",
                DiskDevice::table2_disk("hda"),
                Box::new(sleds_devices::TapeDevice::dlt("st0")),
                chunk,
            )
            .expect("mount");
            let n: usize = 32 << 20;
            k.install_file("/hsm/f.bin", &vec![3u8; n])
                .expect("install");
            k.hsm_migrate("/hsm/f.bin", true).expect("migrate");
            let fd = k.open("/hsm/f.bin", OpenFlags::RDONLY).expect("open");
            // Pay the mount before the measured window.
            k.read(fd, 4096).expect("mount touch");
            let j = k.start_job();
            // Four isolated 64 KiB touches, 8 MiB apart.
            for i in 0..4u64 {
                let off = i * (8 << 20) + (4 << 20);
                k.lseek(fd, off as i64, sleds_fs::Whence::Set)
                    .expect("seek");
                k.read(fd, 64 << 10).expect("read");
            }
            (chunk, k.finish_job(&j).elapsed_secs())
        })
        .collect()
}

/// Ablation 6 — readahead: the kernel feature the default config leaves
/// off (DESIGN.md explains the paper's fault counts imply per-page
/// accounting). Returns rows of (readahead_pages, elapsed, major_faults)
/// for a cold page-at-a-time scan.
pub fn readahead() -> Vec<(u64, f64, u64)> {
    [0u64, 8, 32]
        .into_iter()
        .map(|ra| {
            let mut cfg = machine(PolicyKind::Lru);
            cfg.readahead_pages = ra;
            let mut k = Kernel::new(cfg);
            k.mkdir("/data").expect("mkdir");
            k.mount_disk("/data", DiskDevice::table2_disk("hda"))
                .expect("mount");
            let data = text_corpus(4 << 20, 0, 55);
            k.install_file("/data/f.txt", &data).expect("install");
            let fd = k.open("/data/f.txt", OpenFlags::RDONLY).expect("open");
            let j = k.start_job();
            // Page-at-a-time reads, the pattern readahead exists for.
            loop {
                if k.read(fd, 4096).expect("read").is_empty() {
                    break;
                }
            }
            let rep = k.finish_job(&j);
            (ra, rep.elapsed_secs(), rep.usage.major_faults)
        })
        .collect()
}

/// Ablation 7 — zone-aware sleds table (the paper's future-work item):
/// delivery estimates for an inner-zone file under the flat vs the zoned
/// table, against the measured read time. Returns
/// (flat_estimate, zoned_estimate, measured) in seconds.
pub fn zoned_table_accuracy() -> (f64, f64, f64) {
    let mut k = Kernel::new(machine(PolicyKind::Lru));
    k.mkdir("/data").expect("mkdir");
    let m = k
        .mount_disk("/data", DiskDevice::table2_disk("hda"))
        .expect("mount");
    let flat_table = fill_table(&mut k, &[("/data", m)]).expect("flat calibration");
    let zoned_table =
        sleds_lmbench::fill_table_zoned(&mut k, &[("/data", m)]).expect("zoned calibration");
    // Push the allocator deep into the inner zone, then place the file.
    let dev = k.device_of_mount(m).expect("device");
    let cap = k.device_capacity(dev).expect("capacity");
    k.advance_allocator(m, (cap * 8 / 10) / 8)
        .expect("advance 80% in");
    let n = 4 << 20;
    k.install_file("/data/inner.bin", &vec![1u8; n])
        .expect("install");
    let fd = k.open("/data/inner.bin", OpenFlags::RDONLY).expect("open");

    let flat_est = sleds::total_delivery_time(&mut k, &flat_table, fd, sleds::AttackPlan::Best)
        .expect("flat estimate");
    let zoned_est = sleds::total_delivery_time(&mut k, &zoned_table, fd, sleds::AttackPlan::Best)
        .expect("zoned estimate");
    let j = k.start_job();
    let mut pos = 0usize;
    while pos < n {
        pos += k.read(fd, 64 << 10).expect("read").len();
    }
    let measured = k.finish_job(&j).elapsed_secs();
    (flat_est, zoned_est, measured)
}

/// Ablation 8 — asynchronous I/O (the paper's related-work comparator):
/// warm-cache wc elapsed under baseline, SLEDs, and the AIO model, at a
/// file under RAM and one over it. Returns rows of
/// (label, baseline, sleds, aio) seconds.
pub fn aio_comparison() -> Vec<(String, f64, f64, f64)> {
    let mut rows = Vec::new();
    for (label, ram_fraction_pct) in [("file = 0.9x RAM", 90u64), ("file = 1.5x RAM", 150)] {
        let mut k = Kernel::new(machine(PolicyKind::Lru));
        k.mkdir("/data").expect("mkdir");
        let m = k
            .mount_disk("/data", DiskDevice::table2_disk("hda"))
            .expect("mount");
        let table = fill_table(&mut k, &[("/data", m)]).expect("calibration");
        let ram = k.config().ram.as_u64();
        let n = (ram * ram_fraction_pct / 100) as usize;
        let data = text_corpus(n, 0, 88);
        k.install_file("/data/f.txt", &data).expect("install");

        let measure = |mode: u8, k: &mut Kernel| -> f64 {
            // Warm in the same mode, then measure.
            let run = |k: &mut Kernel| match mode {
                0 => {
                    wc(k, "/data/f.txt", None).expect("wc");
                    None
                }
                1 => {
                    wc(k, "/data/f.txt", Some(&table)).expect("wc sleds");
                    None
                }
                _ => Some(wc_aio(k, "/data/f.txt").expect("wc aio").1),
            };
            run(k);
            let j = k.start_job();
            let aio_rep = run(k);
            match aio_rep {
                Some(rep) => rep.elapsed.as_secs_f64(),
                None => k.finish_job(&j).elapsed_secs(),
            }
        };
        let base = measure(0, &mut k);
        let sleds = measure(1, &mut k);
        let aio = measure(2, &mut k);
        rows.push((label.to_string(), base, sleds, aio));
    }
    rows
}

/// Formats the full ablation report.
pub fn report() -> String {
    use std::fmt::Write;
    let mut out = String::new();
    writeln!(
        out,
        "Ablation 1: page replacement policy (two-pass wc, file = 1.5x cache)"
    )
    .expect("fmt");
    writeln!(
        out,
        "  {:<8} {:>10} {:>10} {:>8} {:>12} {:>12}",
        "policy", "base(s)", "sleds(s)", "speedup", "base-faults", "sleds-faults"
    )
    .expect("fmt");
    for r in replacement_policies() {
        writeln!(
            out,
            "  {:<8} {:>10.3} {:>10.3} {:>8.2} {:>12} {:>12}",
            r.variant,
            r.baseline_secs,
            r.sleds_secs,
            r.speedup(),
            r.baseline_faults,
            r.sleds_faults
        )
        .expect("fmt");
    }
    writeln!(
        out,
        "  (MRU is scan-optimal: its baseline keeps the head cached, so the\n\
         \x20  SLEDs advantage shrinks — the paper's win depends on LRU-like\n\
         \x20  policies, which is what real kernels ship)\n"
    )
    .expect("fmt");

    writeln!(
        out,
        "Ablation 2: attack-plan estimate accuracy (4 MiB file)"
    )
    .expect("fmt");
    for (state, est, measured) in attack_plan_accuracy() {
        writeln!(
            out,
            "  {:<14} estimate {:>8.3}s   measured {:>8.3}s   ratio {:>5.2}",
            state,
            est,
            measured,
            measured / est.max(1e-12)
        )
        .expect("fmt");
    }
    writeln!(out).expect("fmt");

    let (no_refresh, refresh) = refresh_mid_run();
    writeln!(
        out,
        "Ablation 3: SLED refresh mid-run (competing reader warms the tail)"
    )
    .expect("fmt");
    writeln!(
        out,
        "  plan-once {no_refresh:.3}s   with refresh {refresh:.3}s   saving {:.0}%\n",
        (1.0 - refresh / no_refresh) * 100.0
    )
    .expect("fmt");

    let (contig, frag) = fragmentation_cost();
    writeln!(out, "Ablation 4: file fragmentation (cold sequential scan)").expect("fmt");
    writeln!(
        out,
        "  contiguous {contig:.3}s   fragmented {frag:.3}s   penalty {:.1}x\n",
        frag / contig
    )
    .expect("fmt");

    writeln!(
        out,
        "Ablation 5: HSM staging chunk (4 touches, 8 MiB apart, tape mounted)"
    )
    .expect("fmt");
    for (chunk, secs) in hsm_stage_chunk() {
        writeln!(out, "  {:>5} pages/stage: {secs:>8.1}s", chunk).expect("fmt");
    }
    writeln!(
        out,
        "  (tape locates cost seconds, so for accesses a few MiB apart the\n\
         \x20  16 MiB staging chunk wins by amortizing locates — the classic\n\
         \x20  HSM granularity tradeoff, inverted from disk intuition)\n"
    )
    .expect("fmt");

    writeln!(
        out,
        "Ablation 6: readahead (cold page-at-a-time scan of 4 MiB)"
    )
    .expect("fmt");
    for (ra, secs, majors) in readahead() {
        writeln!(
            out,
            "  readahead {ra:>3} pages: {secs:>7.3}s  {majors:>5} major faults"
        )
        .expect("fmt");
    }
    writeln!(
        out,
        "  (the paper's fault counts scale per page, i.e. readahead-off\n\
         \x20  accounting; with readahead the counts change but the SLEDs\n\
         \x20  reorder-vs-linear story is unaffected)\n"
    )
    .expect("fmt");

    let (flat, zoned, measured) = zoned_table_accuracy();
    writeln!(
        out,
        "Ablation 7: zone-aware sleds table (future work in the paper)"
    )
    .expect("fmt");
    writeln!(
        out,
        "  inner-zone file: flat estimate {flat:.3}s, zoned estimate {zoned:.3}s,\n\
         \x20  measured {measured:.3}s — zoned error {:.0}% vs flat error {:.0}%\n",
        (zoned - measured).abs() / measured * 100.0,
        (flat - measured).abs() / measured * 100.0
    )
    .expect("fmt");

    writeln!(
        out,
        "Ablation 8: asynchronous I/O comparator (warm-cache wc)"
    )
    .expect("fmt");
    writeln!(
        out,
        "  {:<18} {:>10} {:>10} {:>10}",
        "", "baseline", "SLEDs", "AIO"
    )
    .expect("fmt");
    for (label, base, sleds, aio) in aio_comparison() {
        writeln!(out, "  {label:<18} {base:>9.3}s {sleds:>9.3}s {aio:>9.3}s").expect("fmt");
    }
    writeln!(
        out,
        "  (the paper's §2 point: completion-order AIO matches SLEDs while the\n\
         \x20  file fits in memory, but posting whole-file buffers thrashes once\n\
         \x20  it does not — SLEDs needs no extra buffering)"
    )
    .expect("fmt");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_keeps_the_paper_advantage_and_mru_shrinks_it() {
        let rows = replacement_policies();
        let by_name = |n: &str| rows.iter().find(|r| r.variant == n).expect("row").clone();
        let lru = by_name("lru");
        let mru = by_name("mru");
        assert!(lru.speedup() > 1.5, "LRU speedup {:.2}", lru.speedup());
        assert!(
            mru.speedup() < lru.speedup() * 0.75,
            "MRU baseline should close the gap: {:.2} vs {:.2}",
            mru.speedup(),
            lru.speedup()
        );
    }

    #[test]
    fn estimates_within_factor_two() {
        for (state, est, measured) in attack_plan_accuracy() {
            let ratio = measured / est.max(1e-12);
            assert!((0.5..2.0).contains(&ratio), "{state}: ratio {ratio:.2}");
        }
    }

    #[test]
    fn refresh_helps_when_state_changes() {
        let (no_refresh, refresh) = refresh_mid_run();
        assert!(
            refresh < no_refresh,
            "refresh ({refresh:.3}) should beat plan-once ({no_refresh:.3})"
        );
    }

    #[test]
    fn fragmentation_slows_cold_scans() {
        let (contig, frag) = fragmentation_cost();
        assert!(
            frag > contig * 1.5,
            "fragmented {frag:.3} vs contiguous {contig:.3}"
        );
    }

    #[test]
    fn readahead_cuts_major_faults() {
        let rows = readahead();
        assert_eq!(rows[0].0, 0);
        let base_faults = rows[0].2;
        let ra_faults = rows[2].2;
        assert!(
            ra_faults * 4 < base_faults,
            "readahead 32 should cut faults 4x+: {ra_faults} vs {base_faults}"
        );
        assert!(
            rows[2].1 <= rows[0].1 * 1.05,
            "readahead must not slow the scan"
        );
    }

    #[test]
    fn zoned_table_estimates_inner_zone_better() {
        let (flat, zoned, measured) = zoned_table_accuracy();
        let flat_err = (flat - measured).abs();
        let zoned_err = (zoned - measured).abs();
        assert!(
            zoned_err < flat_err,
            "zoned ({zoned:.3}) should beat flat ({flat:.3}) against measured {measured:.3}"
        );
    }

    #[test]
    fn aio_matches_sleds_in_memory_but_thrashes_beyond() {
        let rows = aio_comparison();
        let (_, base_small, sleds_small, aio_small) = rows[0].clone();
        let (_, _, sleds_big, aio_big) = rows[1].clone();
        // In-memory: AIO is competitive with SLEDs (within 2x) and beats
        // the baseline.
        assert!(aio_small < base_small, "AIO should beat baseline in memory");
        assert!(aio_small < 2.0 * sleds_small, "AIO near SLEDs in memory");
        // Beyond memory: thrash makes AIO clearly worse than SLEDs.
        assert!(
            aio_big > 1.3 * sleds_big,
            "AIO ({aio_big:.3}) should thrash past RAM vs SLEDs ({sleds_big:.3})"
        );
    }

    #[test]
    fn large_stage_chunks_amortize_tape_locates() {
        // With multi-second locates and touches 8 MiB apart, a 16 MiB
        // staging chunk covers two touches per locate and wins.
        let rows = hsm_stage_chunk();
        let (small, big) = (rows[0].1, rows[2].1);
        assert!(
            big < small,
            "16 MiB staging ({big:.1}s) should amortize locates vs 256 KiB ({small:.1}s)"
        );
    }
}
