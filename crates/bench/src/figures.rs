//! Experiment runners: one function per table/figure of the paper.
//!
//! All follow the paper's measurement protocol (section 5.1): files of 8 to
//! 128 MB on a 64 MB machine, warm cache (runs repeated in the same mode,
//! first run discarded), twelve measured runs, 90% confidence intervals.
//! Elapsed times and fault counts are virtual-time outputs of the
//! simulator.

use sleds::{PickConfig, PickSession, SledsTable};
use sleds_apps::fimgbin::fimgbin;
use sleds_apps::fimhisto::{fimhisto, DEFAULT_BINS};
use sleds_apps::grep::{grep, GrepOptions};
use sleds_apps::wc::wc;
use sleds_fs::{Kernel, OpenFlags};
use sleds_pagecache::{PageCache, PageKey};
use sleds_sim_core::{DetRng, PAGE_SIZE};
use sleds_textmatch::Regex;

use crate::env::{Env, FsKind};
use crate::output::Series;
use crate::workload::{needle_position, text_corpus, NEEDLE};
use crate::{quick_mode, runs, size_sweep};

/// A regenerated figure: series plus commentary for EXPERIMENTS.md.
#[derive(Clone, Debug)]
pub struct Figure {
    /// Identifier, e.g. `"fig7"`.
    pub id: &'static str,
    /// Title shown on the plot.
    pub title: String,
    /// X-axis label.
    pub x_name: String,
    /// Y-axis label.
    pub y_name: String,
    /// The data.
    pub series: Vec<Series>,
}

// ---------------------------------------------------------------------
// Figure 3: cache movement during two linear passes
// ---------------------------------------------------------------------

/// Reproduces Figure 3 as a text trace, and returns the second-pass hit
/// counts (LRU linear, then SLEDs order) so callers can assert the claim.
pub fn fig3() -> (String, u64, u64) {
    use std::fmt::Write;
    let mut out = String::new();
    writeln!(out, "Figure 3: five-block file, three-block LRU cache").expect("fmt");
    writeln!(out, "cache contents after each access (e = empty):\n").expect("fmt");

    let trace = |order: &[u64], cache: &mut PageCache, out: &mut String| -> u64 {
        let before = cache.stats().hits;
        for &b in order {
            if !cache.lookup(PageKey::new(1, b)) {
                cache.insert(PageKey::new(1, b), false);
            }
            let mut row = String::new();
            for slot in 1..=5 {
                if cache.contains(PageKey::new(1, slot - 1)) {
                    write!(row, " {}", slot - 1 + 1).expect("fmt");
                } else {
                    write!(row, " .").expect("fmt");
                }
            }
            writeln!(out, "  access {} -> cache holds:{row}", b + 1).expect("fmt");
        }
        cache.stats().hits - before
    };

    let mut cache = PageCache::lru(3);
    writeln!(out, "first pass (1..5):").expect("fmt");
    trace(&[0, 1, 2, 3, 4], &mut cache, &mut out);
    writeln!(out, "second pass, linear (1..5):").expect("fmt");
    let linear_hits = trace(&[0, 1, 2, 3, 4], &mut cache, &mut out);
    writeln!(
        out,
        "  -> second-pass hits with LRU + linear order: {linear_hits}"
    )
    .expect("fmt");

    let mut cache = PageCache::lru(3);
    trace(&[0, 1, 2, 3, 4], &mut cache, &mut String::new());
    writeln!(out, "second pass, SLEDs order (3,4,5 then 1,2):").expect("fmt");
    let sleds_hits = trace(&[2, 3, 4, 0, 1], &mut cache, &mut out);
    writeln!(
        out,
        "  -> second-pass hits with SLEDs order: {sleds_hits} (blocks fetched: {})",
        5 - sleds_hits
    )
    .expect("fmt");
    (out, linear_hits, sleds_hits)
}

// ---------------------------------------------------------------------
// Figure 4: record-boundary adjustment
// ---------------------------------------------------------------------

/// Reproduces Figure 4: shows SLED bounds before and after record
/// adjustment for a file with 7-byte records and one cached page.
pub fn fig4() -> String {
    use std::fmt::Write;
    let mut env = Env::table2(FsKind::Ext2, 404);
    let n = 4 * PAGE_SIZE as usize;
    let rec: Vec<u8> = b"RECORD\n".iter().copied().cycle().take(n).collect();
    let path = env.install("records.dat", &rec);
    let k = &mut env.kernel;
    let fd = k.open(&path, OpenFlags::RDONLY).expect("open");
    // Warm page 1 (the low-latency SLED in the middle).
    k.pread(fd, PAGE_SIZE, PAGE_SIZE as usize).expect("warm");

    let mut out = String::new();
    writeln!(out, "Figure 4: adjusting SLEDs for record boundaries").expect("fmt");
    let before = sleds::fsleds_get(k, fd, &env.table).expect("fsleds_get");
    writeln!(out, "before (page-aligned SLEDs):").expect("fmt");
    for s in &before {
        writeln!(
            out,
            "  offset {:>6} length {:>6} latency {:>10.6}s",
            s.offset, s.length, s.latency
        )
        .expect("fmt");
    }
    let pick = PickSession::init(
        k,
        &env.table,
        fd,
        PickConfig::records(PAGE_SIZE as usize, b'\n'),
    )
    .expect("pick init");
    writeln!(
        out,
        "after (edges pulled to record boundaries; fragments pushed out):"
    )
    .expect("fmt");
    for s in pick.sleds() {
        writeln!(
            out,
            "  offset {:>6} length {:>6} latency {:>10.6}s  (offset % 7 == {})",
            s.offset,
            s.length,
            s.latency,
            s.offset % 7
        )
        .expect("fmt");
    }
    out
}

// ---------------------------------------------------------------------
// Tables 2 and 3: measured device characteristics
// ---------------------------------------------------------------------

/// One measured storage level for the Table 2/3 reproduction.
#[derive(Clone, Debug)]
pub struct LevelRow {
    /// Level name, matching the paper's rows.
    pub level: &'static str,
    /// Measured latency, seconds.
    pub latency: f64,
    /// Measured bandwidth, bytes/second.
    pub bandwidth: f64,
    /// The paper's reported latency, seconds.
    pub paper_latency: f64,
    /// The paper's reported bandwidth, bytes/second.
    pub paper_bandwidth: f64,
}

/// Reproduces Table 2: lmbench-measured levels of the Unix-utility machine.
pub fn table2() -> Vec<LevelRow> {
    let mut rows = Vec::new();
    let ext2 = Env::table2(FsKind::Ext2, 22);
    let mem = ext2.table.memory().expect("memory row");
    rows.push(LevelRow {
        level: "memory",
        latency: mem.latency,
        bandwidth: mem.bandwidth,
        paper_latency: 175e-9,
        paper_bandwidth: 48e6,
    });
    for (fs, level, pl, pb) in [
        (FsKind::Ext2, "hard disk", 0.018, 9.0e6),
        (FsKind::CdRom, "CD-ROM", 0.130, 2.8e6),
        (FsKind::Nfs, "NFS", 0.270, 1.0e6),
    ] {
        let env = Env::table2(fs, 22);
        let dev = env.kernel.device_of_mount(env.mount).expect("mount device");
        let row = env.table.device(dev).expect("calibrated row");
        rows.push(LevelRow {
            level,
            latency: row.latency,
            bandwidth: row.bandwidth,
            paper_latency: pl,
            paper_bandwidth: pb,
        });
    }
    rows
}

/// Reproduces Table 3: the LHEASOFT machine (memory + disk).
pub fn table3() -> Vec<LevelRow> {
    let env = Env::table3(FsKind::Ext2, 33);
    let mem = env.table.memory().expect("memory row");
    let dev = env.kernel.device_of_mount(env.mount).expect("mount device");
    let disk = env.table.device(dev).expect("calibrated row");
    vec![
        LevelRow {
            level: "memory",
            latency: mem.latency,
            bandwidth: mem.bandwidth,
            paper_latency: 210e-9,
            paper_bandwidth: 87e6,
        },
        LevelRow {
            level: "hard disk",
            latency: disk.latency,
            bandwidth: disk.bandwidth,
            paper_latency: 16.5e-3,
            paper_bandwidth: 7.0e6,
        },
    ]
}

// ---------------------------------------------------------------------
// Table 4: lines of code modified
// ---------------------------------------------------------------------

/// Source-line accounting for one application.
#[derive(Clone, Debug)]
pub struct LocRow {
    /// Application name.
    pub app: &'static str,
    /// Lines inside `[sleds:begin]`/`[sleds:end]` markers (the port).
    pub sleds_lines: usize,
    /// Total non-blank lines in the module.
    pub total_lines: usize,
    /// The paper's "modified" count for the corresponding C program.
    pub paper_modified: usize,
    /// The paper's total for the main source files.
    pub paper_total: usize,
}

/// Reproduces Table 4 by counting the marker-delimited SLEDs regions in
/// this repository's application sources.
pub fn table4() -> Vec<LocRow> {
    const SOURCES: &[(&str, &str, usize, usize)] = &[
        ("grep", include_str!("../../apps/src/grep.rs"), 560, 1930),
        ("wc", include_str!("../../apps/src/wc.rs"), 140, 530),
        ("find", include_str!("../../apps/src/find.rs"), 70, 1600),
        ("gmc", include_str!("../../apps/src/gmc.rs"), 93, 1500),
        (
            "fimhisto",
            include_str!("../../apps/src/fimhisto.rs"),
            49,
            645,
        ),
        (
            "fimgbin",
            include_str!("../../apps/src/fimgbin.rs"),
            45,
            870,
        ),
    ];
    SOURCES
        .iter()
        .map(|(app, src, pm, pt)| {
            let mut in_region = false;
            let mut sleds_lines = 0;
            let mut total_lines = 0;
            for line in src.lines() {
                let t = line.trim();
                if t.is_empty() {
                    continue;
                }
                total_lines += 1;
                if t.contains("[sleds:begin]") {
                    in_region = true;
                    continue;
                }
                if t.contains("[sleds:end]") {
                    in_region = false;
                    continue;
                }
                if in_region {
                    sleds_lines += 1;
                }
            }
            LocRow {
                app,
                sleds_lines,
                total_lines,
                paper_modified: *pm,
                paper_total: *pt,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------
// Generic warm-cache sweep machinery
// ---------------------------------------------------------------------

/// Result of one sweep: elapsed time and major faults, with and without
/// SLEDs, per file size.
pub struct Sweep {
    /// Elapsed seconds, SLEDs mode.
    pub elapsed_with: Series,
    /// Elapsed seconds, baseline.
    pub elapsed_without: Series,
    /// Major faults, SLEDs mode.
    pub faults_with: Series,
    /// Major faults, baseline.
    pub faults_without: Series,
}

impl Sweep {
    /// Speedup series: baseline mean / SLEDs mean per size.
    pub fn ratio(&self) -> Series {
        let mut r = Series::new("time without / with SLEDs");
        for ((x, w), (_, wo)) in self
            .elapsed_with
            .points
            .iter()
            .zip(&self.elapsed_without.points)
        {
            if w.mean > 0.0 {
                r.push(*x, &[wo.mean / w.mean]);
            }
        }
        r
    }
}

/// Runs the paper's warm-cache protocol for one app over a size sweep.
///
/// For each size and mode: fresh environment, test file installed, one
/// discarded warm-up run, then `runs()` measured runs in the same mode.
/// `prepare` is invoked before every run (warm-up included) to mutate the
/// workload (e.g. move the grep needle); `run` executes the application.
fn sweep<P, R>(
    fs: FsKind,
    sizes_mb: &[u64],
    table3_machine: bool,
    seed: u64,
    mut make_data: impl FnMut(usize, u64) -> Vec<u8>,
    mut prepare: P,
    mut run: R,
) -> Sweep
where
    P: FnMut(&mut Kernel, &str, &mut DetRng, usize),
    R: FnMut(&mut Kernel, &str, Option<&SledsTable>),
{
    let mut sweep = Sweep {
        elapsed_with: Series::new("with SLEDs"),
        elapsed_without: Series::new("without SLEDs"),
        faults_with: Series::new("with SLEDs"),
        faults_without: Series::new("without SLEDs"),
    };
    for &mb in sizes_mb {
        let bytes = (mb << 20) as usize;
        let data = make_data(bytes, seed ^ mb);
        for use_sleds in [false, true] {
            let env_seed = seed
                .wrapping_mul(31)
                .wrapping_add(mb)
                .wrapping_add(use_sleds as u64);
            let mut env = if table3_machine {
                Env::table3(fs, env_seed)
            } else {
                Env::table2(fs, env_seed)
            };
            let path = env.install("testfile", &data);
            // Workload preparation (e.g. match placement) must be identical
            // across the two modes so they are compared on the same inputs:
            // seed by size only.
            let mut rng = DetRng::new(seed.wrapping_mul(7919).wrapping_add(mb) ^ 0xfeed);
            let table = use_sleds.then_some(env.table.clone());
            // Warm-up run, discarded (run index 0).
            prepare(&mut env.kernel, &path, &mut rng, 0);
            run(&mut env.kernel, &path, table.as_ref());
            // Measured runs.
            let mut elapsed = Vec::with_capacity(runs());
            let mut faults = Vec::with_capacity(runs());
            for r in 0..runs() {
                prepare(&mut env.kernel, &path, &mut rng, r + 1);
                let j = env.kernel.start_job();
                run(&mut env.kernel, &path, table.as_ref());
                let rep = env.kernel.finish_job(&j);
                elapsed.push(rep.elapsed_secs());
                faults.push(rep.usage.major_faults as f64);
            }
            let (es, fs_) = if use_sleds {
                (&mut sweep.elapsed_with, &mut sweep.faults_with)
            } else {
                (&mut sweep.elapsed_without, &mut sweep.faults_without)
            };
            es.push(mb as f64, &elapsed);
            fs_.push(mb as f64, &faults);
        }
    }
    sweep
}

// ---------------------------------------------------------------------
// Figures 7-15
// ---------------------------------------------------------------------

/// Figures 7 and 8: wc over NFS, elapsed time and speedup vs file size.
pub fn fig7_8() -> (Figure, Figure) {
    let sizes = size_sweep(8, 128, 8);
    let s = sweep(
        FsKind::Nfs,
        &sizes,
        false,
        7,
        |n, seed| text_corpus(n, 0, seed),
        |_, _, _, _| {},
        |k, path, table| {
            wc(k, path, table).expect("wc");
        },
    );
    let f7 = Figure {
        id: "fig7",
        title: "Time for NFS wc with/without SLEDs (warm cache)".into(),
        x_name: "file size (MB)".into(),
        y_name: "execution time (s)".into(),
        series: vec![s.elapsed_with.clone(), s.elapsed_without.clone()],
    };
    let f8 = Figure {
        id: "fig8",
        title: "wc time ratio (speedup) over NFS".into(),
        x_name: "file size (MB)".into(),
        y_name: "improvement ratio".into(),
        series: vec![s.ratio()],
    };
    (f7, f8)
}

/// Figure 9: wc page faults on CD-ROM vs file size.
pub fn fig9() -> Figure {
    let sizes = size_sweep(24, 96, 8);
    let s = sweep(
        FsKind::CdRom,
        &sizes,
        false,
        9,
        |n, seed| text_corpus(n, 0, seed),
        |_, _, _, _| {},
        |k, path, table| {
            wc(k, path, table).expect("wc");
        },
    );
    Figure {
        id: "fig9",
        title: "Page faults for CD-ROM wc with/without SLEDs (warm cache)".into(),
        x_name: "file size (MB)".into(),
        y_name: "page faults".into(),
        series: vec![s.faults_with, s.faults_without],
    }
}

/// Figure 10: grep (all matches) on CD-ROM, elapsed time vs file size.
pub fn fig10() -> Figure {
    let sizes = size_sweep(24, 96, 8);
    let re = Regex::new(&String::from_utf8_lossy(NEEDLE)).expect("pattern");
    let s = sweep(
        FsKind::CdRom,
        &sizes,
        false,
        10,
        // Small match percentage: one matching line in ~400.
        |n, seed| text_corpus(n, 400, seed),
        |_, _, _, _| {},
        move |k, path, table| {
            grep(k, path, &re, &GrepOptions::default(), table).expect("grep");
        },
    );
    Figure {
        id: "fig10",
        title: "Time for CD-ROM grep, all matches, with/without SLEDs".into(),
        x_name: "file size (MB)".into(),
        y_name: "execution time (s)".into(),
        series: vec![s.elapsed_with, s.elapsed_without],
    }
}

/// Shared runner for the first-match experiments.
///
/// `per_run_placement` selects the protocol: Figures 11/12 place the single
/// match once per test file (so the discarded warm-up run leaves the match
/// region cached, and the SLEDs runs find it without any physical I/O —
/// the paper's "ideal benchmark"); Figure 13's CDF moves the match to a
/// fresh random position before every run.
fn first_match_sweep(fs: FsKind, sizes: &[u64], seed: u64, per_run_placement: bool) -> Sweep {
    let re = Regex::new(&String::from_utf8_lossy(NEEDLE)).expect("pattern");
    let mut prev_pos: Option<u64> = None;
    sweep(
        fs,
        sizes,
        false,
        seed,
        |n, s| text_corpus(n, 0, s),
        move |k, path, rng, run_idx| {
            let len = k.stat(path).expect("stat").size as usize;
            if run_idx == 0 {
                // Fresh test file for this size/mode: plant the match.
                let pos = needle_position(rng, len);
                k.poke_file(path, pos, NEEDLE).expect("poke");
                prev_pos = Some(pos);
            } else if per_run_placement {
                if let Some(p) = prev_pos {
                    k.poke_file(path, p, b"aaaaaa").expect("unpoke");
                }
                let pos = needle_position(rng, len);
                k.poke_file(path, pos, NEEDLE).expect("poke");
                prev_pos = Some(pos);
            }
            // Fixed placement: measured runs keep the warm-up's needle.
        },
        move |k, path, table| {
            grep(
                k,
                path,
                &re,
                &GrepOptions {
                    first_match_only: true,
                },
                table,
            )
            .expect("grep -q");
        },
    )
}

/// Figures 11 and 12: grep first match on ext2, elapsed and speedup.
pub fn fig11_12() -> (Figure, Figure) {
    let sizes = size_sweep(8, 128, 8);
    let s = first_match_sweep(FsKind::Ext2, &sizes, 11, false);
    let f11 = Figure {
        id: "fig11",
        title: "Time for ext2 grep with one match, with/without SLEDs".into(),
        x_name: "file size (MB)".into(),
        y_name: "execution time (s)".into(),
        series: vec![s.elapsed_with.clone(), s.elapsed_without.clone()],
    };
    let f12 = Figure {
        id: "fig12",
        title: "Ratio of mean execution time, ext2 grep one match".into(),
        x_name: "file size (MB)".into(),
        y_name: "improvement ratio".into(),
        series: vec![s.ratio()],
    };
    (f11, f12)
}

/// Figure 13: CDF of grep first-match times, NFS, 64 MB file.
pub fn fig13() -> Figure {
    let re = Regex::new(&String::from_utf8_lossy(NEEDLE)).expect("pattern");
    let n_runs = if quick_mode() { 12 } else { 100 };
    let bytes = 64usize << 20;
    let mut series = Vec::new();
    for use_sleds in [true, false] {
        let mut env = Env::table2(FsKind::Nfs, 13 + use_sleds as u64);
        let data = text_corpus(bytes, 0, 1313);
        let path = env.install("testfile", &data);
        let table = use_sleds.then_some(env.table.clone());
        // Same placement sequence in both modes: fair comparison.
        let mut rng = DetRng::new(777);
        let mut prev: Option<u64> = None;
        let mut samples = Vec::with_capacity(n_runs);
        for i in 0..=n_runs {
            if let Some(p) = prev {
                env.kernel.poke_file(&path, p, b"aaaaaa").expect("unpoke");
            }
            let pos = needle_position(&mut rng, bytes);
            env.kernel.poke_file(&path, pos, NEEDLE).expect("poke");
            prev = Some(pos);
            let j = env.kernel.start_job();
            grep(
                &mut env.kernel,
                &path,
                &re,
                &GrepOptions {
                    first_match_only: true,
                },
                table.as_ref(),
            )
            .expect("grep -q");
            let rep = env.kernel.finish_job(&j);
            if i > 0 {
                // First run warms the cache and is discarded.
                samples.push(rep.elapsed_secs());
            }
        }
        let ecdf = sleds_sim_core::stats::Ecdf::of(&samples).expect("samples");
        let mut s = Series::new(if use_sleds {
            "with SLEDs"
        } else {
            "without SLEDs"
        });
        for (x, frac) in ecdf.steps() {
            s.push(x, &[frac]);
        }
        series.push(s);
    }
    Figure {
        id: "fig13",
        title: "CDF of execution time, NFS grep one match, 64MB (warm cache)".into(),
        x_name: "time elapsed (s)".into(),
        y_name: "fraction of runs".into(),
        series,
    }
}

/// Figure 14: fimhisto elapsed time on ext2 (Table 3 machine).
pub fn fig14() -> (Figure, Figure) {
    let sizes = size_sweep(8, 64, 8);
    let s = sweep(
        FsKind::Ext2,
        &sizes,
        true,
        14,
        |n, seed| {
            let (w, h) = sleds_fits::gen::dimensions_for_bytes(n as u64, sleds_fits::Bitpix::I16);
            sleds_fits::generate_image_bytes(w, h, sleds_fits::Bitpix::I16, seed)
        },
        |_, _, _, _| {},
        |k, path, table| {
            let out = "/data/fimhisto.out.fits";
            fimhisto(k, path, out, DEFAULT_BINS, table).expect("fimhisto");
        },
    );
    let elapsed = Figure {
        id: "fig14",
        title: "Elapsed time for FIMHISTO with/without SLEDs (ext2, warm cache)".into(),
        x_name: "file size (MB)".into(),
        y_name: "execution time (s)".into(),
        series: vec![s.elapsed_with.clone(), s.elapsed_without.clone()],
    };
    let faults = Figure {
        id: "fig14-faults",
        title: "Page faults for FIMHISTO with/without SLEDs".into(),
        x_name: "file size (MB)".into(),
        y_name: "page faults".into(),
        series: vec![s.faults_with, s.faults_without],
    };
    (elapsed, faults)
}

/// Figure 15: fimgbin elapsed time on ext2, 4x and 16x data reduction.
pub fn fig15() -> Vec<Figure> {
    let sizes = size_sweep(8, 64, 8);
    let mut figs = Vec::new();
    for (factor, reduction) in [(2usize, 4u32), (4, 16)] {
        let s = sweep(
            FsKind::Ext2,
            &sizes,
            true,
            15 + factor as u64,
            |n, seed| {
                let (w, h) =
                    sleds_fits::gen::dimensions_for_bytes(n as u64, sleds_fits::Bitpix::I16);
                sleds_fits::generate_image_bytes(w, h, sleds_fits::Bitpix::I16, seed)
            },
            |_, _, _, _| {},
            move |k, path, table| {
                let out = "/data/fimgbin.out.fits";
                fimgbin(k, path, out, factor, table).expect("fimgbin");
            },
        );
        figs.push(Figure {
            id: if factor == 2 { "fig15" } else { "fig15-16x" },
            title: format!("Elapsed time for FIMGBIN with/without SLEDs ({reduction}x reduction)"),
            x_name: "file size (MB)".into(),
            y_name: "execution time (s)".into(),
            series: vec![s.elapsed_with, s.elapsed_without],
        });
    }
    figs
}

// ---------------------------------------------------------------------
// HSM extension (section 5's "gains may be much greater with HSM")
// ---------------------------------------------------------------------

/// The HSM prediction: total delivery estimates let `find -latency` prune
/// tape-resident files; returns (pruned walk seconds, full walk seconds).
pub fn hsm_prune_demo() -> (f64, f64) {
    use sleds_apps::find::{find, FindOptions};
    let mut env = Env::table2(FsKind::Hsm, 99);
    let file_bytes = 4 << 20;
    let mut paths = Vec::new();
    for i in 0..6 {
        let data = text_corpus(file_bytes, 50, 500 + i);
        paths.push(env.install(&format!("file{i}.dat"), &data));
    }
    // Migrate half the files to tape.
    for p in paths.iter().step_by(2) {
        env.kernel.hsm_migrate(p, true).expect("migrate");
    }
    let table = env.table.clone();
    let re = Regex::new(&String::from_utf8_lossy(NEEDLE)).expect("pattern");

    // Pruned: only files deliverable in under 10 s get grepped.
    let j = env.kernel.start_job();
    let hits = find(
        &mut env.kernel,
        "/hsm",
        &FindOptions {
            latency: Some(sleds::LatencyPredicate::parse("-10").expect("pred")),
            ..Default::default()
        },
        Some(&table),
    )
    .expect("find");
    for h in &hits {
        grep(
            &mut env.kernel,
            &h.path,
            &re,
            &GrepOptions::default(),
            Some(&table),
        )
        .expect("grep");
    }
    let pruned = env.kernel.finish_job(&j).elapsed_secs();

    // Unpruned: grep everything, staging tape files in.
    let j = env.kernel.start_job();
    let hits = find(&mut env.kernel, "/hsm", &FindOptions::default(), None).expect("find");
    for h in &hits {
        if env.kernel.stat(&h.path).expect("stat").kind == sleds_fs::FileKind::File {
            grep(&mut env.kernel, &h.path, &re, &GrepOptions::default(), None).expect("grep");
        }
    }
    let full = env.kernel.finish_job(&j).elapsed_secs();
    (pruned, full)
}

/// gmc's report on an HSM file before and after migration — the paper's
/// reporting use case where estimates span many orders of magnitude.
pub fn gmc_hsm_report() -> String {
    use std::fmt::Write;
    let mut env = Env::table2(FsKind::Hsm, 98);
    let data = text_corpus(8 << 20, 0, 42);
    let path = env.install("archive.dat", &data);
    let table = env.table.clone();
    let mut out = String::new();
    let online = sleds_apps::gmc::properties_panel(&mut env.kernel, &table, &path).expect("panel");
    writeln!(out, "online (disk-resident):\n{online}").expect("fmt");
    env.kernel.hsm_migrate(&path, true).expect("migrate");
    let offline = sleds_apps::gmc::properties_panel(&mut env.kernel, &table, &path).expect("panel");
    writeln!(out, "offline (tape-resident):\n{offline}").expect("fmt");
    writeln!(
        out,
        "estimate ratio offline/online: {:.0}x",
        offline.best_secs / online.best_secs.max(1e-12)
    )
    .expect("fmt");
    out
}

/// The §5.2 source-tree story: a repeated `find -exec grep` with and
/// without SLEDs ordering. Returns formatted text.
pub fn tree_demo() -> String {
    use sleds_apps::treegrep::{tree_grep, TreeGrepOptions};
    use std::fmt::Write;
    let mut env = Env::table2(FsKind::Ext2, 55);
    // A "source tree": 24 files of 4 MiB; the routine we're looking for is
    // in the last file in scan order.
    let nfiles = 24;
    for i in 0..nfiles {
        let mut data = text_corpus(4 << 20, 0, 900 + i as u64);
        if i == nfiles - 1 {
            let p = data.len() * 2 / 3;
            data[p..p + NEEDLE.len()].copy_from_slice(NEEDLE);
        }
        env.install(&format!("file{i:02}.c"), &data);
    }
    let table = env.table.clone();
    let re = Regex::new(&String::from_utf8_lossy(NEEDLE)).expect("pattern");
    let opts = TreeGrepOptions {
        name_glob: Some("*.c".into()),
        stop_after_first: true,
    };

    let mut out = String::new();
    writeln!(
        out,
        "Repeated source-tree search (24 x 4 MiB files, match in the last)"
    )
    .expect("fmt");
    // First search, baseline order (this is the one that warms the tail).
    let j = env.kernel.start_job();
    let first = tree_grep(&mut env.kernel, "/data", &re, &opts, None).expect("tree grep");
    let rep = env.kernel.finish_job(&j);
    writeln!(
        out,
        "  initial search:            {:>8}  ({} files scanned)",
        rep.elapsed, first.files_searched
    )
    .expect("fmt");
    // Repeat, baseline: full rescan.
    let j = env.kernel.start_job();
    let naive = tree_grep(&mut env.kernel, "/data", &re, &opts, None).expect("tree grep");
    let naive_rep = env.kernel.finish_job(&j);
    writeln!(
        out,
        "  repeat, find-order:        {:>8}  ({} files scanned, {} faults)",
        naive_rep.elapsed, naive.files_searched, naive_rep.usage.major_faults
    )
    .expect("fmt");
    // Repeat, SLEDs: cache first.
    let j = env.kernel.start_job();
    let smart = tree_grep(&mut env.kernel, "/data", &re, &opts, Some(&table)).expect("tree grep");
    let smart_rep = env.kernel.finish_job(&j);
    writeln!(
        out,
        "  repeat, SLEDs cheap-first: {:>8}  ({} files scanned, {} faults)",
        smart_rep.elapsed, smart.files_searched, smart_rep.usage.major_faults
    )
    .expect("fmt");
    writeln!(
        out,
        "  advantage: {:.0}x",
        naive_rep.elapsed.as_secs_f64() / smart_rep.elapsed.as_secs_f64().max(1e-9)
    )
    .expect("fmt");
    out
}

/// Sanity snapshot used by integration tests: the headline claims, checked
/// at one size in quick mode.
pub fn headline_checks() -> (f64, f64, f64) {
    // wc NFS at 1.5x cache size: speedup; fault reduction; grep -q ideal.
    let s = sweep(
        FsKind::Nfs,
        &[64],
        false,
        1234,
        |n, seed| text_corpus(n, 0, seed),
        |_, _, _, _| {},
        |k, path, table| {
            wc(k, path, table).expect("wc");
        },
    );
    let speedup = s.elapsed_without.points[0].1.mean / s.elapsed_with.points[0].1.mean;
    let fault_ratio = s.faults_with.points[0].1.mean / s.faults_without.points[0].1.mean.max(1.0);
    let fm = first_match_sweep(FsKind::Ext2, &[64], 77, false);
    let q_speedup = fm.elapsed_without.points[0].1.mean / fm.elapsed_with.points[0].1.mean;
    (speedup, fault_ratio, q_speedup)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3_trace_matches_paper_claims() {
        let (text, linear, sleds) = fig3();
        assert_eq!(linear, 0, "LRU second linear pass gets nothing");
        assert_eq!(sleds, 3, "SLEDs order hits the cached tail");
        assert!(text.contains("first pass"));
    }

    #[test]
    fn fig4_shows_adjusted_edges() {
        let text = fig4();
        assert!(text.contains("before"));
        assert!(text.contains("after"));
        // Adjusted offsets land just past a separator: offset % 7 == 0.
        assert!(text.contains("(offset % 7 == 0)"));
    }

    #[test]
    fn table4_counts_marker_regions() {
        let rows = table4();
        assert_eq!(rows.len(), 6);
        let grep_row = rows.iter().find(|r| r.app == "grep").unwrap();
        let find_row = rows.iter().find(|r| r.app == "find").unwrap();
        assert!(
            grep_row.sleds_lines > find_row.sleds_lines,
            "grep port is the most invasive, as in the paper"
        );
        for r in &rows {
            assert!(r.sleds_lines > 0, "{} has no marked region", r.app);
            assert!(r.sleds_lines < r.total_lines);
        }
    }
}
