//! Result output: CSV series and ASCII plots.

use std::fmt::Write as _;
use std::path::Path;

use sleds_sim_core::stats::Summary;

/// One plotted series: labeled `(x, summary-of-y)` points.
#[derive(Clone, Debug)]
pub struct Series {
    /// Legend label, e.g. `"with SLEDs"`.
    pub label: String,
    /// `(x, y)` points; `y` carries mean and CI.
    pub points: Vec<(f64, Summary)>,
}

impl Series {
    /// Builds a series.
    pub fn new(label: impl Into<String>) -> Series {
        Series {
            label: label.into(),
            points: Vec::new(),
        }
    }

    /// Adds a point from raw samples; empty samples are skipped.
    pub fn push(&mut self, x: f64, samples: &[f64]) {
        if let Some(s) = Summary::of(samples) {
            self.points.push((x, s));
        }
    }
}

/// Writes series as CSV: `x,label,mean,ci90,min,max,n` rows.
pub fn write_csv(path: &Path, x_name: &str, series: &[Series]) -> std::io::Result<()> {
    let mut out = String::new();
    writeln!(out, "{x_name},series,mean,ci90,min,max,n").expect("string write");
    for s in series {
        for (x, y) in &s.points {
            writeln!(
                out,
                "{x},{},{},{},{},{},{}",
                s.label, y.mean, y.ci90, y.min, y.max, y.n
            )
            .expect("string write");
        }
    }
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    std::fs::write(path, out)
}

/// Renders series as a fixed-width ASCII chart (mean values; one symbol
/// per series), for eyeballing shape in a terminal.
pub fn ascii_plot(title: &str, x_name: &str, y_name: &str, series: &[Series]) -> String {
    const W: usize = 64;
    const H: usize = 20;
    let symbols = ['B', 'S', 'x', 'o', '*', '+'];
    let mut xs: Vec<f64> = Vec::new();
    let mut ys: Vec<f64> = Vec::new();
    for s in series {
        for (x, y) in &s.points {
            xs.push(*x);
            ys.push(y.mean);
        }
    }
    let mut out = String::new();
    writeln!(out, "# {title}").expect("string write");
    if xs.is_empty() {
        writeln!(out, "(no data)").expect("string write");
        return out;
    }
    let (x0, x1) = (
        xs.iter().cloned().fold(f64::INFINITY, f64::min),
        xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
    );
    let (y0, y1) = (0.0, ys.iter().cloned().fold(f64::NEG_INFINITY, f64::max));
    let xspan = (x1 - x0).max(1e-12);
    let yspan = (y1 - y0).max(1e-12);
    let mut grid = vec![vec![b' '; W]; H];
    for (si, s) in series.iter().enumerate() {
        let sym = symbols[si % symbols.len()] as u8;
        for (x, y) in &s.points {
            let cx = (((x - x0) / xspan) * (W - 1) as f64).round() as usize;
            let cy = (((y.mean - y0) / yspan) * (H - 1) as f64).round() as usize;
            grid[H - 1 - cy.min(H - 1)][cx.min(W - 1)] = sym;
        }
    }
    writeln!(out, "{y_name:>12} max={y1:.3}").expect("string write");
    for row in grid {
        writeln!(out, "  |{}", String::from_utf8_lossy(&row)).expect("string write");
    }
    writeln!(out, "  +{}", "-".repeat(W)).expect("string write");
    writeln!(out, "   {x_name}: {x0:.0} .. {x1:.0}").expect("string write");
    for (si, s) in series.iter().enumerate() {
        writeln!(out, "   '{}' = {}", symbols[si % symbols.len()], s.label).expect("string write");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_series() -> Vec<Series> {
        let mut a = Series::new("with SLEDs");
        let mut b = Series::new("without SLEDs");
        for i in 1..=5 {
            a.push(i as f64 * 8.0, &[i as f64, i as f64 + 0.5]);
            b.push(i as f64 * 8.0, &[2.0 * i as f64, 2.0 * i as f64 + 1.0]);
        }
        vec![a, b]
    }

    #[test]
    fn csv_has_all_rows() {
        let dir = std::env::temp_dir().join("sleds-bench-test");
        let path = dir.join("t.csv");
        write_csv(&path, "size_mb", &sample_series()).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 11); // header + 10 points
        assert!(text.starts_with("size_mb,series,mean"));
        assert!(text.contains("with SLEDs"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn plot_renders_symbols_and_legend() {
        let p = ascii_plot("Figure N", "size (MB)", "time (s)", &sample_series());
        assert!(p.contains("Figure N"));
        assert!(p.contains('B'));
        assert!(p.contains('S'));
        assert!(p.contains("with SLEDs"));
        assert!(p.contains("size (MB): 8 .. 40"));
    }

    #[test]
    fn empty_plot_does_not_panic() {
        let p = ascii_plot("empty", "x", "y", &[Series::new("nothing")]);
        assert!(p.contains("(no data)"));
    }

    #[test]
    fn push_skips_empty_samples() {
        let mut s = Series::new("x");
        s.push(1.0, &[]);
        assert!(s.points.is_empty());
    }
}
