//! Micro-benchmarks of the implementation's real-time costs.
//!
//! These measure *our code* (how fast the simulator itself runs), not the
//! paper's virtual-time results — those come from the `figures` binary.
//! Self-timed via `sleds_bench::microbench` so the default workspace builds
//! with no external dependencies.

use sleds::{fsleds_get, PickConfig, PickSession, SledsEntry, SledsTable};
use sleds_bench::microbench::time;
use sleds_devices::{BlockDevice, CdRomDevice, DiskDevice, NfsDevice, TapeDevice};
use sleds_fs::{Kernel, MachineConfig, OpenFlags, Whence};
use sleds_pagecache::{PageCache, PageKey, PolicyKind};
use sleds_sim_core::{ByteSize, DetRng, SimTime, PAGE_SIZE};
use sleds_textmatch::Regex;

fn kernel_with_file(pages: u64) -> (Kernel, SledsTable, sleds_fs::Fd) {
    let mut cfg = MachineConfig::table2();
    cfg.ram = ByteSize::mib(16);
    let mut k = Kernel::new(cfg);
    k.mkdir("/d").unwrap();
    let m = k.mount_disk("/d", DiskDevice::table2_disk("hda")).unwrap();
    let dev = k.device_of_mount(m).unwrap();
    let mut t = SledsTable::new();
    t.fill_memory(SledsEntry::new(175e-9, 48e6));
    t.fill_device(dev, SledsEntry::new(0.018, 9e6));
    k.install_file("/d/f", &vec![3u8; (pages * PAGE_SIZE) as usize])
        .unwrap();
    let fd = k.open("/d/f", OpenFlags::RDONLY).unwrap();
    // Scatter some cached ranges so SLED construction has work to do.
    for start in (0..pages).step_by(7) {
        k.lseek(fd, (start * PAGE_SIZE) as i64, Whence::Set)
            .unwrap();
        k.read(fd, PAGE_SIZE as usize).unwrap();
    }
    (k, t, fd)
}

fn bench_fsleds_get() {
    for pages in [256u64, 4096] {
        let (mut k, t, fd) = kernel_with_file(pages);
        time(&format!("fsleds_get/{pages}_pages"), || {
            fsleds_get(&mut k, fd, &t).unwrap()
        });
    }
}

fn bench_pick_planning() {
    for pages in [256u64, 4096] {
        let (mut k, t, fd) = kernel_with_file(pages);
        time(&format!("pick_init/bytes_{pages}_pages"), || {
            PickSession::init(&mut k, &t, fd, PickConfig::bytes(64 << 10))
                .unwrap()
                .planned_chunks()
        });
    }
}

fn bench_page_cache() {
    for kind in PolicyKind::all() {
        time(&format!("page_cache/{}_scan_10k", kind.name()), || {
            let mut cache = PageCache::new(1024, kind);
            for i in 0..10_000u64 {
                let key = PageKey::new(1, i % 2048);
                if !cache.lookup(key) {
                    cache.insert(key, false);
                }
            }
            cache.stats().hits
        });
    }
}

fn bench_device_models() {
    {
        let mut d = DiskDevice::table2_disk("hda");
        let cap = d.capacity_sectors();
        let mut rng = DetRng::new(1);
        let mut now = SimTime::ZERO;
        time("device_models/disk_random_read", || {
            let s = rng.range_u64(0, cap - 8);
            let t = d.read(s, 8, now).unwrap();
            now += t;
            t
        });
    }
    {
        let mut d = CdRomDevice::table2_drive("cd0");
        let mut sector = 0u64;
        time("device_models/cdrom_sequential_read", || {
            let t = d.read(sector, 128, SimTime::ZERO).unwrap();
            sector = (sector + 128) % (d.capacity_sectors() - 128);
            t
        });
    }
    {
        let mut d = NfsDevice::table2_mount("srv:/x");
        let mut sector = 0u64;
        time("device_models/nfs_read", || {
            let t = d.read(sector, 128, SimTime::ZERO).unwrap();
            sector = (sector + 128) % (d.capacity_sectors() - 128);
            t
        });
    }
    {
        let mut d = TapeDevice::dlt("st0");
        d.ensure_loaded();
        let cap = d.capacity_sectors();
        let mut rng = DetRng::new(2);
        time("device_models/tape_locate", || {
            let s = rng.range_u64(0, cap - 8);
            d.read(s, 8, SimTime::ZERO).unwrap()
        });
    }
}

fn bench_regex() {
    let hay: Vec<u8> = (0..65536u32).map(|i| b'a' + (i % 26) as u8).collect();
    for (name, pat) in [
        ("literal", "needle"),
        ("class_star", "[a-m]*nop"),
        ("alternation", "cat|dog|bird|fish"),
    ] {
        let re = Regex::new(pat).unwrap();
        time(&format!("regex/{name}"), || re.is_match(&hay));
    }
}

fn bench_fits_codec() {
    let values: Vec<f64> = (0..65536).map(|i| (i % 251) as f64).collect();
    for bitpix in [sleds_fits::Bitpix::I16, sleds_fits::Bitpix::F64] {
        let encoded = bitpix.encode(&values);
        time(&format!("fits_codec/decode_{}", bitpix.code()), || {
            bitpix.decode(&encoded).unwrap()
        });
    }
}

fn bench_kernel_read_path() {
    let (mut k, _, fd) = kernel_with_file(1024);
    // Warm everything.
    k.lseek(fd, 0, Whence::Set).unwrap();
    while !k.read(fd, 64 << 10).unwrap().is_empty() {}
    time("kernel_read_path/warm_64k_reads", || {
        k.lseek(fd, 0, Whence::Set).unwrap();
        let mut total = 0usize;
        loop {
            let n = k.read(fd, 64 << 10).unwrap().len();
            if n == 0 {
                break;
            }
            total += n;
        }
        total
    });
}

fn main() {
    bench_fsleds_get();
    bench_pick_planning();
    bench_page_cache();
    bench_device_models();
    bench_regex();
    bench_fits_codec();
    bench_kernel_read_path();
}
