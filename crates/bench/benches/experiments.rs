//! One Criterion bench per table/figure: the same experiment kernels the
//! `figures` binary runs, at reduced scale, so `cargo bench` exercises every
//! reproduction path and tracks its real-time cost.
//!
//! The virtual-time *results* (the paper's numbers) are written by the
//! `figures` binary; these benches answer "how long does regenerating each
//! figure take us", and guard the experiment code against rot.

use criterion::{criterion_group, criterion_main, Criterion};

use sleds_apps::grep::{grep, GrepOptions};
use sleds_apps::wc::wc;
use sleds_bench::env::{Env, FsKind};
use sleds_bench::workload::{text_corpus, NEEDLE};
use sleds_textmatch::Regex;

/// Small file so each iteration is quick; one warm pass then a measured
/// SLEDs pass, mirroring the figure protocol.
fn figure_kernel(fs: FsKind, use_sleds: bool) -> f64 {
    let mut env = Env::table2(fs, 42);
    let data = text_corpus(2 << 20, 0, 7);
    let path = env.install("bench.txt", &data);
    let table = use_sleds.then_some(env.table.clone());
    wc(&mut env.kernel, &path, table.as_ref()).unwrap();
    let j = env.kernel.start_job();
    wc(&mut env.kernel, &path, table.as_ref()).unwrap();
    env.kernel.finish_job(&j).elapsed_secs()
}

fn bench_tables(c: &mut Criterion) {
    // Tables 2/3 are dominated by lmbench calibration: benchmark it.
    c.bench_function("table2_calibration", |b| {
        b.iter(|| {
            let env = Env::table2(FsKind::Ext2, 9);
            env.table.device_count()
        })
    });
    c.bench_function("table4_loc_count", |b| {
        b.iter(|| sleds_bench::figures::table4().len())
    });
}

fn bench_figure_traces(c: &mut Criterion) {
    c.bench_function("fig3_cache_trace", |b| b.iter(sleds_bench::figures::fig3));
    c.bench_function("fig4_record_adjust", |b| b.iter(sleds_bench::figures::fig4));
}

fn bench_wc_figures(c: &mut Criterion) {
    // Figures 7/8 (NFS) and 9 (CD-ROM) run wc; one reduced point each.
    let mut g = c.benchmark_group("fig7_fig9_wc");
    g.sample_size(10);
    for fs in [FsKind::Nfs, FsKind::CdRom] {
        for use_sleds in [false, true] {
            let name = format!(
                "{}_{}",
                fs.label(),
                if use_sleds { "sleds" } else { "base" }
            );
            g.bench_function(name, |b| b.iter(|| figure_kernel(fs, use_sleds)));
        }
    }
    g.finish();
}

fn bench_grep_figures(c: &mut Criterion) {
    // Figures 10-13 run grep; reduced all-matches and first-match points.
    let mut g = c.benchmark_group("fig10_fig11_grep");
    g.sample_size(10);
    let re = Regex::new(&String::from_utf8_lossy(NEEDLE)).unwrap();
    for (name, first_only) in [("all_matches", false), ("first_match", true)] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let mut env = Env::table2(FsKind::Ext2, 43);
                let data = text_corpus(2 << 20, 300, 8);
                let path = env.install("bench.txt", &data);
                let table = env.table.clone();
                let opts = GrepOptions {
                    first_match_only: first_only,
                };
                grep(&mut env.kernel, &path, &re, &opts, Some(&table)).unwrap().matches.len()
            })
        });
    }
    g.finish();
}

fn bench_fits_figures(c: &mut Criterion) {
    // Figures 14/15 run the LHEASOFT tools; reduced image.
    let mut g = c.benchmark_group("fig14_fig15_fits");
    g.sample_size(10);
    let image = sleds_fits::generate_image_bytes(512, 512, sleds_fits::Bitpix::I16, 5);
    g.bench_function("fimhisto", |b| {
        b.iter(|| {
            let mut env = Env::table3(FsKind::Ext2, 44);
            let path = env.install("img.fits", &image);
            let table = env.table.clone();
            sleds_apps::fimhisto::fimhisto(&mut env.kernel, &path, "/data/out.fits", 256, Some(&table))
                .unwrap()
                .histogram
                .len()
        })
    });
    g.bench_function("fimgbin_4x", |b| {
        b.iter(|| {
            let mut env = Env::table3(FsKind::Ext2, 45);
            let path = env.install("img.fits", &image);
            let table = env.table.clone();
            sleds_apps::fimgbin::fimgbin(&mut env.kernel, &path, "/data/out.fits", 2, Some(&table))
                .unwrap()
                .out_width
        })
    });
    g.finish();
}

fn bench_hsm_extension(c: &mut Criterion) {
    let mut g = c.benchmark_group("hsm_extension");
    g.sample_size(10);
    g.bench_function("prune_demo", |b| {
        b.iter(sleds_bench::figures::hsm_prune_demo)
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_tables,
    bench_figure_traces,
    bench_wc_figures,
    bench_grep_figures,
    bench_fits_figures,
    bench_hsm_extension
);
criterion_main!(benches);
