//! One micro-benchmark per table/figure: the same experiment kernels the
//! `figures` binary runs, at reduced scale, so `cargo bench` exercises every
//! reproduction path and tracks its real-time cost.
//!
//! The virtual-time *results* (the paper's numbers) are written by the
//! `figures` binary; these benches answer "how long does regenerating each
//! figure take us", and guard the experiment code against rot.

use sleds_apps::grep::{grep, GrepOptions};
use sleds_apps::wc::wc;
use sleds_bench::env::{Env, FsKind};
use sleds_bench::microbench::time;
use sleds_bench::workload::{text_corpus, NEEDLE};
use sleds_textmatch::Regex;

/// Small file so each iteration is quick; one warm pass then a measured
/// SLEDs pass, mirroring the figure protocol.
fn figure_kernel(fs: FsKind, use_sleds: bool) -> f64 {
    let mut env = Env::table2(fs, 42);
    let data = text_corpus(2 << 20, 0, 7);
    let path = env.install("bench.txt", &data);
    let table = use_sleds.then_some(env.table.clone());
    wc(&mut env.kernel, &path, table.as_ref()).unwrap();
    let j = env.kernel.start_job();
    wc(&mut env.kernel, &path, table.as_ref()).unwrap();
    env.kernel.finish_job(&j).elapsed_secs()
}

fn bench_tables() {
    // Tables 2/3 are dominated by lmbench calibration: benchmark it.
    time("table2_calibration", || {
        let env = Env::table2(FsKind::Ext2, 9);
        env.table.device_count()
    });
    time("table4_loc_count", || sleds_bench::figures::table4().len());
}

fn bench_figure_traces() {
    time("fig3_cache_trace", sleds_bench::figures::fig3);
    time("fig4_record_adjust", sleds_bench::figures::fig4);
}

fn bench_wc_figures() {
    // Figures 7/8 (NFS) and 9 (CD-ROM) run wc; one reduced point each.
    for fs in [FsKind::Nfs, FsKind::CdRom] {
        for use_sleds in [false, true] {
            let name = format!(
                "fig7_fig9_wc/{}_{}",
                fs.label(),
                if use_sleds { "sleds" } else { "base" }
            );
            time(&name, || figure_kernel(fs, use_sleds));
        }
    }
}

fn bench_grep_figures() {
    // Figures 10-13 run grep; reduced all-matches and first-match points.
    let re = Regex::new(&String::from_utf8_lossy(NEEDLE)).unwrap();
    for (name, first_only) in [("all_matches", false), ("first_match", true)] {
        time(&format!("fig10_fig11_grep/{name}"), || {
            let mut env = Env::table2(FsKind::Ext2, 43);
            let data = text_corpus(2 << 20, 300, 8);
            let path = env.install("bench.txt", &data);
            let table = env.table.clone();
            let opts = GrepOptions {
                first_match_only: first_only,
            };
            grep(&mut env.kernel, &path, &re, &opts, Some(&table))
                .unwrap()
                .matches
                .len()
        });
    }
}

fn bench_fits_figures() {
    // Figures 14/15 run the LHEASOFT tools; reduced image.
    let image = sleds_fits::generate_image_bytes(512, 512, sleds_fits::Bitpix::I16, 5);
    time("fig14_fig15_fits/fimhisto", || {
        let mut env = Env::table3(FsKind::Ext2, 44);
        let path = env.install("img.fits", &image);
        let table = env.table.clone();
        sleds_apps::fimhisto::fimhisto(&mut env.kernel, &path, "/data/out.fits", 256, Some(&table))
            .unwrap()
            .histogram
            .len()
    });
    time("fig14_fig15_fits/fimgbin_4x", || {
        let mut env = Env::table3(FsKind::Ext2, 45);
        let path = env.install("img.fits", &image);
        let table = env.table.clone();
        sleds_apps::fimgbin::fimgbin(&mut env.kernel, &path, "/data/out.fits", 2, Some(&table))
            .unwrap()
            .out_width
    });
}

fn bench_hsm_extension() {
    time(
        "hsm_extension/prune_demo",
        sleds_bench::figures::hsm_prune_demo,
    );
}

fn main() {
    bench_tables();
    bench_figure_traces();
    bench_wc_figures();
    bench_grep_figures();
    bench_fits_figures();
    bench_hsm_extension();
}
