//! Histogram-backed recalibration of the sleds table (`FSLEDS_RECAL`).
//!
//! The paper fills the sleds table once at boot and notes that the numbers
//! drift: a busy NFS server, a tape drive that stays mounted, a disk whose
//! workload lives in one zone all deliver something other than their
//! boot-time measurement. This module closes the loop. Given a [`Metrics`]
//! snapshot from a traced run, it rebuilds each device row from what the
//! run actually observed:
//!
//! * **latency** ← the p50 of the class's first-byte histogram (per-command
//!   service time minus the data-moving phases) — the observable the
//!   table's latency column models;
//! * **bandwidth** ← the class's effective bandwidth (bytes moved by reads
//!   over time spent moving them) — the observable the bandwidth column
//!   models.
//!
//! Classes with fewer than [`RecalPolicy::min_samples`] read commands keep
//! their old rows (a p50 of one mount-amortized tape read is noise, not
//! signal), observed values are clamped to [`RecalPolicy`] bounds, and the
//! memory row is never touched — it is not a device command and the trace
//! never times it.
//!
//! [`recalibrate_from_metrics`] is a pure function of the snapshot: no
//! clock, no randomness, no kernel state. The same snapshot always yields
//! a byte-identical table, which is what makes the determinism tests and
//! the accuracy-regression gate possible.

use sleds_fs::trace::Metrics;
use sleds_fs::{DeviceId, Fd, Kernel};
use sleds_sim_core::SimResult;

use crate::table::{SledsEntry, SledsTable};

/// Guard rails for recalibration.
#[derive(Clone, Copy, Debug)]
pub struct RecalPolicy {
    /// Minimum read commands a class must have serviced for its
    /// observations to replace the table row.
    pub min_samples: u64,
    /// Lower clamp for observed latency, seconds.
    pub min_latency: f64,
    /// Upper clamp for observed latency, seconds (a stuck tape robot
    /// should not poison the table with an hour-long first byte).
    pub max_latency: f64,
    /// Lower clamp for observed bandwidth, bytes per second.
    pub min_bandwidth: f64,
    /// Upper clamp for observed bandwidth, bytes per second.
    pub max_bandwidth: f64,
}

impl Default for RecalPolicy {
    fn default() -> Self {
        RecalPolicy {
            min_samples: 3,
            min_latency: 0.0,
            // Generous: a jukebox mount plus a full-tape locate.
            max_latency: 600.0,
            // 1 KB/s..100 GB/s spans tape-over-WAN to any plausible memory.
            min_bandwidth: 1e3,
            max_bandwidth: 1e11,
        }
    }
}

/// What one refreshed device row was rebuilt from.
#[derive(Clone, Copy, Debug)]
pub struct ClassObservation {
    /// The device whose row was refreshed.
    pub dev: DeviceId,
    /// Its class code (index into `Metrics::device`).
    pub class: u64,
    /// Read commands the observation is based on.
    pub samples: u64,
    /// New latency, seconds (clamped observed first-byte p50).
    pub latency: f64,
    /// New bandwidth, bytes/second (clamped observed effective bandwidth).
    pub bandwidth: f64,
}

/// Result of a recalibration pass.
#[derive(Clone, Debug)]
pub struct RecalOutcome {
    /// The refreshed table, generation already stamped.
    pub table: SledsTable,
    /// Devices whose rows were rebuilt, in ascending `DeviceId` order.
    pub refreshed: Vec<ClassObservation>,
    /// Devices kept on their old rows for lack of samples, ascending.
    pub skipped: Vec<DeviceId>,
}

/// Rebuilds sleds-table rows from a metrics snapshot. Pure: the outcome is
/// a function of `(table, metrics, devices, generation, policy)` alone.
///
/// `devices` maps each device to its class code (`DeviceClass::code`);
/// every listed device whose class meets the sample floor gets the class's
/// observed row (devices sharing a class share the observation — the
/// metrics are per-class, not per-spindle). Refreshed devices also lose
/// their per-zone rows: the class-wide observation supersedes the
/// boot-time zone survey. The memory row and unlisted devices keep their
/// old entries.
pub fn recalibrate_from_metrics(
    table: &SledsTable,
    metrics: &Metrics,
    devices: &[(DeviceId, u64)],
    generation: u64,
    policy: &RecalPolicy,
) -> RecalOutcome {
    let mut out = RecalOutcome {
        table: table.clone(),
        refreshed: Vec::new(),
        skipped: Vec::new(),
    };
    for &(dev, class) in devices {
        let Some(cm) = metrics.device.get(class as usize) else {
            out.skipped.push(dev);
            continue;
        };
        let samples = cm.first_byte.count();
        let bw = cm.effective_bandwidth();
        if samples < policy.min_samples || bw.is_none() {
            out.skipped.push(dev);
            continue;
        }
        let latency =
            (cm.first_byte.p50() as f64 / 1e9).clamp(policy.min_latency, policy.max_latency);
        let bandwidth = bw
            .unwrap_or(policy.min_bandwidth)
            .clamp(policy.min_bandwidth, policy.max_bandwidth);
        out.table
            .fill_device(dev, SledsEntry::new(latency, bandwidth));
        out.table.clear_device_zones(dev);
        out.refreshed.push(ClassObservation {
            dev,
            class,
            samples,
            latency,
            bandwidth,
        });
    }
    out.table.set_generation(generation);
    out
}

/// The user-space half of `FSLEDS_RECAL`: issues the ioctl on `fd` (which
/// bumps the kernel's sleds epoch, invalidating every memoized SLED vector
/// and lease, and fences the accuracy audit), then rebuilds the table from
/// the returned snapshot for every attached device. On an untraced kernel
/// the snapshot is empty, so every device is skipped and only the
/// generation stamp changes — the epoch bump and virtual-time cost are
/// identical either way, keeping traced and untraced runs byte-identical.
pub fn recalibrate(
    kernel: &mut Kernel,
    table: &SledsTable,
    fd: Fd,
    policy: &RecalPolicy,
) -> SimResult<RecalOutcome> {
    let metrics = kernel.fsleds_recal(fd)?;
    let devices: Vec<(DeviceId, u64)> = (0..kernel.device_count())
        .filter_map(|i| {
            let dev = DeviceId(i);
            kernel.device_class(dev).map(|c| (dev, c.code()))
        })
        .collect();
    Ok(recalibrate_from_metrics(
        table,
        &metrics,
        &devices,
        kernel.sleds_epoch(),
        policy,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A snapshot with `n` identical disk reads: 18 ms first byte, then
    /// 1 MB moved in 100 ms (10 MB/s).
    fn disk_metrics(n: u64) -> Metrics {
        let mut m = Metrics::default();
        for _ in 0..n {
            m.note_device(0, 1, false, 118_000_000, 1_000_000, 100_000_000, 0);
        }
        m
    }

    fn base_table() -> SledsTable {
        let mut t = SledsTable::new();
        t.fill_memory(SledsEntry::new(175e-9, 48e6));
        t.fill_device(DeviceId(0), SledsEntry::new(0.5, 1e6));
        t
    }

    #[test]
    fn refreshes_from_observed_p50_and_bandwidth() {
        let out = recalibrate_from_metrics(
            &base_table(),
            &disk_metrics(4),
            &[(DeviceId(0), 1)],
            1,
            &RecalPolicy::default(),
        );
        assert_eq!(out.refreshed.len(), 1);
        assert!(out.skipped.is_empty());
        let e = out.table.device(DeviceId(0)).expect("row kept");
        // first byte = 118ms - 100ms transfer = 18ms exactly (one value
        // per bucket, so the bucket mean is exact).
        assert!((e.latency - 0.018).abs() < 1e-12);
        assert!((e.bandwidth - 10e6).abs() < 1.0);
        assert_eq!(out.table.generation(), 1);
        // Memory row untouched.
        assert_eq!(out.table.memory().expect("memory row").bandwidth, 48e6);
    }

    #[test]
    fn too_few_samples_keeps_old_row() {
        let out = recalibrate_from_metrics(
            &base_table(),
            &disk_metrics(2),
            &[(DeviceId(0), 1)],
            1,
            &RecalPolicy::default(),
        );
        assert!(out.refreshed.is_empty());
        assert_eq!(out.skipped, vec![DeviceId(0)]);
        let e = out.table.device(DeviceId(0)).expect("row kept");
        assert_eq!(e.latency.to_bits(), 0.5f64.to_bits());
        // The generation still advances: the table was re-validated even
        // if nothing changed.
        assert_eq!(out.table.generation(), 1);
    }

    #[test]
    fn observations_clamp_to_policy_bounds() {
        let mut m = Metrics::default();
        for _ in 0..3 {
            // A pathological command: 1000 s to first byte, 1 byte moved
            // over 10 s (0.1 B/s).
            m.note_device(0, 4, false, 1_010_000_000_000, 1, 10_000_000_000, 0);
        }
        let out = recalibrate_from_metrics(
            &base_table(),
            &m,
            &[(DeviceId(0), 4)],
            1,
            &RecalPolicy::default(),
        );
        let e = out.table.device(DeviceId(0)).expect("row kept");
        assert!(e.latency <= 600.0);
        assert!(e.bandwidth >= 1e3);
    }

    #[test]
    fn refreshed_devices_lose_zone_rows() {
        let mut t = base_table();
        t.fill_device_zones(DeviceId(0), vec![(0, SledsEntry::new(0.018, 11e6))]);
        let out = recalibrate_from_metrics(
            &t,
            &disk_metrics(3),
            &[(DeviceId(0), 1)],
            1,
            &RecalPolicy::default(),
        );
        assert!(!out.table.has_zones(DeviceId(0)));
    }

    #[test]
    fn same_snapshot_yields_byte_identical_tables() {
        let m = disk_metrics(5);
        let t = base_table();
        let devs = [(DeviceId(0), 1)];
        let p = RecalPolicy::default();
        let a = recalibrate_from_metrics(&t, &m, &devs, 2, &p);
        let b = recalibrate_from_metrics(&t, &m, &devs, 2, &p);
        let ea = a.table.device(DeviceId(0)).expect("row");
        let eb = b.table.device(DeviceId(0)).expect("row");
        assert_eq!(ea.latency.to_bits(), eb.latency.to_bits());
        assert_eq!(ea.bandwidth.to_bits(), eb.bandwidth.to_bits());
        assert_eq!(a.table.generation(), b.table.generation());
    }
}
