//! Generation-memoized SLED vectors.
//!
//! A SLED vector is a pure function of the file's layout, size, and cache
//! residency — all three folded into the kernel's per-file *SLED
//! generation* stamp ([`sleds_fs::Kernel::sled_generation`]). [`SledCache`]
//! exploits that: it remembers the last vector built per open fd together
//! with the stamp it was built under, and answers repeated `FSLEDS_GET`
//! (and `sleds_total_delivery_time`) calls with one O(1) stamp syscall
//! instead of a page walk for as long as the cache hasn't moved. Any
//! residency change, layout change, or size change moves the stamp and
//! forces a fresh walk.
//!
//! Two deliberate bypasses:
//!
//! * dynamic device self-reports (`trust_device_reports`) — a server's
//!   cache state lives outside this kernel and is not covered by the
//!   stamp, so those vectors are rebuilt every time;
//! * the cache is keyed by fd, so pair one `SledCache` with one kernel and
//!   one table. If the table is refilled mid-run, call
//!   [`SledCache::invalidate_all`].

use std::collections::BTreeMap;

use sleds_fs::{Fd, Kernel};
use sleds_sim_core::SimResult;

use crate::estimate::{estimate_seconds, AttackPlan};
use crate::get::fsleds_get;
use crate::table::SledsTable;
use crate::Sled;

/// Memoizes the last SLED vector per open fd, validated by the kernel's
/// per-file generation stamp.
#[derive(Debug, Default)]
pub struct SledCache {
    entries: BTreeMap<u64, (u64, Vec<Sled>)>,
    hits: u64,
    misses: u64,
}

impl SledCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        SledCache::default()
    }

    /// `FSLEDS_GET` through the cache: returns the memoized vector when
    /// the file's generation stamp is unchanged (one syscall, no page
    /// walk), otherwise performs the real walk and memoizes the result.
    pub fn get(&mut self, kernel: &mut Kernel, table: &SledsTable, fd: Fd) -> SimResult<Vec<Sled>> {
        if table.trust_device_reports() {
            // Dynamic self-reports are not covered by the stamp.
            self.misses += 1;
            return fsleds_get(kernel, fd, table);
        }
        let generation = kernel.sled_generation(fd)?;
        if let Some((stamp, sleds)) = self.entries.get(&fd.0) {
            if *stamp == generation {
                self.hits += 1;
                return Ok(sleds.clone());
            }
        }
        self.misses += 1;
        let sleds = fsleds_get(kernel, fd, table)?;
        self.entries.insert(fd.0, (generation, sleds.clone()));
        Ok(sleds)
    }

    /// `sleds_total_delivery_time` through the cache.
    pub fn total_delivery_time(
        &mut self,
        kernel: &mut Kernel,
        table: &SledsTable,
        fd: Fd,
        plan: AttackPlan,
    ) -> SimResult<f64> {
        let sleds = self.get(kernel, table, fd)?;
        Ok(estimate_seconds(&sleds, plan))
    }

    /// Forgets the memoized vector for `fd` (call on `close`, since fd
    /// numbers are reused).
    pub fn invalidate(&mut self, fd: Fd) {
        self.entries.remove(&fd.0);
    }

    /// Forgets everything (call after refilling the table).
    pub fn invalidate_all(&mut self) {
        self.entries.clear();
    }

    /// Stamp-validated answers served without a page walk.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Full walks performed (including `trust_device_reports` bypasses).
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::SledsEntry;
    use sleds_devices::DiskDevice;
    use sleds_fs::{OpenFlags, Whence};
    use sleds_sim_core::PAGE_SIZE;

    fn setup() -> (Kernel, SledsTable) {
        let mut k = Kernel::table2();
        k.mkdir("/d").unwrap();
        let m = k.mount_disk("/d", DiskDevice::table2_disk("hda")).unwrap();
        let dev = k.device_of_mount(m).unwrap();
        let mut t = SledsTable::new();
        t.fill_memory(SledsEntry::new(175e-9, 48e6));
        t.fill_device(dev, SledsEntry::new(0.018, 9e6));
        (k, t)
    }

    #[test]
    fn repeated_get_hits_without_a_walk() {
        let (mut k, t) = setup();
        k.install_file("/d/f", &vec![0u8; 32 * PAGE_SIZE as usize])
            .unwrap();
        let fd = k.open("/d/f", OpenFlags::RDONLY).unwrap();
        let mut c = SledCache::new();
        let first = c.get(&mut k, &t, fd).unwrap();
        let cpu_after_first = k.usage().cpu;
        let again = c.get(&mut k, &t, fd).unwrap();
        assert_eq!(first, again);
        assert_eq!((c.hits(), c.misses()), (1, 1));
        // The hit charged one syscall (the stamp read), nothing more.
        let hit_cost = k.usage().cpu - cpu_after_first;
        assert_eq!(hit_cost, k.config().syscall_cpu);
    }

    #[test]
    fn residency_change_invalidates() {
        let (mut k, t) = setup();
        k.install_file("/d/f", &vec![0u8; 32 * PAGE_SIZE as usize])
            .unwrap();
        let fd = k.open("/d/f", OpenFlags::RDONLY).unwrap();
        let mut c = SledCache::new();
        let cold = c.get(&mut k, &t, fd).unwrap();
        k.lseek(fd, 0, Whence::Set).unwrap();
        k.read(fd, 4 * PAGE_SIZE as usize).unwrap();
        let warm = c.get(&mut k, &t, fd).unwrap();
        assert_ne!(cold, warm, "stale vector must not be served");
        assert_eq!(warm, crate::get::fsleds_get(&mut k, fd, &t).unwrap());
        assert_eq!((c.hits(), c.misses()), (0, 2));
    }

    #[test]
    fn size_change_invalidates() {
        let (mut k, t) = setup();
        k.install_file("/d/f", &vec![0u8; PAGE_SIZE as usize / 2])
            .unwrap();
        let fd = k.open("/d/f", OpenFlags::RDWR).unwrap();
        let mut c = SledCache::new();
        let before = c.get(&mut k, &t, fd).unwrap();
        // Grow within the same page: no new mapping, no residency change,
        // but SLED lengths change — the stamp must still move.
        k.lseek(fd, 0, Whence::End).unwrap();
        k.write(fd, &[9u8; 100]).unwrap();
        let after = c.get(&mut k, &t, fd).unwrap();
        assert_ne!(before, after);
        let total: u64 = after.iter().map(|s| s.length).sum();
        assert_eq!(total, PAGE_SIZE / 2 + 100);
    }

    #[test]
    fn trust_device_reports_bypasses_memoization() {
        let mut k = Kernel::table2();
        k.mkdir("/lan").unwrap();
        let srv = sleds_devices::NfsServerDevice::lan_mount("lan0");
        let m = k.mount_device("/lan", Box::new(srv), false).unwrap();
        let dev = k.device_of_mount(m).unwrap();
        let mut t = SledsTable::new();
        t.fill_memory(SledsEntry::new(175e-9, 48e6));
        t.fill_device(dev, SledsEntry::new(0.02, 5e6));
        t.set_trust_device_reports(true);
        k.install_file("/lan/f", &vec![0u8; 4 * PAGE_SIZE as usize])
            .unwrap();
        let fd = k.open("/lan/f", OpenFlags::RDONLY).unwrap();
        let mut c = SledCache::new();
        c.get(&mut k, &t, fd).unwrap();
        c.get(&mut k, &t, fd).unwrap();
        assert_eq!(c.hits(), 0, "dynamic reports must never be memoized");
        assert_eq!(c.misses(), 2);
    }

    #[test]
    fn total_delivery_time_matches_uncached() {
        let (mut k, t) = setup();
        k.install_file("/d/f", &vec![0u8; 16 * PAGE_SIZE as usize])
            .unwrap();
        let fd = k.open("/d/f", OpenFlags::RDONLY).unwrap();
        let mut c = SledCache::new();
        let direct =
            crate::estimate::total_delivery_time(&mut k, &t, fd, AttackPlan::Linear).unwrap();
        let cached = c
            .total_delivery_time(&mut k, &t, fd, AttackPlan::Linear)
            .unwrap();
        let cached_again = c
            .total_delivery_time(&mut k, &t, fd, AttackPlan::Linear)
            .unwrap();
        assert_eq!(direct, cached);
        assert_eq!(cached, cached_again);
        assert_eq!(c.hits(), 1);
    }
}
