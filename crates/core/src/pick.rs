//! The SLEDs pick library: advice on what to read next.
//!
//! Mirrors the paper's three-call API (Table 1): `sleds_pick_init` retrieves
//! the SLEDs for an open file and plans an access order,
//! `sleds_pick_next_read` repeatedly returns `(offset, size)` advice, and
//! `sleds_pick_finish` ends the session. The plan visits every byte of the
//! file exactly once, lowest latency first, lowest offset among equals —
//! so in the cold-cache disk case it degenerates to a linear scan, exactly
//! as the paper notes.
//!
//! In record-oriented mode (an argument to `sleds_pick_init` names the
//! separator byte), the edges of low-latency SLEDs are pulled in to record
//! boundaries and the cut-off fragments pushed to the neighbouring
//! higher-latency SLEDs (the paper's Figure 4), so a consumer never drags a
//! cheap read across into expensive storage just to finish a record. The
//! boundary probing performs real (cheap, cached) reads through the kernel,
//! as the paper's library does.

use std::collections::VecDeque;

use sleds_fs::{Fd, Kernel, RingOp, RingPayload, SubmissionRing};
use sleds_sim_core::{SimDuration, SimResult, PAGE_SIZE};

use crate::cache::SledCache;
use crate::get::fsleds_get;
use crate::table::SledsTable;
use crate::Sled;

/// Per-byte CPU cost of scanning for record separators in the library.
const SCAN_NS_PER_BYTE: u64 = 3;

/// Per-chunk CPU cost of planning (sorting the pick order).
const PLAN_NS_PER_CHUNK: u64 = 120;

/// What a pick plan does with [unavailable](Sled::unavailable) SLEDs —
/// extents whose device is inside an offline fault window at plan time.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum UnavailablePolicy {
    /// Plan them last (their infinite latency already sorts them behind
    /// every reachable chunk), hoping the device recovers by the time the
    /// consumer gets there.
    #[default]
    Defer,
    /// Prune them from the plan entirely — the paper's behavior for
    /// consumers that would rather deliver partial data now than block on
    /// an offline device.
    Skip,
}

/// Configuration for [`PickSession::init`].
#[derive(Clone, Copy, Debug)]
pub struct PickConfig {
    /// Preferred chunk size; advice never exceeds it.
    pub preferred_size: usize,
    /// Record separator for record-oriented mode (e.g. `Some(b'\n')`).
    pub record_separator: Option<u8>,
    /// Skip-or-defer handling of extents on offline devices.
    pub unavailable: UnavailablePolicy,
}

impl PickConfig {
    /// Byte-oriented picking with the given buffer size.
    pub fn bytes(preferred_size: usize) -> Self {
        PickConfig {
            preferred_size,
            record_separator: None,
            unavailable: UnavailablePolicy::Defer,
        }
    }

    /// Record-oriented picking (the paper's example separator is linefeed).
    pub fn records(preferred_size: usize, separator: u8) -> Self {
        PickConfig {
            preferred_size,
            record_separator: Some(separator),
            unavailable: UnavailablePolicy::Defer,
        }
    }

    /// Prunes unavailable extents from the plan instead of deferring them.
    pub fn skip_unavailable(mut self) -> Self {
        self.unavailable = UnavailablePolicy::Skip;
        self
    }
}

/// An active pick session (`sleds_pick_init` .. `sleds_pick_finish`).
#[derive(Debug)]
pub struct PickSession {
    plan: VecDeque<(u64, usize)>,
    planned_chunks: usize,
    sleds: Vec<Sled>,
}

impl PickSession {
    /// `sleds_pick_init`: retrieves SLEDs for `fd` and plans the access
    /// order. The SLEDs are retrieved once, here — the paper notes that
    /// refreshing them mid-run is possible future work (see
    /// [`PickSession::refresh`]).
    pub fn init(
        kernel: &mut Kernel,
        table: &SledsTable,
        fd: Fd,
        cfg: PickConfig,
    ) -> SimResult<PickSession> {
        let sleds = fsleds_get(kernel, fd, table)?;
        PickSession::plan_from(kernel, fd, cfg, sleds, table.generation())
    }

    /// [`PickSession::init`] through a [`SledCache`]: when the file's SLED
    /// generation stamp is unchanged since the cache last saw it, the
    /// vector is served memoized — one O(1) syscall instead of a page walk.
    pub fn init_cached(
        kernel: &mut Kernel,
        table: &SledsTable,
        fd: Fd,
        cfg: PickConfig,
        cache: &mut SledCache,
    ) -> SimResult<PickSession> {
        let sleds = cache.get(kernel, table, fd)?;
        PickSession::plan_from(kernel, fd, cfg, sleds, table.generation())
    }

    /// [`PickSession::init`] over the submission ring: the SLED vector is
    /// built in-kernel ([`sleds_fs::RingOp::FsledsGet`]) from the table's
    /// flattened rows, so the retrieval costs one ring op instead of the
    /// sequential `fstat` + `FSLEDS_GET` pair of crossings. Planning —
    /// chunking, record adjustment, the prediction mark — is identical to
    /// the sequential path, and so is the plan.
    pub fn init_ring(
        kernel: &mut Kernel,
        ring: &mut SubmissionRing,
        table: &SledsTable,
        fd: Fd,
        cfg: PickConfig,
    ) -> SimResult<PickSession> {
        let pricing = crate::program::pricing_from(table);
        ring.push(fd.0, RingOp::FsledsGet { fd, pricing })?;
        kernel.ring_enter(ring)?;
        let mut sleds: Vec<Sled> = Vec::new();
        for c in kernel.ring_reap(ring) {
            if c.user_data == fd.0 {
                if let RingPayload::Sleds(ks) = c.result? {
                    sleds = crate::program::sleds_from_prog(&ks);
                }
            }
        }
        PickSession::plan_from(kernel, fd, cfg, sleds, table.generation())
    }

    fn plan_from(
        kernel: &mut Kernel,
        fd: Fd,
        cfg: PickConfig,
        mut sleds: Vec<Sled>,
        table_generation: u64,
    ) -> SimResult<PickSession> {
        if let Some(sep) = cfg.record_separator {
            adjust_to_records(kernel, fd, &mut sleds, sep)?;
        }
        let skip = cfg.unavailable == UnavailablePolicy::Skip;
        let plan = plan_chunks(&sleds, cfg.preferred_size.max(1), skip);
        // Planning cost: the sort is the dominant term.
        kernel.charge_cpu(SimDuration::from_nanos(
            PLAN_NS_PER_CHUNK * plan.len() as u64,
        ));
        // A pick plan drains each level in one streaming pass, which is
        // exactly the `SLEDS_BEST` estimate; record it for the accuracy
        // audit when tracing is on. A skipping plan is priced over the
        // chunks it will actually deliver; a deferring plan over an
        // offline extent has an infinite estimate, which is not a
        // prediction worth auditing.
        if kernel.tracing_enabled() {
            let est = if skip {
                let priced: Vec<Sled> =
                    sleds.iter().filter(|s| !s.unavailable()).copied().collect();
                crate::estimate::estimate_seconds(&priced, crate::estimate::AttackPlan::Best)
            } else {
                crate::estimate::estimate_seconds(&sleds, crate::estimate::AttackPlan::Best)
            };
            if est.is_finite() {
                kernel.trace_predict(fd, SimDuration::from_secs_f64(est), table_generation)?;
            }
        }
        Ok(PickSession {
            planned_chunks: plan.len(),
            plan: plan.into(),
            sleds,
        })
    }

    /// `sleds_pick_next_read`: the next `(offset, size)` the application
    /// should read, or `None` when every chunk has been handed out.
    pub fn next_read(&mut self) -> Option<(u64, usize)> {
        self.plan.pop_front()
    }

    /// Chunks not yet handed out.
    pub fn remaining(&self) -> usize {
        self.plan.len()
    }

    /// Total chunks planned at init.
    pub fn planned_chunks(&self) -> usize {
        self.planned_chunks
    }

    /// The (possibly record-adjusted) SLEDs the plan was built from.
    pub fn sleds(&self) -> &[Sled] {
        &self.sleds
    }

    /// Re-retrieves SLEDs and replans the not-yet-returned portion of the
    /// file. This is the "refreshing the state of those SLEDs occasionally"
    /// extension the paper sketches; the ablation benches measure it.
    pub fn refresh(
        &mut self,
        kernel: &mut Kernel,
        table: &SledsTable,
        fd: Fd,
        _cfg: PickConfig,
    ) -> SimResult<()> {
        let fresh = fsleds_get(kernel, fd, table)?;
        self.replan(kernel, &fresh)
    }

    /// [`PickSession::refresh`] through a [`SledCache`]: the periodic
    /// re-retrieval the paper sketches becomes O(1) whenever the cache
    /// hasn't moved since the last call.
    pub fn refresh_cached(
        &mut self,
        kernel: &mut Kernel,
        table: &SledsTable,
        fd: Fd,
        cache: &mut SledCache,
    ) -> SimResult<()> {
        let fresh = cache.get(kernel, table, fd)?;
        self.replan(kernel, &fresh)
    }

    fn replan(&mut self, kernel: &mut Kernel, fresh: &[Sled]) -> SimResult<()> {
        // Bytes already handed out stay handed out; replan the rest.
        let pending: Vec<(u64, usize)> = self.plan.drain(..).collect();
        let mut chunks: Vec<(u64, usize, f64)> = Vec::new();
        for (off, len) in pending {
            // Find the latency this byte range has *now*.
            let lat = fresh
                .iter()
                .find(|s| s.offset <= off && off < s.end())
                .map(|s| s.latency)
                .unwrap_or(f64::MAX);
            chunks.push((off, len, lat));
        }
        chunks.sort_by(|a, b| a.2.total_cmp(&b.2).then(a.0.cmp(&b.0)));
        kernel.charge_cpu(SimDuration::from_nanos(
            PLAN_NS_PER_CHUNK * chunks.len() as u64,
        ));
        self.plan = chunks.into_iter().map(|(o, l, _)| (o, l)).collect();
        Ok(())
    }

    /// `sleds_pick_finish`: ends the session.
    pub fn finish(self) {}
}

/// Splits SLEDs into preferred-size chunks and orders them
/// lowest-latency-first, lowest-offset among equals. Unavailable SLEDs
/// are pruned when `skip_unavailable` is set; otherwise their infinite
/// latency sorts them behind every reachable chunk (defer).
fn plan_chunks(sleds: &[Sled], preferred: usize, skip_unavailable: bool) -> Vec<(u64, usize)> {
    let mut chunks: Vec<(u64, usize, f64)> = Vec::new();
    for s in sleds {
        if skip_unavailable && s.unavailable() {
            continue;
        }
        let mut off = s.offset;
        while off < s.end() {
            let len = (s.end() - off).min(preferred as u64) as usize;
            chunks.push((off, len, s.latency));
            off += len as u64;
        }
    }
    // Stable sort: equal latencies keep offset order (chunks were generated
    // in ascending offset within each sled, but sleds of equal latency may
    // interleave, so sort by offset explicitly).
    chunks.sort_by(|a, b| a.2.total_cmp(&b.2).then(a.0.cmp(&b.0)));
    chunks.into_iter().map(|(o, l, _)| (o, l)).collect()
}

/// Figure 4: pulls the edges of low-latency SLEDs in to record boundaries,
/// pushing the leading/trailing record fragments out to the neighbouring
/// higher-latency SLEDs.
fn adjust_to_records(kernel: &mut Kernel, fd: Fd, sleds: &mut Vec<Sled>, sep: u8) -> SimResult<()> {
    if sleds.len() < 2 {
        return Ok(());
    }
    // Work on (start, end) pairs so neighbour adjustments compose.
    let mut bounds: Vec<(u64, u64)> = sleds.iter().map(|s| (s.offset, s.end())).collect();
    for i in 0..sleds.len() {
        let (start, end) = bounds[i];
        if start >= end {
            continue;
        }
        // Leading edge: previous SLED is slower, so the record straddling
        // our start belongs to it.
        if i > 0 && sleds[i - 1].latency > sleds[i].latency {
            match find_forward(kernel, fd, start, end, sep)? {
                Some(pos) => {
                    let new_start = pos + 1; // first byte after the separator
                    bounds[i - 1].1 = new_start;
                    bounds[i].0 = new_start.min(bounds[i].1);
                }
                None => {
                    // No boundary inside: the whole SLED is one record
                    // fragment; give it all to the slower neighbour.
                    bounds[i - 1].1 = end;
                    bounds[i].0 = end;
                }
            }
        }
        // Trailing edge: next SLED is slower.
        let (start, end) = bounds[i];
        if start < end && i + 1 < sleds.len() && sleds[i + 1].latency > sleds[i].latency {
            match find_backward(kernel, fd, start, end, sep)? {
                Some(pos) if pos + 1 > start => {
                    let new_end = pos + 1;
                    bounds[i + 1].0 = new_end;
                    bounds[i].1 = new_end;
                }
                _ => {
                    bounds[i + 1].0 = start;
                    bounds[i].1 = start;
                }
            }
        }
    }
    for (s, (start, end)) in sleds.iter_mut().zip(&bounds) {
        s.offset = *start;
        s.length = end.saturating_sub(*start);
    }
    sleds.retain(|s| s.length > 0);
    Ok(())
}

/// Finds the first `sep` in `[start, end)`, reading page-sized probes.
fn find_forward(
    kernel: &mut Kernel,
    fd: Fd,
    start: u64,
    end: u64,
    sep: u8,
) -> SimResult<Option<u64>> {
    let mut pos = start;
    while pos < end {
        let len = (end - pos).min(PAGE_SIZE) as usize;
        let buf = kernel.pread(fd, pos, len)?;
        if buf.is_empty() {
            break;
        }
        kernel.charge_cpu(SimDuration::from_nanos(SCAN_NS_PER_BYTE * buf.len() as u64));
        if let Some(i) = buf.iter().position(|&b| b == sep) {
            return Ok(Some(pos + i as u64));
        }
        pos += buf.len() as u64;
    }
    Ok(None)
}

/// Finds the last `sep` in `[start, end)`, reading page-sized probes
/// backwards from the end.
fn find_backward(
    kernel: &mut Kernel,
    fd: Fd,
    start: u64,
    end: u64,
    sep: u8,
) -> SimResult<Option<u64>> {
    let mut hi = end;
    while hi > start {
        let lo = hi.saturating_sub(PAGE_SIZE).max(start);
        let buf = kernel.pread(fd, lo, (hi - lo) as usize)?;
        kernel.charge_cpu(SimDuration::from_nanos(SCAN_NS_PER_BYTE * buf.len() as u64));
        if let Some(i) = buf.iter().rposition(|&b| b == sep) {
            return Ok(Some(lo + i as u64));
        }
        hi = lo;
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::{SledsEntry, SledsTable};
    use sleds_devices::DiskDevice;
    use sleds_fs::{OpenFlags, Whence};

    fn setup() -> (Kernel, SledsTable) {
        let mut k = Kernel::table2();
        k.mkdir("/data").unwrap();
        let m = k
            .mount_disk("/data", DiskDevice::table2_disk("hda"))
            .unwrap();
        let dev = k.device_of_mount(m).unwrap();
        let mut t = SledsTable::new();
        t.fill_memory(SledsEntry::new(175e-9, 48e6));
        t.fill_device(dev, SledsEntry::new(0.018, 9e6));
        (k, t)
    }

    fn warm_range(k: &mut Kernel, fd: Fd, pages: std::ops::Range<u64>) {
        k.lseek(fd, (pages.start * PAGE_SIZE) as i64, Whence::Set)
            .unwrap();
        k.read(fd, ((pages.end - pages.start) * PAGE_SIZE) as usize)
            .unwrap();
    }

    #[test]
    fn cached_chunks_come_first() {
        let (mut k, t) = setup();
        let data = vec![0u8; 10 * PAGE_SIZE as usize];
        k.install_file("/data/f", &data).unwrap();
        let fd = k.open("/data/f", OpenFlags::RDONLY).unwrap();
        warm_range(&mut k, fd, 6..10);
        let mut p =
            PickSession::init(&mut k, &t, fd, PickConfig::bytes(PAGE_SIZE as usize)).unwrap();
        // First four picks: the cached tail, in offset order.
        for expect in [6u64, 7, 8, 9] {
            let (off, len) = p.next_read().unwrap();
            assert_eq!(off, expect * PAGE_SIZE);
            assert_eq!(len, PAGE_SIZE as usize);
        }
        // Then the cold head, linearly.
        for expect in [0u64, 1, 2, 3, 4, 5] {
            let (off, _) = p.next_read().unwrap();
            assert_eq!(off, expect * PAGE_SIZE);
        }
        assert!(p.next_read().is_none());
    }

    #[test]
    fn cold_cache_degenerates_to_linear() {
        let (mut k, t) = setup();
        let data = vec![0u8; 8 * PAGE_SIZE as usize];
        k.install_file("/data/f", &data).unwrap();
        let fd = k.open("/data/f", OpenFlags::RDONLY).unwrap();
        let mut p =
            PickSession::init(&mut k, &t, fd, PickConfig::bytes(2 * PAGE_SIZE as usize)).unwrap();
        let mut expected = 0u64;
        while let Some((off, len)) = p.next_read() {
            assert_eq!(off, expected);
            expected += len as u64;
        }
        assert_eq!(expected, data.len() as u64);
    }

    #[test]
    fn every_byte_exactly_once() {
        let (mut k, t) = setup();
        let n = 13 * PAGE_SIZE as usize + 777;
        k.install_file("/data/f", &vec![1u8; n]).unwrap();
        let fd = k.open("/data/f", OpenFlags::RDONLY).unwrap();
        warm_range(&mut k, fd, 3..7);
        let mut p = PickSession::init(&mut k, &t, fd, PickConfig::bytes(10_000)).unwrap();
        let mut covered = vec![0u32; n];
        while let Some((off, len)) = p.next_read() {
            for b in &mut covered[off as usize..off as usize + len] {
                *b += 1;
            }
        }
        assert!(covered.iter().all(|&c| c == 1), "every byte exactly once");
    }

    #[test]
    fn chunks_respect_preferred_size() {
        let (mut k, t) = setup();
        k.install_file("/data/f", &vec![0u8; 5 * PAGE_SIZE as usize])
            .unwrap();
        let fd = k.open("/data/f", OpenFlags::RDONLY).unwrap();
        let mut p = PickSession::init(&mut k, &t, fd, PickConfig::bytes(3000)).unwrap();
        while let Some((_, len)) = p.next_read() {
            assert!(len <= 3000);
        }
    }

    #[test]
    fn record_mode_aligns_sled_edges() {
        let (mut k, t) = setup();
        // 4 pages of 8-byte records: "AAAAAAA\n" repeated.
        let rec = b"AAAAAAA\n";
        let n = 4 * PAGE_SIZE as usize;
        let data: Vec<u8> = rec.iter().copied().cycle().take(n).collect();
        k.install_file("/data/f", &data).unwrap();
        let fd = k.open("/data/f", OpenFlags::RDONLY).unwrap();
        // Cache page 1 only. Page size 4096 = 512 records exactly, so the
        // natural boundary is already aligned; shift by installing records
        // of length 7 instead to make edges ragged.
        k.unlink("/data/f").unwrap();
        let rec7 = b"BBBBBB\n";
        let data: Vec<u8> = rec7.iter().copied().cycle().take(n).collect();
        k.install_file("/data/f", &data).unwrap();
        let fd2 = k.open("/data/f", OpenFlags::RDONLY).unwrap();
        let _ = fd;
        warm_range(&mut k, fd2, 1..2);
        let p = PickSession::init(
            &mut k,
            &t,
            fd2,
            PickConfig::records(PAGE_SIZE as usize, b'\n'),
        )
        .unwrap();
        let sleds = p.sleds();
        assert_eq!(sleds.len(), 3);
        let low = &sleds[1];
        // The low SLED must start right after a separator and end right
        // after one.
        assert_eq!(data[low.offset as usize - 1], b'\n');
        assert_eq!(data[low.end() as usize - 1], b'\n');
        // And its page-boundary edges moved inward.
        assert!(low.offset >= PAGE_SIZE);
        assert!(low.end() <= 2 * PAGE_SIZE);
        // Coverage still exact.
        let total: u64 = sleds.iter().map(|s| s.length).sum();
        assert_eq!(total, n as u64);
        assert_eq!(sleds[0].end(), sleds[1].offset);
        assert_eq!(sleds[1].end(), sleds[2].offset);
    }

    #[test]
    fn record_mode_without_separator_merges_sled() {
        let (mut k, t) = setup();
        // No separators at all: the cached SLED collapses into neighbours.
        let n = 3 * PAGE_SIZE as usize;
        k.install_file("/data/f", &vec![b'x'; n]).unwrap();
        let fd = k.open("/data/f", OpenFlags::RDONLY).unwrap();
        warm_range(&mut k, fd, 1..2);
        let p = PickSession::init(
            &mut k,
            &t,
            fd,
            PickConfig::records(PAGE_SIZE as usize, b'\n'),
        )
        .unwrap();
        // All bytes still covered exactly once.
        let total: u64 = p.sleds().iter().map(|s| s.length).sum();
        assert_eq!(total, n as u64);
        // And the plan is purely linear (no cheap region survived).
        let mut q = p;
        let mut expected = 0u64;
        while let Some((off, len)) = q.next_read() {
            assert_eq!(off, expected);
            expected += len as u64;
        }
    }

    #[test]
    fn refresh_reorders_pending_chunks() {
        let (mut k, t) = setup();
        let data = vec![0u8; 12 * PAGE_SIZE as usize];
        k.install_file("/data/f", &data).unwrap();
        let fd = k.open("/data/f", OpenFlags::RDONLY).unwrap();
        let mut p =
            PickSession::init(&mut k, &t, fd, PickConfig::bytes(PAGE_SIZE as usize)).unwrap();
        // Everything cold: plan is linear. Consume two chunks.
        assert_eq!(p.next_read().unwrap().0, 0);
        assert_eq!(p.next_read().unwrap().0, PAGE_SIZE);
        // Someone else warms the tail.
        warm_range(&mut k, fd, 8..12);
        p.refresh(&mut k, &t, fd, PickConfig::bytes(PAGE_SIZE as usize))
            .unwrap();
        // Now the cached tail jumps the queue.
        assert_eq!(p.next_read().unwrap().0, 8 * PAGE_SIZE);
    }

    #[test]
    fn cached_init_and_refresh_match_uncached_and_hit() {
        let (mut k, t) = setup();
        let data = vec![0u8; 10 * PAGE_SIZE as usize];
        k.install_file("/data/f", &data).unwrap();
        let fd = k.open("/data/f", OpenFlags::RDONLY).unwrap();
        warm_range(&mut k, fd, 6..10);
        let cfg = PickConfig::bytes(PAGE_SIZE as usize);
        let mut cache = crate::cache::SledCache::new();

        let mut plain = PickSession::init(&mut k, &t, fd, cfg).unwrap();
        let mut cached = PickSession::init_cached(&mut k, &t, fd, cfg, &mut cache).unwrap();
        assert_eq!(plain.sleds(), cached.sleds());
        loop {
            let (a, b) = (plain.next_read(), cached.next_read());
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }

        // Nothing moved between init_cached and this refresh: served
        // memoized.
        let mut p = PickSession::init_cached(&mut k, &t, fd, cfg, &mut cache).unwrap();
        p.refresh_cached(&mut k, &t, fd, &mut cache).unwrap();
        assert_eq!(cache.hits(), 2);
        assert_eq!(cache.misses(), 1);
    }

    #[test]
    fn defer_plans_offline_extents_last_and_skip_prunes_them() {
        use sleds_devices::FaultPlan;
        use sleds_sim_core::SimTime;
        let (mut k, t) = setup();
        let data = vec![0u8; 8 * PAGE_SIZE as usize];
        k.install_file("/data/f", &data).unwrap();
        let fd = k.open("/data/f", OpenFlags::RDONLY).unwrap();
        // Pages 0..4 cached, 4..8 still on a disk that then goes offline.
        warm_range(&mut k, fd, 0..4);
        let plan = FaultPlan::new().offline(
            "hda",
            SimTime::ZERO,
            SimTime::from_nanos(u64::MAX),
            SimDuration::from_millis(1),
        );
        k.apply_fault_plan(&plan);
        let cfg = PickConfig::bytes(PAGE_SIZE as usize);

        // Defer (default): every chunk is planned, the offline tail last.
        let mut defer = PickSession::init(&mut k, &t, fd, cfg).unwrap();
        assert_eq!(defer.planned_chunks(), 8);
        for expect in [0u64, 1, 2, 3, 4, 5, 6, 7] {
            assert_eq!(defer.next_read().unwrap().0, expect * PAGE_SIZE);
        }

        // Skip: the offline tail is pruned from the plan entirely.
        let mut skip = PickSession::init(&mut k, &t, fd, cfg.skip_unavailable()).unwrap();
        assert_eq!(skip.planned_chunks(), 4);
        let mut max_off = 0;
        while let Some((off, _)) = skip.next_read() {
            max_off = max_off.max(off);
        }
        assert!(max_off < 4 * PAGE_SIZE);
    }

    #[test]
    fn empty_file_plans_nothing() {
        let (mut k, t) = setup();
        k.install_file("/data/empty", b"").unwrap();
        let fd = k.open("/data/empty", OpenFlags::RDONLY).unwrap();
        let mut p = PickSession::init(&mut k, &t, fd, PickConfig::bytes(4096)).unwrap();
        assert!(p.next_read().is_none());
        assert_eq!(p.planned_chunks(), 0);
    }
}
