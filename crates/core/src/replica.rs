//! Min-cost replica selection for redundant volumes.
//!
//! A redundant extent can be served from more than one device; `FSLEDS_GET`
//! must quote the price of the copy the kernel would actually pick. The
//! rules mirror the kernel's read routing:
//!
//! * **Mirrored** — any one available member serves the whole extent, so
//!   the extent's price is the *cheapest available* member's price. An
//!   offline member reroutes (it is excluded, not priced infinite); only
//!   when every member is offline is the extent unavailable.
//! * **Coded (k, n)** — k fragments must arrive and the read completes when
//!   the slowest of the k chosen fragments does, so the extent's price is
//!   the *k-th cheapest available* member's price. Fewer than k available
//!   members means the extent is unavailable.
//!
//! Candidates arrive pre-priced from the sleds table, with their live
//! fault state attached; degraded members are priced up by their
//! multiplier before comparison, exactly as single-device extents are.

use sleds_devices::FaultState;

use crate::table::SledsEntry;

/// Folds a device's current fault state into a table entry: a degraded
/// window inflates latency and deflates bandwidth by its multiplier, and
/// an offline window prices the extent unavailable (infinite latency,
/// zero bandwidth), which every downstream estimate and predicate treats
/// as an infinite delivery time.
pub fn degrade(entry: SledsEntry, state: FaultState) -> SledsEntry {
    match state {
        FaultState::Healthy => entry,
        FaultState::Degraded(m) => SledsEntry {
            latency: entry.latency * m,
            bandwidth: entry.bandwidth / m,
        },
        FaultState::Offline => SledsEntry {
            latency: f64::INFINITY,
            bandwidth: 0.0,
        },
    }
}

/// Estimated seconds to deliver `length` bytes priced by `entry` — the
/// comparison key for replica selection.
fn delivery(entry: &SledsEntry, length: u64) -> f64 {
    if entry.bandwidth <= 0.0 {
        return f64::INFINITY;
    }
    entry.latency + length as f64 / entry.bandwidth
}

/// The entry `FSLEDS_GET` should quote for a redundant extent of `length`
/// bytes servable by `candidates` (each a table entry plus the device's
/// live fault state).
///
/// `coded_k: None` is a mirror: the cheapest available (non-offline)
/// member wins. `coded_k: Some(k)` is a (k, n) code: the k-th cheapest
/// available member wins, because the read is as slow as the slowest of
/// the k fragments it must gather. Returns `None` when the extent cannot
/// currently be served at all — every member offline, or fewer than k
/// available — which callers price as unavailable.
pub fn select_min_cost(
    candidates: &[(SledsEntry, FaultState)],
    coded_k: Option<u32>,
    length: u64,
) -> Option<SledsEntry> {
    let mut available: Vec<SledsEntry> = candidates
        .iter()
        .filter(|(_, state)| !matches!(state, FaultState::Offline))
        .map(|&(entry, state)| degrade(entry, state))
        .collect();
    available.sort_by(|a, b| delivery(a, length).total_cmp(&delivery(b, length)));
    match coded_k {
        None => available.first().copied(),
        Some(k) => {
            let k = (k.max(1)) as usize;
            if available.len() < k {
                return None;
            }
            available.get(k - 1).copied()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(latency: f64, bandwidth: f64) -> SledsEntry {
        SledsEntry { latency, bandwidth }
    }

    #[test]
    fn mirror_picks_cheapest_available() {
        let cands = [
            (entry(0.018, 9e6), FaultState::Healthy),
            (entry(0.002, 20e6), FaultState::Healthy),
        ];
        let got = select_min_cost(&cands, None, 1 << 20).unwrap();
        assert_eq!(got.latency, 0.002);
    }

    #[test]
    fn mirror_reroutes_around_offline_primary() {
        let cands = [
            (entry(0.002, 20e6), FaultState::Offline),
            (entry(0.018, 9e6), FaultState::Healthy),
        ];
        let got = select_min_cost(&cands, None, 1 << 20).unwrap();
        assert_eq!(got.latency, 0.018, "offline member must not win");
    }

    #[test]
    fn mirror_with_all_offline_is_unavailable() {
        let cands = [
            (entry(0.002, 20e6), FaultState::Offline),
            (entry(0.018, 9e6), FaultState::Offline),
        ];
        assert!(select_min_cost(&cands, None, 4096).is_none());
    }

    #[test]
    fn degraded_member_is_priced_up_not_excluded() {
        // Degrading the fast member 20x makes the slow one win, at its
        // healthy price.
        let cands = [
            (entry(0.002, 20e6), FaultState::Degraded(20.0)),
            (entry(0.018, 9e6), FaultState::Healthy),
        ];
        let got = select_min_cost(&cands, None, 1 << 20).unwrap();
        assert_eq!(got.latency, 0.018);
        // A mild degradation leaves the fast member in front, priced up.
        let cands = [
            (entry(0.002, 20e6), FaultState::Degraded(2.0)),
            (entry(0.018, 9e6), FaultState::Healthy),
        ];
        let got = select_min_cost(&cands, None, 4096).unwrap();
        assert!((got.latency - 0.004).abs() < 1e-12);
        assert!((got.bandwidth - 10e6).abs() < 1.0);
    }

    #[test]
    fn coded_prices_the_kth_cheapest_fragment() {
        let cands = [
            (entry(0.001, 20e6), FaultState::Healthy),
            (entry(0.010, 9e6), FaultState::Healthy),
            (entry(0.080, 2e6), FaultState::Healthy),
        ];
        // k = 2 of 3: the straggler among the two chosen is the middle one.
        let got = select_min_cost(&cands, Some(2), 4096).unwrap();
        assert_eq!(got.latency, 0.010);
    }

    #[test]
    fn coded_needs_k_available_members() {
        let cands = [
            (entry(0.001, 20e6), FaultState::Healthy),
            (entry(0.010, 9e6), FaultState::Offline),
            (entry(0.080, 2e6), FaultState::Offline),
        ];
        assert!(select_min_cost(&cands, Some(2), 4096).is_none());
        // One member back: exactly k available, priced by the slower one.
        let cands = [
            (entry(0.001, 20e6), FaultState::Healthy),
            (entry(0.010, 9e6), FaultState::Healthy),
            (entry(0.080, 2e6), FaultState::Offline),
        ];
        let got = select_min_cost(&cands, Some(2), 4096).unwrap();
        assert_eq!(got.latency, 0.010);
    }

    #[test]
    fn empty_candidate_set_is_unavailable() {
        assert!(select_min_cost(&[], None, 4096).is_none());
        assert!(select_min_cost(&[], Some(1), 4096).is_none());
    }
}
