//! SLED forecasts: how long will this SLED vector stay true?
//!
//! The paper's section 3.4 proposes including "some description of how the
//! system state will change over time, such as a program segment that
//! applications could use to predict which pages of a file would be flushed
//! from cache based on current page replacement algorithms". This module is
//! that extension: each memory-resident SLED is annotated with how many
//! page insertions (i.e. how much competing traffic) the cache can absorb
//! before the SLED's first page is evicted.
//!
//! Applications use it to decide whether a plan is still worth following:
//! a SLED that survives 10,000 insertions is a stable fact; one that dies
//! after 3 means "read it now or lose it".

use sleds_fs::{Fd, Kernel};
use sleds_sim_core::{SimResult, PAGE_SIZE};

use crate::get::fsleds_get;
use crate::report::SledReport;
use crate::table::SledsTable;
use crate::Sled;

/// A SLED with its predicted lifetime.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SledForecast {
    /// The descriptor itself.
    pub sled: Sled,
    /// Cache insertions until this SLED's most vulnerable page is evicted.
    /// `None` for device-resident SLEDs (nothing cached to lose) and under
    /// replacement policies whose behaviour is not predictable (Clock, 2Q).
    pub survives_insertions: Option<u64>,
}

impl SledForecast {
    /// Competing bytes the cache can absorb before this SLED degrades.
    pub fn survives_bytes(&self) -> Option<u64> {
        self.survives_insertions.map(|n| n * PAGE_SIZE)
    }
}

/// Retrieves the SLED vector with lifetime annotations.
pub fn forecast(kernel: &mut Kernel, table: &SledsTable, fd: Fd) -> SimResult<Vec<SledForecast>> {
    let sleds = fsleds_get(kernel, fd, table)?;
    let ranks = kernel.page_eviction_ranks(fd)?;
    // Insertions into a non-full cache evict nothing, so every page gets
    // the free headroom on top of its eviction rank.
    let headroom = kernel
        .cache_capacity_pages()
        .saturating_sub(kernel.cache_resident_pages()) as u64;
    Ok(sleds
        .into_iter()
        .map(|sled| {
            let memory = sled.latency < SledReport::MEMORY_LATENCY_CUTOFF;
            let survives = if memory {
                // The SLED dies when its *lowest-ranked* page goes.
                let first = sled.offset / PAGE_SIZE;
                let last = (sled.end() - 1) / PAGE_SIZE;
                (first..=last)
                    .filter_map(|p| ranks.get(p as usize).copied().flatten())
                    .min()
                    .map(|r| r as u64 + headroom)
            } else {
                None
            };
            SledForecast {
                sled,
                survives_insertions: survives,
            }
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::SledsEntry;
    use sleds_devices::DiskDevice;
    use sleds_fs::{MachineConfig, OpenFlags, Whence};
    use sleds_sim_core::ByteSize;

    fn setup() -> (Kernel, SledsTable) {
        let mut cfg = MachineConfig::table2();
        cfg.ram = ByteSize::mib(2);
        let mut k = Kernel::new(cfg);
        k.mkdir("/d").unwrap();
        let m = k.mount_disk("/d", DiskDevice::table2_disk("hda")).unwrap();
        let dev = k.device_of_mount(m).unwrap();
        let mut t = SledsTable::new();
        t.fill_memory(SledsEntry::new(175e-9, 48e6));
        t.fill_device(dev, SledsEntry::new(0.018, 9e6));
        (k, t)
    }

    #[test]
    fn forecast_annotates_memory_sleds_only() {
        let (mut k, t) = setup();
        k.install_file("/d/f", &vec![1u8; 32 * PAGE_SIZE as usize])
            .unwrap();
        let fd = k.open("/d/f", OpenFlags::RDONLY).unwrap();
        k.lseek(fd, 8 * PAGE_SIZE as i64, Whence::Set).unwrap();
        k.read(fd, 8 * PAGE_SIZE as usize).unwrap();
        let fc = forecast(&mut k, &t, fd).unwrap();
        assert_eq!(fc.len(), 3);
        assert!(
            fc[0].survives_insertions.is_none(),
            "disk SLED has no lifetime"
        );
        assert!(fc[1].survives_insertions.is_some(), "memory SLED has one");
        assert!(fc[2].survives_insertions.is_none());
        assert_eq!(
            fc[1].survives_bytes().unwrap(),
            fc[1].survives_insertions.unwrap() * PAGE_SIZE
        );
    }

    #[test]
    fn prediction_matches_reality() {
        let (mut k, t) = setup();
        let cache_pages = k.config().cache_pages() as u64;
        k.install_file("/d/f", &vec![1u8; 16 * PAGE_SIZE as usize])
            .unwrap();
        k.install_file(
            "/d/noise",
            &vec![2u8; (cache_pages + 64) as usize * PAGE_SIZE as usize],
        )
        .unwrap();
        let fd = k.open("/d/f", OpenFlags::RDONLY).unwrap();
        k.read(fd, 16 * PAGE_SIZE as usize).unwrap();
        let fc = forecast(&mut k, &t, fd).unwrap();
        assert_eq!(fc.len(), 1);
        let survives = fc[0].survives_insertions.unwrap();

        // Insert exactly `survives` foreign pages: the SLED must hold.
        let noise = k.open("/d/noise", OpenFlags::RDONLY).unwrap();
        k.read(noise, (survives * PAGE_SIZE) as usize).unwrap();
        let still = fsleds_get(&mut k, fd, &t).unwrap();
        assert_eq!(still.len(), 1, "SLED intact after predicted-safe traffic");
        assert!(still[0].latency < 1e-3);

        // One more insertion evicts the SLED's oldest page.
        k.read(noise, PAGE_SIZE as usize).unwrap();
        let after = fsleds_get(&mut k, fd, &t).unwrap();
        assert!(
            after.len() > 1 || after[0].latency >= 1e-3,
            "SLED should degrade exactly past its forecast"
        );
    }

    #[test]
    fn unpredictable_policy_yields_none() {
        let mut cfg = MachineConfig::table2();
        cfg.ram = ByteSize::mib(2);
        cfg.policy = sleds_pagecache::PolicyKind::Clock;
        let mut k = Kernel::new(cfg);
        k.mkdir("/d").unwrap();
        let m = k.mount_disk("/d", DiskDevice::table2_disk("hda")).unwrap();
        let dev = k.device_of_mount(m).unwrap();
        let mut t = SledsTable::new();
        t.fill_memory(SledsEntry::new(175e-9, 48e6));
        t.fill_device(dev, SledsEntry::new(0.018, 9e6));
        k.install_file("/d/f", &vec![1u8; 4 * PAGE_SIZE as usize])
            .unwrap();
        let fd = k.open("/d/f", OpenFlags::RDONLY).unwrap();
        k.read(fd, 4 * PAGE_SIZE as usize).unwrap();
        let fc = forecast(&mut k, &t, fd).unwrap();
        assert!(
            fc[0].survives_insertions.is_none(),
            "Clock is not predictable"
        );
    }
}
