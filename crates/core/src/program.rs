//! Compiling user-space pick predicates into in-kernel [`PickProgram`]s.
//!
//! The bridge between the library's vocabulary (a parsed
//! [`LatencyPredicate`], a filled [`SledsTable`]) and the kernel's pushdown
//! interface (bytecode plus flattened [`ProgPricing`] rows). Compilation
//! must preserve *bit-for-bit* verdict parity with the sequential path:
//! the emitted bytecode performs the same floating-point operations in the
//! same order as [`LatencyPredicate::matches`], and the equivalence suite
//! pins the two over every device class.

use std::cmp::Ordering;

use sleds_fs::{PickProgram, ProgEntry, ProgInst, ProgPricing, ProgSled};

use crate::predicate::LatencyPredicate;
use crate::table::SledsTable;
use crate::Sled;

/// Compiles a `find -latency` predicate into kernel bytecode.
///
/// `+n` becomes `delivery > n*unit`, `-n` becomes `delivery < n*unit` —
/// with the threshold folded at compile time exactly as `matches` folds it
/// (`n as f64 * unit`). The whole-unit `n` form becomes
/// `floor(delivery / unit) == n as f64`; the comparison is exact for
/// thresholds below 2^53, far past any plausible `-latency` argument.
pub fn compile_latency(pred: &LatencyPredicate) -> PickProgram {
    let (cmp, unit, n) = pred.parts();
    let insts = match cmp {
        Ordering::Greater => vec![
            ProgInst::PushDeliveryTime,
            ProgInst::PushConst(n as f64 * unit),
            ProgInst::Gt,
        ],
        Ordering::Less => vec![
            ProgInst::PushDeliveryTime,
            ProgInst::PushConst(n as f64 * unit),
            ProgInst::Lt,
        ],
        Ordering::Equal => vec![
            ProgInst::PushDeliveryTime,
            ProgInst::PushConst(unit),
            ProgInst::Div,
            ProgInst::Floor,
            ProgInst::PushConst(n as f64),
            ProgInst::Eq,
        ],
    };
    // sledlint::allow(D005, fixed-shape programs above: 3 or 6 insts, arity 1, finite constants)
    PickProgram::new(insts).expect("compiled latency predicate always verifies")
}

/// Flattens a sleds table into the pricing rows a ring op or walk carries
/// across the boundary.
///
/// Only the flat rows travel: zone tables and `trust_device_reports` are
/// not expressible in [`ProgPricing`], so callers relying on either must
/// stay on the sequential `fsleds_get` path (the equivalence tests only
/// cover flat tables).
pub fn pricing_from(table: &SledsTable) -> ProgPricing {
    ProgPricing {
        memory: table.memory().map(|e| ProgEntry {
            latency: e.latency,
            bandwidth: e.bandwidth,
        }),
        devices: table
            .iter_devices()
            .map(|(dev, e)| {
                (
                    dev,
                    ProgEntry {
                        latency: e.latency,
                        bandwidth: e.bandwidth,
                    },
                )
            })
            .collect(),
    }
}

/// Converts kernel-built SLEDs back into the library's [`Sled`] type.
/// Field-for-field; the two structs exist only because the crate
/// dependency points from `sleds` to `sleds-fs`.
pub fn sleds_from_prog(sleds: &[ProgSled]) -> Vec<Sled> {
    sleds
        .iter()
        .map(|s| Sled {
            offset: s.offset,
            length: s.length,
            latency: s.latency,
            bandwidth: s.bandwidth,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sleds_fs::ProgInputs;

    fn verdict(prog: &PickProgram, estimate: f64) -> bool {
        prog.matches(&ProgInputs {
            first_latency: 0.0,
            delivery_time: estimate,
            cached_fraction: 0.0,
        })
    }

    #[test]
    fn compiled_predicates_match_bit_for_bit() {
        let estimates = [
            0.0,
            1e-7,
            29e-6,
            30e-6,
            31e-6,
            0.1999,
            0.2,
            0.25,
            4.999,
            5.0,
            5.4,
            5.999,
            6.0,
            55.0,
            f64::INFINITY,
        ];
        for spec in ["5", "+2", "-10", "+m200", "-U30", "M5", "0", "+0"] {
            let pred = LatencyPredicate::parse(spec).unwrap();
            let prog = compile_latency(&pred);
            for &est in &estimates {
                assert_eq!(
                    verdict(&prog, est),
                    pred.matches(est),
                    "spec {spec:?} estimate {est}"
                );
            }
        }
    }

    #[test]
    fn pricing_flattens_memory_and_devices() {
        use sleds_fs::DeviceId;
        let mut t = SledsTable::new();
        assert_eq!(pricing_from(&t).memory, None);
        t.fill_memory(crate::SledsEntry::new(175e-9, 48e6));
        t.fill_device(DeviceId(2), crate::SledsEntry::new(0.018, 9e6));
        t.fill_device(DeviceId(7), crate::SledsEntry::new(0.27, 1e6));
        let p = pricing_from(&t);
        assert_eq!(p.memory.unwrap().bandwidth, 48e6);
        assert_eq!(p.devices.len(), 2);
        assert_eq!(p.device(DeviceId(7)).unwrap().latency, 0.27);
        assert_eq!(p.device(DeviceId(3)), None);
    }

    #[test]
    fn prog_sleds_round_trip() {
        let ks = [ProgSled {
            offset: 4096,
            length: 8192,
            latency: 0.018,
            bandwidth: 9e6,
        }];
        let s = sleds_from_prog(&ks);
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].offset, 4096);
        assert_eq!(s[0].length, 8192);
        assert_eq!(s[0].latency, 0.018);
    }
}
