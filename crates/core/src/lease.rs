//! SLED leases: reservations that keep a SLED vector accurate.
//!
//! The paper's section 3.4 notes that SLEDs "describe the state of the
//! storage system at a particular instant" and that "adding a lock or
//! reservation mechanism would improve the accuracy and lifetime of SLEDs
//! by controlling access to the affected resources". A [`SledLease`] is
//! that mechanism for the buffer-cache component of the state: acquiring
//! one pins every page the SLED vector reports as memory-resident, so the
//! low-latency segments stay low-latency until the lease is released, no
//! matter what other applications do to the cache in between.
//!
//! Pinning works at extent granularity: the kernel reports residency as
//! runs, and the lease issues one `pin_range` per memory extent (and one
//! `unpin_range` per span on release) instead of one syscall per page. The
//! lease also records the file's SLED generation stamp at acquisition, so
//! [`SledLease::is_current`] can tell in O(1) whether the captured vector
//! still describes the file exactly — useful for the *unpinned* segments,
//! which the lease does not protect.
//!
//! Positional device state (head, tape position) is *not* leased — it
//! changes with every access by anyone, and locking it would serialize the
//! machine. Cache residency is the component whose drift actually
//! invalidates plans, and the one the paper's discussion targets.

use sleds_fs::{Fd, Kernel, PageLocation};
use sleds_sim_core::{SimResult, PAGE_SIZE};

use crate::get::fsleds_get;
use crate::table::SledsTable;
use crate::Sled;

/// An active reservation over a file's cached pages.
///
/// Dropping the lease does **not** release the pins (no kernel handle in
/// `Drop`); call [`SledLease::release`]. The kernel clears pins itself if
/// the file is removed.
#[derive(Debug)]
#[must_use = "a lease holds kernel resources until release() is called"]
pub struct SledLease {
    fd: Fd,
    /// Pinned byte spans, one per memory extent at acquisition: `(offset,
    /// length)`.
    spans: Vec<(u64, u64)>,
    /// Total pages those spans pinned.
    pinned: usize,
    /// The SLED vector at acquisition time — guaranteed accurate for the
    /// memory-resident segments while the lease holds.
    sleds: Vec<Sled>,
    /// The file's SLED generation stamp at acquisition time.
    generation: u64,
}

impl SledLease {
    /// Acquires a lease: retrieves the file's SLEDs and pins every page
    /// currently in memory, one `pin_range` call per resident extent.
    pub fn acquire(kernel: &mut Kernel, table: &SledsTable, fd: Fd) -> SimResult<SledLease> {
        let sleds = fsleds_get(kernel, fd, table)?;
        let extents = kernel.page_extents(fd)?;
        let mut spans = Vec::new();
        let mut pinned = 0;
        for e in &extents {
            if matches!(e.location, PageLocation::Memory) {
                let offset = e.first_page * PAGE_SIZE;
                let len = e.pages * PAGE_SIZE;
                pinned += kernel.pin_range(fd, offset, len)?.len();
                spans.push((offset, len));
            }
        }
        // Pinning itself does not move pages, so the stamp taken here still
        // describes the state the SLEDs were built from.
        let generation = kernel.sled_generation(fd)?;
        Ok(SledLease {
            fd,
            spans,
            pinned,
            sleds,
            generation,
        })
    }

    /// The SLED vector captured (and held stable) at acquisition.
    pub fn sleds(&self) -> &[Sled] {
        &self.sleds
    }

    /// Number of pages the lease holds.
    pub fn pinned_pages(&self) -> usize {
        self.pinned
    }

    /// Number of pinned spans (one per memory extent at acquisition).
    pub fn pinned_spans(&self) -> usize {
        self.spans.len()
    }

    /// The leased file.
    pub fn fd(&self) -> Fd {
        self.fd
    }

    /// The file's SLED generation stamp captured at acquisition.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// True while the captured SLED vector still describes the file
    /// exactly — i.e. neither cache residency nor layout nor size has
    /// changed since acquisition. One O(1) syscall; no page walk. The
    /// pinned (memory) segments stay accurate regardless; this check
    /// covers the unpinned device segments too.
    pub fn is_current(&self, kernel: &mut Kernel) -> SimResult<bool> {
        Ok(kernel.sled_generation(self.fd)? == self.generation)
    }

    /// Releases every pin, one `unpin_range` call per pinned span.
    pub fn release(self, kernel: &mut Kernel) -> SimResult<()> {
        for (offset, len) in &self.spans {
            kernel.unpin_range(self.fd, *offset, *len)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::SledsEntry;
    use sleds_devices::DiskDevice;
    use sleds_fs::{MachineConfig, OpenFlags, Whence};
    use sleds_sim_core::ByteSize;

    fn setup() -> (Kernel, SledsTable) {
        let mut cfg = MachineConfig::table2();
        cfg.ram = ByteSize::mib(2); // ~337-page cache
        let mut k = Kernel::new(cfg);
        k.mkdir("/d").unwrap();
        let m = k.mount_disk("/d", DiskDevice::table2_disk("hda")).unwrap();
        let dev = k.device_of_mount(m).unwrap();
        let mut t = SledsTable::new();
        t.fill_memory(SledsEntry::new(175e-9, 48e6));
        t.fill_device(dev, SledsEntry::new(0.018, 9e6));
        (k, t)
    }

    fn warm_pages(k: &mut Kernel, fd: Fd, start: u64, count: u64) {
        k.lseek(fd, (start * PAGE_SIZE) as i64, Whence::Set)
            .unwrap();
        k.read(fd, (count * PAGE_SIZE) as usize).unwrap();
    }

    #[test]
    fn lease_keeps_sleds_valid_under_cache_pressure() {
        let (mut k, t) = setup();
        k.install_file("/d/f", &vec![1u8; 64 * PAGE_SIZE as usize])
            .unwrap();
        k.install_file("/d/noise", &vec![2u8; 512 * PAGE_SIZE as usize])
            .unwrap();
        let fd = k.open("/d/f", OpenFlags::RDONLY).unwrap();
        warm_pages(&mut k, fd, 16, 32);

        let lease = SledLease::acquire(&mut k, &t, fd).unwrap();
        assert_eq!(lease.pinned_pages(), 32);
        // One contiguous warm run = one pin_range call.
        assert_eq!(lease.pinned_spans(), 1);
        let before = lease.sleds().to_vec();

        // A competing scan floods the cache.
        let noise = k.open("/d/noise", OpenFlags::RDONLY).unwrap();
        while !k.read(noise, 64 << 10).unwrap().is_empty() {}
        k.close(noise).unwrap();

        // The leased file's SLEDs are unchanged.
        let after = fsleds_get(&mut k, fd, &t).unwrap();
        assert_eq!(before, after, "leased SLEDs must survive the flood");
        assert!(lease.is_current(&mut k).unwrap());

        // Release, flood again: now the state drifts.
        lease.release(&mut k).unwrap();
        assert_eq!(k.pinned_pages(), 0);
        let noise = k.open("/d/noise", OpenFlags::RDONLY).unwrap();
        while !k.read(noise, 64 << 10).unwrap().is_empty() {}
        k.close(noise).unwrap();
        let drifted = fsleds_get(&mut k, fd, &t).unwrap();
        assert_ne!(before, drifted, "without the lease the SLEDs go stale");
    }

    #[test]
    fn lease_on_cold_file_pins_nothing() {
        let (mut k, t) = setup();
        k.install_file("/d/f", &vec![1u8; 8 * PAGE_SIZE as usize])
            .unwrap();
        let fd = k.open("/d/f", OpenFlags::RDONLY).unwrap();
        let lease = SledLease::acquire(&mut k, &t, fd).unwrap();
        assert_eq!(lease.pinned_pages(), 0);
        assert_eq!(lease.pinned_spans(), 0);
        assert_eq!(lease.sleds().len(), 1);
        lease.release(&mut k).unwrap();
    }

    #[test]
    fn generation_stamp_detects_drift_after_release() {
        let (mut k, t) = setup();
        k.install_file("/d/f", &vec![3u8; 16 * PAGE_SIZE as usize])
            .unwrap();
        let fd = k.open("/d/f", OpenFlags::RDONLY).unwrap();
        warm_pages(&mut k, fd, 0, 4);

        let lease = SledLease::acquire(&mut k, &t, fd).unwrap();
        assert!(lease.is_current(&mut k).unwrap(), "fresh lease is current");
        let gen = lease.generation();
        lease.release(&mut k).unwrap();

        // Touch a new page: residency changed, so the stamp moves.
        warm_pages(&mut k, fd, 8, 1);
        assert_ne!(k.sled_generation(fd).unwrap(), gen);
    }
}
