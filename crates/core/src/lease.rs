//! SLED leases: reservations that keep a SLED vector accurate.
//!
//! The paper's section 3.4 notes that SLEDs "describe the state of the
//! storage system at a particular instant" and that "adding a lock or
//! reservation mechanism would improve the accuracy and lifetime of SLEDs
//! by controlling access to the affected resources". A [`SledLease`] is
//! that mechanism for the buffer-cache component of the state: acquiring
//! one pins every page the SLED vector reports as memory-resident, so the
//! low-latency segments stay low-latency until the lease is released, no
//! matter what other applications do to the cache in between.
//!
//! Positional device state (head, tape position) is *not* leased — it
//! changes with every access by anyone, and locking it would serialize the
//! machine. Cache residency is the component whose drift actually
//! invalidates plans, and the one the paper's discussion targets.

use sleds_fs::{Fd, Kernel, PageLocation};
use sleds_sim_core::{SimResult, PAGE_SIZE};

use crate::get::fsleds_get;
use crate::table::SledsTable;
use crate::Sled;

/// An active reservation over a file's cached pages.
///
/// Dropping the lease does **not** release the pins (no kernel handle in
/// `Drop`); call [`SledLease::release`]. The kernel clears pins itself if
/// the file is removed.
#[derive(Debug)]
#[must_use = "a lease holds kernel resources until release() is called"]
pub struct SledLease {
    fd: Fd,
    /// Pinned page indices.
    pages: Vec<u64>,
    /// The SLED vector at acquisition time — guaranteed accurate for the
    /// memory-resident segments while the lease holds.
    sleds: Vec<Sled>,
}

impl SledLease {
    /// Acquires a lease: retrieves the file's SLEDs and pins every page
    /// currently in memory.
    pub fn acquire(kernel: &mut Kernel, table: &SledsTable, fd: Fd) -> SimResult<SledLease> {
        let sleds = fsleds_get(kernel, fd, table)?;
        let locations = kernel.page_locations(fd)?;
        let mut pages = Vec::new();
        for (i, loc) in locations.iter().enumerate() {
            if matches!(loc, PageLocation::Memory) {
                let page = i as u64;
                let got = kernel.pin_range(fd, page * PAGE_SIZE, PAGE_SIZE)?;
                pages.extend(got);
            }
        }
        Ok(SledLease { fd, pages, sleds })
    }

    /// The SLED vector captured (and held stable) at acquisition.
    pub fn sleds(&self) -> &[Sled] {
        &self.sleds
    }

    /// Number of pages the lease holds.
    pub fn pinned_pages(&self) -> usize {
        self.pages.len()
    }

    /// The leased file.
    pub fn fd(&self) -> Fd {
        self.fd
    }

    /// Releases every pin.
    pub fn release(self, kernel: &mut Kernel) -> SimResult<()> {
        for page in &self.pages {
            kernel.unpin_range(self.fd, page * PAGE_SIZE, PAGE_SIZE)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::SledsEntry;
    use sleds_devices::DiskDevice;
    use sleds_fs::{MachineConfig, OpenFlags, Whence};
    use sleds_sim_core::ByteSize;

    fn setup() -> (Kernel, SledsTable) {
        let mut cfg = MachineConfig::table2();
        cfg.ram = ByteSize::mib(2); // ~337-page cache
        let mut k = Kernel::new(cfg);
        k.mkdir("/d").unwrap();
        let m = k.mount_disk("/d", DiskDevice::table2_disk("hda")).unwrap();
        let dev = k.device_of_mount(m).unwrap();
        let mut t = SledsTable::new();
        t.fill_memory(SledsEntry::new(175e-9, 48e6));
        t.fill_device(dev, SledsEntry::new(0.018, 9e6));
        (k, t)
    }

    fn warm_pages(k: &mut Kernel, fd: Fd, start: u64, count: u64) {
        k.lseek(fd, (start * PAGE_SIZE) as i64, Whence::Set).unwrap();
        k.read(fd, (count * PAGE_SIZE) as usize).unwrap();
    }

    #[test]
    fn lease_keeps_sleds_valid_under_cache_pressure() {
        let (mut k, t) = setup();
        k.install_file("/d/f", &vec![1u8; 64 * PAGE_SIZE as usize]).unwrap();
        k.install_file("/d/noise", &vec![2u8; 512 * PAGE_SIZE as usize]).unwrap();
        let fd = k.open("/d/f", OpenFlags::RDONLY).unwrap();
        warm_pages(&mut k, fd, 16, 32);

        let lease = SledLease::acquire(&mut k, &t, fd).unwrap();
        assert_eq!(lease.pinned_pages(), 32);
        let before = lease.sleds().to_vec();

        // A competing scan floods the cache.
        let noise = k.open("/d/noise", OpenFlags::RDONLY).unwrap();
        while !k.read(noise, 64 << 10).unwrap().is_empty() {}
        k.close(noise).unwrap();

        // The leased file's SLEDs are unchanged.
        let after = fsleds_get(&mut k, fd, &t).unwrap();
        assert_eq!(before, after, "leased SLEDs must survive the flood");

        // Release, flood again: now the state drifts.
        lease.release(&mut k).unwrap();
        assert_eq!(k.pinned_pages(), 0);
        let noise = k.open("/d/noise", OpenFlags::RDONLY).unwrap();
        while !k.read(noise, 64 << 10).unwrap().is_empty() {}
        k.close(noise).unwrap();
        let drifted = fsleds_get(&mut k, fd, &t).unwrap();
        assert_ne!(before, drifted, "without the lease the SLEDs go stale");
    }

    #[test]
    fn lease_on_cold_file_pins_nothing() {
        let (mut k, t) = setup();
        k.install_file("/d/f", &vec![1u8; 8 * PAGE_SIZE as usize]).unwrap();
        let fd = k.open("/d/f", OpenFlags::RDONLY).unwrap();
        let lease = SledLease::acquire(&mut k, &t, fd).unwrap();
        assert_eq!(lease.pinned_pages(), 0);
        assert_eq!(lease.sleds().len(), 1);
        lease.release(&mut k).unwrap();
    }
}
