//! `FSLEDS_GET`: building the SLED vector for an open file.
//!
//! The kernel reports, extent by extent, where the file's pages currently
//! reside (buffer cache or device runs); each extent is assigned the
//! latency and bandwidth of its level from the sleds table and consecutive
//! extents with identical estimates are coalesced into one SLED — the
//! construction the paper describes in its implementation section, at run
//! granularity instead of page granularity. Device extents split only
//! where the table actually changes (zone-row boundaries), so the cost of
//! a `FSLEDS_GET` is proportional to the number of residency runs and zone
//! crossings, not the file's page count. The one deliberately per-page
//! path is dynamic device self-reports (`trust_device_reports`), where a
//! server's cache state can differ page by page.

use sleds_devices::FaultState;
use sleds_fs::{Fd, Kernel, PageLocation, SECTORS_PER_PAGE};
use sleds_sim_core::{Errno, SimError, SimResult, PAGE_SIZE};

use crate::replica::{degrade, select_min_cost};
use crate::table::{SledsEntry, SledsTable};
use crate::Sled;

fn push_sled(out: &mut Vec<Sled>, offset: u64, length: u64, entry: SledsEntry) {
    if length == 0 {
        return;
    }
    match out.last_mut() {
        Some(last)
            if last.latency.to_bits() == entry.latency.to_bits()
                && last.bandwidth.to_bits() == entry.bandwidth.to_bits() =>
        {
            last.length += length;
        }
        _ => out.push(Sled {
            offset,
            length,
            latency: entry.latency,
            bandwidth: entry.bandwidth,
        }),
    }
}

fn missing_row(dev: sleds_fs::DeviceId) -> SimError {
    SimError::new(
        Errno::Einval,
        format!("FSLEDS_GET: no sleds table row for device {dev:?}"),
    )
}

/// Retrieves the SLED vector for an open file.
///
/// Returns one SLED per run of pages sharing `(latency, bandwidth)`. The
/// last SLED is clipped to the file size, so the vector covers the file's
/// bytes exactly. An empty file yields an empty vector.
///
/// Extents on a redundant volume carry every replica place that could
/// serve them; such an extent is priced at the min-cost *available*
/// candidate — degraded members priced up by their multiplier, offline
/// members excluded (the kernel reroutes around them), and for a (k, n)
/// coded layout the k-th cheapest fragment (see
/// [`select_min_cost`](crate::replica::select_min_cost)). Only when no
/// candidate can serve at all is the extent priced unavailable.
///
/// # Errors
///
/// Fails with `EINVAL` if the table has no memory row (the boot-time fill
/// never ran) or no row for a device the file touches, and propagates any
/// kernel error from the page walk.
pub fn fsleds_get(kernel: &mut Kernel, fd: Fd, table: &SledsTable) -> SimResult<Vec<Sled>> {
    let mem = table.memory().ok_or_else(|| {
        SimError::new(
            Errno::Einval,
            "FSLEDS_GET: sleds table not filled (no memory row)",
        )
    })?;
    let size = kernel.fstat(fd)?.size;
    let extents = kernel.redundant_extents(fd)?;
    let mut out: Vec<Sled> = Vec::new();
    for re in &extents {
        let e = &re.extent;
        let ext_off = e.first_page * PAGE_SIZE;
        if !re.alternatives.is_empty() {
            // Redundant extent: price every candidate whole-extent and
            // quote the one the kernel's routing would pick.
            let PageLocation::Device { dev, sector } = e.location else {
                return Err(SimError::new(
                    Errno::Einval,
                    "FSLEDS_GET: redundant extent not on a device",
                ));
            };
            let length = (e.pages * PAGE_SIZE).min(size - ext_off);
            let mut cands: Vec<(SledsEntry, FaultState)> = Vec::new();
            let state = kernel
                .device_fault_state(dev)
                .unwrap_or(FaultState::Healthy);
            let entry = table
                .entry_at(dev, sector)
                .ok_or_else(|| missing_row(dev))?;
            cands.push((entry, state));
            for alt in &re.alternatives {
                let state = kernel
                    .device_fault_state(alt.dev)
                    .unwrap_or(FaultState::Healthy);
                let entry = table
                    .entry_at(alt.dev, alt.sector)
                    .ok_or_else(|| missing_row(alt.dev))?;
                cands.push((entry, state));
            }
            let chosen = select_min_cost(&cands, re.coded_k, length).unwrap_or(SledsEntry {
                latency: f64::INFINITY,
                bandwidth: 0.0,
            });
            push_sled(&mut out, ext_off, length, chosen);
            continue;
        }
        match e.location {
            PageLocation::Memory => {
                let length = (e.pages * PAGE_SIZE).min(size - ext_off);
                push_sled(&mut out, ext_off, length, mem);
            }
            PageLocation::Device { dev, sector } if table.trust_device_reports() => {
                let state = kernel
                    .device_fault_state(dev)
                    .unwrap_or(FaultState::Healthy);
                // Dynamic device self-report (client/server SLEDs): the
                // server's cache state can differ page by page, so this
                // channel probes each page of the extent.
                for i in 0..e.pages {
                    let s = sector + i * SECTORS_PER_PAGE;
                    let entry = kernel
                        .device_probe(dev, s)
                        .map(|(latency, bandwidth)| SledsEntry { latency, bandwidth })
                        .or_else(|| table.entry_at(dev, s))
                        .ok_or_else(|| missing_row(dev))?;
                    let offset = ext_off + i * PAGE_SIZE;
                    push_sled(
                        &mut out,
                        offset,
                        PAGE_SIZE.min(size - offset),
                        degrade(entry, state),
                    );
                }
            }
            PageLocation::Device { dev, sector } => {
                let state = kernel
                    .device_fault_state(dev)
                    .unwrap_or(FaultState::Healthy);
                // Static table rows: constant between zone boundaries, so
                // one lookup covers every page up to the next boundary.
                let mut p = 0;
                while p < e.pages {
                    let s = sector + p * SECTORS_PER_PAGE;
                    let entry = table.entry_at(dev, s).ok_or_else(|| missing_row(dev))?;
                    let span = match table.zone_end(dev, s) {
                        Some(z) => (z - s).div_ceil(SECTORS_PER_PAGE).min(e.pages - p),
                        None => e.pages - p,
                    };
                    let offset = ext_off + p * PAGE_SIZE;
                    let length = (span * PAGE_SIZE).min(size - offset);
                    push_sled(&mut out, offset, length, degrade(entry, state));
                    p += span;
                }
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sleds_devices::DiskDevice;
    use sleds_fs::{OpenFlags, Whence};

    fn setup() -> (Kernel, SledsTable) {
        let mut k = Kernel::table2();
        k.mkdir("/data").unwrap();
        let m = k
            .mount_disk("/data", DiskDevice::table2_disk("hda"))
            .unwrap();
        let dev = k.device_of_mount(m).unwrap();
        let mut t = SledsTable::new();
        t.fill_memory(crate::SledsEntry::new(175e-9, 48e6));
        t.fill_device(dev, crate::SledsEntry::new(0.018, 9e6));
        (k, t)
    }

    #[test]
    fn cold_file_is_one_disk_sled() {
        let (mut k, t) = setup();
        let data = vec![0u8; 10 * PAGE_SIZE as usize];
        k.install_file("/data/f", &data).unwrap();
        let fd = k.open("/data/f", OpenFlags::RDONLY).unwrap();
        let sleds = fsleds_get(&mut k, fd, &t).unwrap();
        assert_eq!(sleds.len(), 1);
        assert_eq!(sleds[0].offset, 0);
        assert_eq!(sleds[0].length, data.len() as u64);
        assert_eq!(sleds[0].latency, 0.018);
    }

    #[test]
    fn partially_cached_file_splits_into_sleds() {
        let (mut k, t) = setup();
        let data = vec![0u8; 10 * PAGE_SIZE as usize];
        k.install_file("/data/f", &data).unwrap();
        let fd = k.open("/data/f", OpenFlags::RDONLY).unwrap();
        // Cache pages 4..8.
        k.lseek(fd, 4 * PAGE_SIZE as i64, Whence::Set).unwrap();
        k.read(fd, 4 * PAGE_SIZE as usize).unwrap();
        let sleds = fsleds_get(&mut k, fd, &t).unwrap();
        assert_eq!(sleds.len(), 3);
        assert_eq!(sleds[0].latency, 0.018);
        assert_eq!(sleds[0].length, 4 * PAGE_SIZE);
        assert!((sleds[1].latency - 175e-9).abs() < 1e-15);
        assert_eq!(sleds[1].offset, 4 * PAGE_SIZE);
        assert_eq!(sleds[1].length, 4 * PAGE_SIZE);
        assert_eq!(sleds[2].latency, 0.018);
        assert_eq!(sleds[2].end(), data.len() as u64);
    }

    #[test]
    fn sleds_cover_file_exactly_with_ragged_tail() {
        let (mut k, t) = setup();
        let n = 3 * PAGE_SIZE as usize + 123;
        k.install_file("/data/f", &vec![1u8; n]).unwrap();
        let fd = k.open("/data/f", OpenFlags::RDONLY).unwrap();
        let sleds = fsleds_get(&mut k, fd, &t).unwrap();
        let total: u64 = sleds.iter().map(|s| s.length).sum();
        assert_eq!(total, n as u64);
        // Contiguous, sorted, non-overlapping coverage.
        let mut expect = 0;
        for s in &sleds {
            assert_eq!(s.offset, expect);
            expect = s.end();
        }
    }

    #[test]
    fn empty_file_yields_no_sleds() {
        let (mut k, t) = setup();
        k.install_file("/data/empty", b"").unwrap();
        let fd = k.open("/data/empty", OpenFlags::RDONLY).unwrap();
        assert!(fsleds_get(&mut k, fd, &t).unwrap().is_empty());
    }

    #[test]
    fn unfilled_table_is_einval() {
        let (mut k, _) = setup();
        k.install_file("/data/f", b"x").unwrap();
        let fd = k.open("/data/f", OpenFlags::RDONLY).unwrap();
        let empty = SledsTable::new();
        assert_eq!(
            fsleds_get(&mut k, fd, &empty).unwrap_err().errno,
            Errno::Einval
        );
    }

    #[test]
    fn missing_device_row_is_einval() {
        let (mut k, _) = setup();
        k.install_file("/data/f", &vec![0u8; PAGE_SIZE as usize])
            .unwrap();
        let fd = k.open("/data/f", OpenFlags::RDONLY).unwrap();
        let mut t = SledsTable::new();
        t.fill_memory(crate::SledsEntry::new(175e-9, 48e6));
        assert_eq!(fsleds_get(&mut k, fd, &t).unwrap_err().errno, Errno::Einval);
    }

    #[test]
    fn server_reports_split_an_nfs_file_by_server_cache_state() {
        // The client/server SLEDs vocabulary: a LAN server that has half
        // the file hot reports two levels through one mount.
        let mut k = Kernel::table2();
        k.mkdir("/lan").unwrap();
        let srv = sleds_devices::NfsServerDevice::lan_mount("lan0");
        let m = k.mount_device("/lan", Box::new(srv), false).unwrap();
        let dev = k.device_of_mount(m).unwrap();
        let mut t = SledsTable::new();
        t.fill_memory(crate::SledsEntry::new(175e-9, 48e6));
        t.fill_device(dev, crate::SledsEntry::new(0.02, 5e6)); // flat fallback
        let data = vec![0u8; 8 * PAGE_SIZE as usize];
        k.install_file("/lan/f", &data).unwrap();

        // Warm the second half on BOTH sides, then drop the client cache:
        // now only the server remembers.
        let fd = k.open("/lan/f", OpenFlags::RDONLY).unwrap();
        k.lseek(fd, 4 * PAGE_SIZE as i64, Whence::Set).unwrap();
        k.read(fd, 4 * PAGE_SIZE as usize).unwrap();
        k.drop_caches().unwrap();

        // Without trusting device reports: one flat NFS SLED.
        let flat = fsleds_get(&mut k, fd, &t).unwrap();
        assert_eq!(flat.len(), 1);

        // With the client/server channel: two levels, server-hot tail
        // cheaper than the cold head.
        t.set_trust_device_reports(true);
        let split = fsleds_get(&mut k, fd, &t).unwrap();
        assert_eq!(split.len(), 2, "server cache state must show through");
        assert!(split[1].latency < split[0].latency);
        assert_eq!(split[1].offset, 4 * PAGE_SIZE);
        assert!((split[1].latency - 0.002).abs() < 1e-9, "hot = one RTT");
    }

    #[test]
    fn zone_rows_split_a_single_device_extent() {
        use sleds_fs::SECTORS_PER_PAGE;
        let (mut k, mut t) = setup();
        let data = vec![0u8; 8 * PAGE_SIZE as usize];
        k.install_file("/data/f", &data).unwrap();
        let fd = k.open("/data/f", OpenFlags::RDONLY).unwrap();
        // Find where the file starts on disk and put a zone boundary in
        // the middle of its (single) layout run.
        let one = fsleds_get(&mut k, fd, &t).unwrap();
        assert_eq!(one.len(), 1, "precondition: one cold extent");
        let exts = k.page_extents(fd).unwrap();
        let (dev, first_sector) = match exts[0].location {
            sleds_fs::PageLocation::Device { dev, sector } => (dev, sector),
            _ => panic!("cold file must be on the device"),
        };
        let boundary = first_sector + 3 * SECTORS_PER_PAGE;
        t.fill_device_zones(
            dev,
            vec![
                (0, crate::SledsEntry::new(0.018, 11e6)),
                (boundary, crate::SledsEntry::new(0.018, 7e6)),
            ],
        );
        let sleds = fsleds_get(&mut k, fd, &t).unwrap();
        assert_eq!(sleds.len(), 2, "one extent, two zones, two SLEDs");
        assert_eq!(sleds[0].length, 3 * PAGE_SIZE);
        assert_eq!(sleds[0].bandwidth, 11e6);
        assert_eq!(sleds[1].offset, 3 * PAGE_SIZE);
        assert_eq!(sleds[1].length, 5 * PAGE_SIZE);
        assert_eq!(sleds[1].bandwidth, 7e6);
    }

    #[test]
    fn offline_device_prices_extents_unavailable() {
        use sleds_devices::FaultPlan;
        use sleds_sim_core::{SimDuration, SimTime};
        let (mut k, t) = setup();
        let data = vec![0u8; 4 * PAGE_SIZE as usize];
        k.install_file("/data/f", &data).unwrap();
        let fd = k.open("/data/f", OpenFlags::RDONLY).unwrap();
        let plan = FaultPlan::new().offline(
            "hda",
            SimTime::ZERO,
            SimTime::from_nanos(u64::MAX),
            SimDuration::from_millis(1),
        );
        k.apply_fault_plan(&plan);
        let sleds = fsleds_get(&mut k, fd, &t).unwrap();
        assert_eq!(sleds.len(), 1);
        assert!(sleds[0].unavailable());
        assert!(sleds[0].delivery_time().is_infinite());
        // Coverage is still exact: degradation changes prices, not shape.
        assert_eq!(sleds[0].length, data.len() as u64);
    }

    #[test]
    fn degraded_device_inflates_latency_and_deflates_bandwidth() {
        use sleds_devices::FaultPlan;
        use sleds_sim_core::SimTime;
        let (mut k, t) = setup();
        let data = vec![0u8; 4 * PAGE_SIZE as usize];
        k.install_file("/data/f", &data).unwrap();
        let fd = k.open("/data/f", OpenFlags::RDONLY).unwrap();
        let clean = fsleds_get(&mut k, fd, &t).unwrap();
        let plan =
            FaultPlan::new().degraded("hda", SimTime::ZERO, SimTime::from_nanos(u64::MAX), 3.0);
        k.apply_fault_plan(&plan);
        let slow = fsleds_get(&mut k, fd, &t).unwrap();
        assert_eq!(slow.len(), 1);
        assert!(!slow[0].unavailable());
        assert!((slow[0].latency - clean[0].latency * 3.0).abs() < 1e-12);
        assert!((slow[0].bandwidth - clean[0].bandwidth / 3.0).abs() < 1e-6);
    }

    fn volume_setup(
        layout: sleds_fs::VolumeLayout,
        n: usize,
    ) -> (Kernel, SledsTable, Vec<sleds_fs::DeviceId>) {
        let mut k = Kernel::table2();
        k.mkdir("/vol").unwrap();
        let members: Vec<Box<dyn sleds_devices::BlockDevice>> = (0..n)
            .map(|i| {
                Box::new(DiskDevice::table2_disk(format!("vd{i}")))
                    as Box<dyn sleds_devices::BlockDevice>
            })
            .collect();
        let m = k.mount_volume("/vol", layout, members).unwrap();
        let devs = k.volume_members(m);
        let mut t = SledsTable::new();
        t.fill_memory(crate::SledsEntry::new(175e-9, 48e6));
        // Distinct prices per member so selection is observable: member i
        // costs (i+1) * 10ms latency at (10 - i) MB/s.
        for (i, &d) in devs.iter().enumerate() {
            t.fill_device(
                d,
                crate::SledsEntry::new(0.010 * (i + 1) as f64, (10 - i) as f64 * 1e6),
            );
        }
        (k, t, devs)
    }

    #[test]
    fn mirrored_extent_is_priced_at_cheapest_replica() {
        let (mut k, t, _) = volume_setup(sleds_fs::VolumeLayout::Mirrored, 2);
        let data = vec![0u8; 4 * PAGE_SIZE as usize];
        k.install_file("/vol/f", &data).unwrap();
        let fd = k.open("/vol/f", OpenFlags::RDONLY).unwrap();
        let sleds = fsleds_get(&mut k, fd, &t).unwrap();
        assert_eq!(sleds.len(), 1);
        assert_eq!(sleds[0].latency, 0.010, "primary is the cheapest member");
        assert_eq!(sleds[0].length, data.len() as u64);
    }

    #[test]
    fn mirrored_extent_with_offline_primary_prices_the_mirror() {
        use sleds_devices::FaultPlan;
        use sleds_sim_core::{SimDuration, SimTime};
        let (mut k, t, _) = volume_setup(sleds_fs::VolumeLayout::Mirrored, 2);
        let data = vec![0u8; 4 * PAGE_SIZE as usize];
        k.install_file("/vol/f", &data).unwrap();
        let fd = k.open("/vol/f", OpenFlags::RDONLY).unwrap();
        let plan = FaultPlan::new().offline(
            "vd0",
            SimTime::ZERO,
            SimTime::from_nanos(u64::MAX),
            SimDuration::from_millis(1),
        );
        k.apply_fault_plan(&plan);
        let sleds = fsleds_get(&mut k, fd, &t).unwrap();
        assert_eq!(sleds.len(), 1);
        assert!(
            !sleds[0].unavailable(),
            "a mirrored file with one offline member must stay available"
        );
        assert_eq!(sleds[0].latency, 0.020, "priced at the surviving mirror");
    }

    #[test]
    fn mirrored_extent_with_all_members_offline_is_unavailable() {
        use sleds_devices::FaultPlan;
        use sleds_sim_core::{SimDuration, SimTime};
        let (mut k, t, _) = volume_setup(sleds_fs::VolumeLayout::Mirrored, 2);
        let data = vec![0u8; PAGE_SIZE as usize];
        k.install_file("/vol/f", &data).unwrap();
        let fd = k.open("/vol/f", OpenFlags::RDONLY).unwrap();
        let plan = FaultPlan::new()
            .offline(
                "vd0",
                SimTime::ZERO,
                SimTime::from_nanos(u64::MAX),
                SimDuration::from_millis(1),
            )
            .offline(
                "vd1",
                SimTime::ZERO,
                SimTime::from_nanos(u64::MAX),
                SimDuration::from_millis(1),
            );
        k.apply_fault_plan(&plan);
        let sleds = fsleds_get(&mut k, fd, &t).unwrap();
        assert_eq!(sleds.len(), 1);
        assert!(sleds[0].unavailable());
    }

    #[test]
    fn coded_extent_is_priced_at_kth_cheapest_fragment() {
        let (mut k, t, _) = volume_setup(sleds_fs::VolumeLayout::Coded { k: 2 }, 3);
        let data = vec![0u8; 4 * PAGE_SIZE as usize];
        k.install_file("/vol/f", &data).unwrap();
        let fd = k.open("/vol/f", OpenFlags::RDONLY).unwrap();
        let sleds = fsleds_get(&mut k, fd, &t).unwrap();
        assert_eq!(sleds.len(), 1);
        // k = 2: the straggler of the two cheapest members (10ms, 20ms)
        // sets the price.
        assert_eq!(sleds[0].latency, 0.020);
    }

    #[test]
    fn cached_pages_of_a_mirrored_file_stay_memory_priced() {
        let (mut k, t, _) = volume_setup(sleds_fs::VolumeLayout::Mirrored, 2);
        let data = vec![0u8; 4 * PAGE_SIZE as usize];
        k.install_file("/vol/f", &data).unwrap();
        let fd = k.open("/vol/f", OpenFlags::RDONLY).unwrap();
        k.read(fd, 2 * PAGE_SIZE as usize).unwrap();
        let sleds = fsleds_get(&mut k, fd, &t).unwrap();
        assert_eq!(sleds.len(), 2);
        assert!((sleds[0].bandwidth - 48e6).abs() < 1.0, "head is cached");
        assert_eq!(sleds[1].latency, 0.010, "tail priced at cheapest replica");
    }

    #[test]
    fn fully_cached_file_is_one_memory_sled() {
        let (mut k, t) = setup();
        let data = vec![0u8; 6 * PAGE_SIZE as usize];
        k.install_file("/data/f", &data).unwrap();
        let fd = k.open("/data/f", OpenFlags::RDONLY).unwrap();
        k.read(fd, data.len()).unwrap();
        let sleds = fsleds_get(&mut k, fd, &t).unwrap();
        assert_eq!(sleds.len(), 1);
        assert!((sleds[0].bandwidth - 48e6).abs() < 1.0);
    }
}
