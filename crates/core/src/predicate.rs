//! The `find -latency` predicate.
//!
//! The paper's modified `find` accepts `-latency +n` (total estimated
//! delivery time greater than `n` seconds), `-latency n` (exactly `n`, in
//! whole units, like `-atime`), and `-latency -n` (less than `n`). An `m` or
//! `M` before the number selects milliseconds, `u` or `U` microseconds.

use std::cmp::Ordering;

use sleds_sim_core::{Errno, SimError, SimResult};

/// A parsed `-latency` argument.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LatencyPredicate {
    /// Required comparison of the estimate against the threshold.
    cmp: Ordering,
    /// Unit size in seconds (1, 1e-3 or 1e-6).
    unit: f64,
    /// Threshold in units.
    n: u64,
}

impl LatencyPredicate {
    /// Parses a specification like `+5`, `-m200` or `u30`.
    ///
    /// Grammar: `[+|-] [m|M|u|U] digits`. `+` selects *greater than*, `-`
    /// *less than*, no sign *exactly* (in whole units).
    pub fn parse(spec: &str) -> SimResult<LatencyPredicate> {
        let bad = || SimError::new(Errno::Einval, format!("-latency {spec:?}"));
        let mut rest = spec;
        let cmp = match rest.as_bytes().first() {
            Some(b'+') => {
                rest = &rest[1..];
                Ordering::Greater
            }
            Some(b'-') => {
                rest = &rest[1..];
                Ordering::Less
            }
            Some(_) => Ordering::Equal,
            None => return Err(bad()),
        };
        let unit = match rest.as_bytes().first() {
            Some(b'm' | b'M') => {
                rest = &rest[1..];
                1e-3
            }
            Some(b'u' | b'U') => {
                rest = &rest[1..];
                1e-6
            }
            _ => 1.0,
        };
        if rest.is_empty() || !rest.bytes().all(|b| b.is_ascii_digit()) {
            return Err(bad());
        }
        let n: u64 = rest.parse().map_err(|_| bad())?;
        Ok(LatencyPredicate { cmp, unit, n })
    }

    /// The parsed `(comparison, unit seconds, threshold in units)` triple.
    /// The pick-program compiler uses this to emit bytecode that
    /// reproduces [`LatencyPredicate::matches`] operation for operation.
    pub fn parts(&self) -> (Ordering, f64, u64) {
        (self.cmp, self.unit, self.n)
    }

    /// Tests an estimated delivery time (seconds) against the predicate.
    ///
    /// Like `find -atime`, the "exactly n" form compares in whole units:
    /// an estimate of 5.4 seconds matches `-latency 5`.
    pub fn matches(&self, estimate_secs: f64) -> bool {
        match self.cmp {
            Ordering::Greater => estimate_secs > self.n as f64 * self.unit,
            Ordering::Less => estimate_secs < self.n as f64 * self.unit,
            Ordering::Equal => (estimate_secs / self.unit).floor() as u64 == self.n,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_plain_seconds() {
        let p = LatencyPredicate::parse("5").unwrap();
        assert!(p.matches(5.0));
        assert!(p.matches(5.9));
        assert!(!p.matches(6.0));
        assert!(!p.matches(4.99));
    }

    #[test]
    fn parse_greater_and_less() {
        let gt = LatencyPredicate::parse("+2").unwrap();
        assert!(gt.matches(2.01));
        assert!(!gt.matches(2.0));
        let lt = LatencyPredicate::parse("-2").unwrap();
        assert!(lt.matches(1.99));
        assert!(!lt.matches(2.0));
    }

    #[test]
    fn parse_millis_and_micros() {
        let p = LatencyPredicate::parse("+m200").unwrap();
        assert!(p.matches(0.25));
        assert!(!p.matches(0.15));
        let q = LatencyPredicate::parse("-U30").unwrap();
        assert!(q.matches(10e-6));
        assert!(!q.matches(50e-6));
        let r = LatencyPredicate::parse("M5").unwrap();
        assert!(r.matches(0.0055));
        assert!(!r.matches(0.0065));
    }

    #[test]
    fn parse_rejects_garbage() {
        for bad in ["", "+", "-", "m", "+m", "5s", "x5", "5.5", "+-5", "m5u"] {
            assert!(
                LatencyPredicate::parse(bad).is_err(),
                "{bad:?} should not parse"
            );
        }
    }

    #[test]
    fn paper_example_prune_tape() {
        // "users may wish to ignore all tape-resident data": keep only
        // files cheaper than 10 seconds.
        let keep = LatencyPredicate::parse("-10").unwrap();
        assert!(keep.matches(0.3)); // disk file
        assert!(!keep.matches(55.0)); // tape-resident file
    }
}
