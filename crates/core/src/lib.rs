//! Storage Latency Estimation Descriptors (SLEDs).
//!
//! This crate is the paper's contribution: an API that lets applications see
//! the *dynamic state* of the storage system — which parts of a file are in
//! the buffer cache, which are on disk, CD-ROM, NFS or tape — expressed in a
//! device-independent vocabulary of `(offset, length, latency, bandwidth)`
//! descriptors (Figure 2 of the paper):
//!
//! ```c
//! struct sled {
//!     long offset;     /* into the file */
//!     long length;     /* of the segment */
//!     float latency;   /* in seconds */
//!     float bandwidth; /* in bytes/sec */
//! };
//! ```
//!
//! The pieces, mirroring the paper's implementation section:
//!
//! * [`SledsTable`] — the kernel's per-device latency/bandwidth table,
//!   filled at boot from lmbench-style measurements (`FSLEDS_FILL`;
//!   `sleds-lmbench` produces it in this workspace);
//! * [`fsleds_get`] — the `FSLEDS_GET` ioctl: walk an open file's pages,
//!   assign each the latency/bandwidth of its current home, and coalesce
//!   equal neighbours into SLEDs;
//! * [`pick`] — the user-space pick library (`sleds_pick_init` /
//!   `sleds_pick_next_read` / `sleds_pick_finish`) that orders reads
//!   lowest-latency-first, including record-boundary adjustment (Figure 4);
//! * [`estimate`] — `sleds_total_delivery_time` with its `attack_plan`
//!   argument (`SLEDS_LINEAR` / `SLEDS_BEST`);
//! * [`predicate`] — the `find -latency [+|-][m|u]n` predicate;
//! * [`report`] — the gmc-style human-readable rendering.

pub mod cache;
pub mod estimate;
pub mod forecast;
pub mod get;
pub mod lease;
pub mod pick;
pub mod predicate;
pub mod program;
pub mod recal;
pub mod replica;
pub mod report;
pub mod table;

pub use cache::SledCache;
pub use estimate::{estimate_seconds, total_delivery_time, AttackPlan};
pub use forecast::{forecast, SledForecast};
pub use get::fsleds_get;
pub use lease::SledLease;
pub use pick::{PickConfig, PickSession, UnavailablePolicy};
pub use predicate::LatencyPredicate;
pub use program::{compile_latency, pricing_from, sleds_from_prog};
pub use recal::{
    recalibrate, recalibrate_from_metrics, ClassObservation, RecalOutcome, RecalPolicy,
};
pub use replica::select_min_cost;
pub use report::{ObservedError, SledReport};
pub use table::{SledsEntry, SledsTable};

/// A Storage Latency Estimation Descriptor.
///
/// Describes one contiguous byte range of a file whose pages share retrieval
/// characteristics: `latency` seconds to the first byte, then `bandwidth`
/// bytes per second. The paper stores both estimates as C `float`s because
/// the value range (sub-microsecond memory to hundreds-of-seconds tape)
/// overflows integers; we use `f64` for the same reason with less rounding.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Sled {
    /// Byte offset of this segment within the file.
    pub offset: u64,
    /// Length of this segment in bytes.
    pub length: u64,
    /// Estimated latency to the segment's first byte, in seconds.
    pub latency: f64,
    /// Estimated delivery bandwidth once flowing, in bytes per second.
    pub bandwidth: f64,
}

impl Sled {
    /// End offset (exclusive) of the segment.
    pub fn end(&self) -> u64 {
        // Saturation intended: a segment at the top of the offset space
        // still reports a well-ordered end.
        self.offset.saturating_add(self.length)
    }

    /// Estimated time to deliver this whole segment, in seconds.
    pub fn delivery_time(&self) -> f64 {
        if self.length == 0 {
            return 0.0;
        }
        if self.bandwidth <= 0.0 {
            return f64::INFINITY;
        }
        self.latency + self.length as f64 / self.bandwidth
    }

    /// True when this segment is currently unreachable: its device is in
    /// an offline fault window, so `FSLEDS_GET` priced it at infinite
    /// latency and zero bandwidth. [`delivery_time`](Sled::delivery_time)
    /// is infinite and pick plans defer or prune it.
    pub fn unavailable(&self) -> bool {
        self.length > 0 && (self.bandwidth <= 0.0 || !self.latency.is_finite())
    }

    /// True when two SLEDs report the same performance estimates.
    ///
    /// Bit identity, not float equality: levels are "same" only when they
    /// carry the exact same reported values, and NaN reports stay grouped
    /// with themselves instead of splitting every level.
    pub fn same_level(&self, other: &Sled) -> bool {
        self.latency.to_bits() == other.latency.to_bits()
            && self.bandwidth.to_bits() == other.bandwidth.to_bits()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivery_time_combines_latency_and_bandwidth() {
        let s = Sled {
            offset: 0,
            length: 1_000_000,
            latency: 0.5,
            bandwidth: 1e6,
        };
        assert!((s.delivery_time() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn empty_segment_is_free() {
        let s = Sled {
            offset: 10,
            length: 0,
            latency: 5.0,
            bandwidth: 1.0,
        };
        assert_eq!(s.delivery_time(), 0.0);
    }

    #[test]
    fn zero_bandwidth_is_infinite() {
        let s = Sled {
            offset: 0,
            length: 1,
            latency: 0.0,
            bandwidth: 0.0,
        };
        assert!(s.delivery_time().is_infinite());
    }

    #[test]
    fn end_and_same_level() {
        let a = Sled {
            offset: 4096,
            length: 8192,
            latency: 0.018,
            bandwidth: 9e6,
        };
        assert_eq!(a.end(), 12288);
        let b = Sled { offset: 0, ..a };
        assert!(a.same_level(&b));
        let c = Sled { latency: 0.0, ..a };
        assert!(!a.same_level(&c));
    }
}
