//! Human-readable SLED reports — what the paper's gmc properties panel and
//! a SLEDs-aware web browser would show.

use std::fmt;

use crate::estimate::{estimate_seconds, AttackPlan};
use crate::Sled;

/// Observed prediction error for the device class that would serve a file,
/// from the kernel's rolling accuracy windows (`FSLEDS_STAT`). Attached to
/// a [`SledReport`] it turns the bare ETA into "ETA ± what we've actually
/// been off by lately".
#[derive(Clone, Copy, Debug)]
pub struct ObservedError {
    /// Mean |predicted − actual| / actual over the window.
    pub mean_abs_rel_err: f64,
    /// Audited prediction pairs in the window.
    pub samples: usize,
}

/// A formatted report over a file's SLED vector: one row per SLED plus the
/// estimated total delivery times, as in the paper's Figure 6 panel.
#[derive(Clone, Debug)]
pub struct SledReport {
    name: String,
    sleds: Vec<Sled>,
    eta_error: Option<ObservedError>,
}

impl SledReport {
    /// Builds a report for a file `name` from its SLEDs.
    pub fn new(name: impl Into<String>, sleds: Vec<Sled>) -> Self {
        SledReport {
            name: name.into(),
            sleds,
            eta_error: None,
        }
    }

    /// Attaches the observed prediction error of the file's serving class;
    /// the rendered ETA then carries an error bar.
    pub fn with_observed_error(mut self, err: Option<ObservedError>) -> Self {
        self.eta_error = err;
        self
    }

    /// The attached observed error, if any.
    pub fn observed_error(&self) -> Option<ObservedError> {
        self.eta_error
    }

    /// The SLED rows.
    pub fn sleds(&self) -> &[Sled] {
        &self.sleds
    }

    /// Estimated total delivery time (seconds) under `plan`.
    pub fn total_secs(&self, plan: AttackPlan) -> f64 {
        estimate_seconds(&self.sleds, plan)
    }

    /// Latency below which a SLED is considered to be in primary memory.
    /// Memory measures in the hundreds of nanoseconds; the fastest device
    /// level (local disk) in the milliseconds — anything under a
    /// millisecond can only be cache.
    pub const MEMORY_LATENCY_CUTOFF: f64 = 1e-3;

    /// Fraction of the file's bytes resident at memory-like latency.
    pub fn cached_fraction(&self) -> f64 {
        let total: u64 = self.sleds.iter().map(|s| s.length).sum();
        if total == 0 {
            return 0.0;
        }
        let cheap: u64 = self
            .sleds
            .iter()
            .filter(|s| s.latency < Self::MEMORY_LATENCY_CUTOFF)
            .map(|s| s.length)
            .sum();
        cheap as f64 / total as f64
    }
}

/// Renders a latency in the most readable unit.
fn fmt_secs(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.2}s")
    } else if s >= 1e-3 {
        format!("{:.2}ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.2}us", s * 1e6)
    } else {
        format!("{:.0}ns", s * 1e9)
    }
}

impl fmt::Display for SledReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "SLEDs for {}:", self.name)?;
        writeln!(
            f,
            "  {:>12} {:>12} {:>10} {:>12}",
            "offset", "length", "latency", "bandwidth"
        )?;
        for s in &self.sleds {
            writeln!(
                f,
                "  {:>12} {:>12} {:>10} {:>9.2}MB/s",
                s.offset,
                s.length,
                fmt_secs(s.latency),
                s.bandwidth / 1e6
            )?;
        }
        writeln!(
            f,
            "  estimated delivery: {} linear, {} reordered",
            fmt_secs(self.total_secs(AttackPlan::Linear)),
            fmt_secs(self.total_secs(AttackPlan::Best))
        )?;
        if let Some(e) = self.eta_error {
            let best = self.total_secs(AttackPlan::Best);
            if best.is_finite() {
                writeln!(
                    f,
                    "  observed error: ±{:.0}% over last {} predictions (±{})",
                    e.mean_abs_rel_err * 100.0,
                    e.samples,
                    fmt_secs(best * e.mean_abs_rel_err),
                )?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SledReport {
        SledReport::new(
            "/data/bigfile",
            vec![
                Sled {
                    offset: 0,
                    length: 8192,
                    latency: 0.018,
                    bandwidth: 9e6,
                },
                Sled {
                    offset: 8192,
                    length: 4096,
                    latency: 175e-9,
                    bandwidth: 48e6,
                },
            ],
        )
    }

    #[test]
    fn report_contains_rows_and_totals() {
        let r = sample();
        let text = format!("{r}");
        assert!(text.contains("/data/bigfile"));
        assert!(text.contains("18.00ms"));
        assert!(text.contains("175ns"));
        assert!(text.contains("estimated delivery"));
    }

    #[test]
    fn observed_error_bar_renders_with_eta() {
        let r = sample().with_observed_error(Some(ObservedError {
            mean_abs_rel_err: 0.10,
            samples: 12,
        }));
        let text = format!("{r}");
        assert!(text.contains("observed error: ±10% over last 12 predictions"));
        // Without an attached error the line is absent.
        assert!(!format!("{}", sample()).contains("observed error"));
    }

    #[test]
    fn cached_fraction_counts_cheapest_level() {
        let r = sample();
        let frac = r.cached_fraction();
        assert!((frac - 4096.0 / 12288.0).abs() < 1e-12);
    }

    #[test]
    fn empty_report_is_sane() {
        let r = SledReport::new("empty", vec![]);
        assert_eq!(r.cached_fraction(), 0.0);
        assert_eq!(r.total_secs(AttackPlan::Linear), 0.0);
        let _ = format!("{r}");
    }

    #[test]
    fn fmt_secs_units() {
        assert_eq!(fmt_secs(2.5), "2.50s");
        assert_eq!(fmt_secs(0.018), "18.00ms");
        assert_eq!(fmt_secs(42e-6), "42.00us");
        assert_eq!(fmt_secs(175e-9), "175ns");
    }
}
