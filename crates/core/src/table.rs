//! The sleds table: per-device latency and bandwidth.
//!
//! The paper keeps this table in the kernel, filled once at boot by a script
//! in `/etc/rc.d/init.d` that runs lmbench and issues the new `FSLEDS_FILL`
//! ioctl — one `(latency, bandwidth)` entry per storage device plus one for
//! primary memory. [`SledsTable`] is that table; `sleds-lmbench` plays the
//! role of the boot script.

use std::collections::BTreeMap;

use sleds_fs::DeviceId;

/// One row of the sleds table.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SledsEntry {
    /// Latency to the first byte, in seconds.
    pub latency: f64,
    /// Streaming bandwidth, in bytes per second.
    pub bandwidth: f64,
}

impl SledsEntry {
    /// Creates an entry.
    pub fn new(latency: f64, bandwidth: f64) -> Self {
        SledsEntry { latency, bandwidth }
    }
}

/// The kernel's per-device performance table (`FSLEDS_FILL`).
///
/// The paper's implementation keeps a single entry per device and lists
/// per-zone entries ("the different bandwidths of different disk zones") as
/// future work; this table supports both. When a device has zone rows they
/// take precedence over its flat row, so one file can yield SLEDs with
/// different bandwidths for its outer-zone and inner-zone extents.
#[derive(Clone, Debug, Default)]
pub struct SledsTable {
    memory: Option<SledsEntry>,
    devices: BTreeMap<DeviceId, SledsEntry>,
    /// Per-device zone rows: `(first sector, entry)`, sorted by sector.
    zones: BTreeMap<DeviceId, Vec<(u64, SledsEntry)>>,
    /// When set, `fsleds_get` asks devices for dynamic self-reports
    /// (`BlockDevice::dynamic_probe`) before falling back to table rows —
    /// the client/server SLEDs channel of the paper's section 6.
    trust_device_reports: bool,
    /// Table generation: 0 for a boot-time fill, bumped by each
    /// recalibration. Predictions are tagged with it so the accuracy
    /// audit can tell which table priced each estimate.
    generation: u64,
    /// Measured cost of one kernel boundary crossing, in seconds —
    /// the `lat_syscall` row. Batched submission amortizes exactly this.
    crossing_cpu: Option<f64>,
}

impl SledsTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        SledsTable::default()
    }

    /// Fills the primary-memory row.
    pub fn fill_memory(&mut self, entry: SledsEntry) {
        self.memory = Some(entry);
    }

    /// Fills (or replaces) a device row.
    pub fn fill_device(&mut self, dev: DeviceId, entry: SledsEntry) {
        self.devices.insert(dev, entry);
    }

    /// The memory row, if filled.
    pub fn memory(&self) -> Option<SledsEntry> {
        self.memory
    }

    /// The row for `dev`, if filled.
    pub fn device(&self, dev: DeviceId) -> Option<SledsEntry> {
        self.devices.get(&dev).copied()
    }

    /// Fills per-zone rows for a device (`rows` as `(first sector, entry)`;
    /// sorted internally). Zone rows take precedence over the flat row.
    pub fn fill_device_zones(&mut self, dev: DeviceId, mut rows: Vec<(u64, SledsEntry)>) {
        rows.sort_by_key(|(s, _)| *s);
        self.zones.insert(dev, rows);
    }

    /// The entry governing `sector` of `dev`: the zone row containing it if
    /// zone rows exist, otherwise the flat device row.
    pub fn entry_at(&self, dev: DeviceId, sector: u64) -> Option<SledsEntry> {
        if let Some(rows) = self.zones.get(&dev) {
            let idx = rows.partition_point(|(s, _)| *s <= sector);
            if idx > 0 {
                return Some(rows[idx - 1].1);
            }
        }
        self.device(dev)
    }

    /// True when `dev` has per-zone rows.
    pub fn has_zones(&self, dev: DeviceId) -> bool {
        self.zones.contains_key(&dev)
    }

    /// The first sector strictly after `sector` at which the governing entry
    /// of `dev` may change — i.e. the start of the next zone row. `None`
    /// when the entry is constant from `sector` to the end of the device
    /// (no zone rows, or `sector` is in the last zone). Lets an
    /// extent-granular walk split a device extent only where the table
    /// actually changes instead of probing every page.
    pub fn zone_end(&self, dev: DeviceId, sector: u64) -> Option<u64> {
        let rows = self.zones.get(&dev)?;
        let idx = rows.partition_point(|(s, _)| *s <= sector);
        rows.get(idx).map(|(s, _)| *s)
    }

    /// Enables consulting device dynamic self-reports in `fsleds_get`.
    pub fn set_trust_device_reports(&mut self, trust: bool) {
        self.trust_device_reports = trust;
    }

    /// Whether device dynamic self-reports are consulted.
    pub fn trust_device_reports(&self) -> bool {
        self.trust_device_reports
    }

    /// The table's generation (0 = boot-time fill).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Stamps the table's generation; recalibration sets it to the
    /// kernel's sleds epoch.
    pub fn set_generation(&mut self, generation: u64) {
        self.generation = generation;
    }

    /// Fills the boundary-crossing row (seconds per crossing).
    pub fn fill_crossing(&mut self, seconds: f64) {
        self.crossing_cpu = Some(seconds);
    }

    /// Measured seconds per kernel boundary crossing, if calibrated.
    pub fn crossing_cpu(&self) -> Option<f64> {
        self.crossing_cpu
    }

    /// Drops a device's per-zone rows, so its flat row governs again.
    /// Recalibration uses this: the observed class-wide rates replace the
    /// boot-time zone survey, which no longer reflects what was measured.
    pub fn clear_device_zones(&mut self, dev: DeviceId) {
        self.zones.remove(&dev);
    }

    /// Number of device rows.
    pub fn device_count(&self) -> usize {
        self.devices.len()
    }

    /// True once the memory row is present — the minimum for `fsleds_get`
    /// to be usable at all.
    pub fn is_filled(&self) -> bool {
        self.memory.is_some()
    }

    /// Iterates device rows in ascending `DeviceId` order.
    pub fn iter_devices(&self) -> impl Iterator<Item = (DeviceId, SledsEntry)> + '_ {
        self.devices.iter().map(|(d, e)| (*d, *e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fill_and_query() {
        let mut t = SledsTable::new();
        assert!(!t.is_filled());
        t.fill_memory(SledsEntry::new(175e-9, 48e6));
        t.fill_device(DeviceId(0), SledsEntry::new(0.018, 9e6));
        assert!(t.is_filled());
        assert_eq!(t.memory().unwrap().bandwidth, 48e6);
        assert_eq!(t.device(DeviceId(0)).unwrap().latency, 0.018);
        assert!(t.device(DeviceId(1)).is_none());
        assert_eq!(t.device_count(), 1);
    }

    #[test]
    fn zone_rows_take_precedence() {
        let mut t = SledsTable::new();
        t.fill_device(DeviceId(0), SledsEntry::new(0.018, 9e6));
        t.fill_device_zones(
            DeviceId(0),
            vec![
                (5_000, SledsEntry::new(0.018, 7e6)),
                (0, SledsEntry::new(0.018, 11e6)),
            ],
        );
        assert_eq!(t.entry_at(DeviceId(0), 0).unwrap().bandwidth, 11e6);
        assert_eq!(t.entry_at(DeviceId(0), 4_999).unwrap().bandwidth, 11e6);
        assert_eq!(t.entry_at(DeviceId(0), 5_000).unwrap().bandwidth, 7e6);
        assert!(t.has_zones(DeviceId(0)));
        // A device without zone rows falls back to its flat row.
        t.fill_device(DeviceId(1), SledsEntry::new(0.27, 1e6));
        assert_eq!(t.entry_at(DeviceId(1), 123).unwrap().bandwidth, 1e6);
        assert!(!t.has_zones(DeviceId(1)));
    }

    #[test]
    fn entry_at_without_any_rows_is_none() {
        let t = SledsTable::new();
        assert!(t.entry_at(DeviceId(3), 0).is_none());
    }

    #[test]
    fn zone_end_reports_next_boundary() {
        let mut t = SledsTable::new();
        assert_eq!(t.zone_end(DeviceId(0), 0), None);
        t.fill_device_zones(
            DeviceId(0),
            vec![
                (1_000, SledsEntry::new(0.018, 11e6)),
                (5_000, SledsEntry::new(0.018, 7e6)),
            ],
        );
        // Before the first row the entry changes when the first row starts.
        assert_eq!(t.zone_end(DeviceId(0), 0), Some(1_000));
        assert_eq!(t.zone_end(DeviceId(0), 999), Some(1_000));
        assert_eq!(t.zone_end(DeviceId(0), 1_000), Some(5_000));
        assert_eq!(t.zone_end(DeviceId(0), 4_999), Some(5_000));
        // Inside the last zone the entry never changes again.
        assert_eq!(t.zone_end(DeviceId(0), 5_000), None);
        assert_eq!(t.zone_end(DeviceId(0), 1 << 40), None);
    }

    #[test]
    fn generation_stamps_and_zone_rows_clear() {
        let mut t = SledsTable::new();
        assert_eq!(t.generation(), 0);
        t.set_generation(3);
        assert_eq!(t.generation(), 3);
        t.fill_device(DeviceId(0), SledsEntry::new(0.018, 9e6));
        t.fill_device_zones(DeviceId(0), vec![(0, SledsEntry::new(0.018, 11e6))]);
        assert_eq!(t.entry_at(DeviceId(0), 0).unwrap().bandwidth, 11e6);
        t.clear_device_zones(DeviceId(0));
        assert!(!t.has_zones(DeviceId(0)));
        assert_eq!(t.entry_at(DeviceId(0), 0).unwrap().bandwidth, 9e6);
    }

    #[test]
    fn refill_replaces() {
        let mut t = SledsTable::new();
        t.fill_device(DeviceId(2), SledsEntry::new(1.0, 1.0));
        t.fill_device(DeviceId(2), SledsEntry::new(2.0, 2.0));
        assert_eq!(t.device(DeviceId(2)).unwrap().latency, 2.0);
        assert_eq!(t.device_count(), 1);
    }
}
