//! `sleds_total_delivery_time`: estimating whole-file retrieval time.
//!
//! Takes the paper's `attack_plan` argument: `SLEDS_LINEAR` models reading
//! the file front to back (every SLED pays its own first-byte latency),
//! `SLEDS_BEST` models a reordered read that drains each storage level in
//! one streaming pass (one first-byte latency per distinct level).

use sleds_fs::{Fd, Kernel};
use sleds_sim_core::SimResult;

use crate::get::fsleds_get;
use crate::table::SledsTable;
use crate::Sled;

/// The intended access pattern for a delivery-time estimate.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AttackPlan {
    /// Front-to-back read: each SLED pays its latency (`SLEDS_LINEAR`).
    Linear,
    /// Reordered read: one latency per distinct performance level
    /// (`SLEDS_BEST`).
    Best,
}

/// Estimates total delivery time in seconds for a SLED vector.
pub fn estimate_seconds(sleds: &[Sled], plan: AttackPlan) -> f64 {
    match plan {
        AttackPlan::Linear => sleds.iter().map(Sled::delivery_time).sum(),
        AttackPlan::Best => {
            // Group by identical (latency, bandwidth): each level pays its
            // latency once and streams its total bytes.
            let mut levels: Vec<(f64, f64, u64)> = Vec::new();
            for s in sleds {
                match levels.iter_mut().find(|(lat, bw, _)| {
                    lat.to_bits() == s.latency.to_bits() && bw.to_bits() == s.bandwidth.to_bits()
                }) {
                    Some((_, _, bytes)) => *bytes += s.length,
                    None => levels.push((s.latency, s.bandwidth, s.length)),
                }
            }
            levels
                .into_iter()
                .map(|(lat, bw, bytes)| {
                    if bytes == 0 {
                        0.0
                    } else if bw <= 0.0 {
                        f64::INFINITY
                    } else {
                        lat + bytes as f64 / bw
                    }
                })
                .sum()
        }
    }
}

/// `sleds_total_delivery_time`: retrieves the SLEDs for `fd` and estimates
/// the time to read the whole file under `plan`.
pub fn total_delivery_time(
    kernel: &mut Kernel,
    table: &SledsTable,
    fd: Fd,
    plan: AttackPlan,
) -> SimResult<f64> {
    let sleds = fsleds_get(kernel, fd, table)?;
    let est = estimate_seconds(&sleds, plan);
    if kernel.tracing_enabled() && est.is_finite() {
        kernel.trace_predict(
            fd,
            sleds_sim_core::SimDuration::from_secs_f64(est),
            table.generation(),
        )?;
    }
    Ok(est)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sled(offset: u64, length: u64, latency: f64, bandwidth: f64) -> Sled {
        Sled {
            offset,
            length,
            latency,
            bandwidth,
        }
    }

    #[test]
    fn linear_sums_each_sled() {
        let v = vec![
            sled(0, 1_000_000, 0.018, 1e6),
            sled(1_000_000, 1_000_000, 0.0, 48e6),
            sled(2_000_000, 1_000_000, 0.018, 1e6),
        ];
        let t = estimate_seconds(&v, AttackPlan::Linear);
        let expect = (0.018 + 1.0) + (1.0 / 48.0) + (0.018 + 1.0);
        assert!((t - expect).abs() < 1e-9, "{t} vs {expect}");
    }

    #[test]
    fn best_pays_each_level_once() {
        let v = vec![
            sled(0, 1_000_000, 0.018, 1e6),
            sled(1_000_000, 1_000_000, 0.0, 48e6),
            sled(2_000_000, 1_000_000, 0.018, 1e6),
        ];
        let t = estimate_seconds(&v, AttackPlan::Best);
        let expect = (0.018 + 2.0) + (1.0 / 48.0);
        assert!((t - expect).abs() < 1e-9, "{t} vs {expect}");
    }

    #[test]
    fn best_never_exceeds_linear() {
        let v = vec![
            sled(0, 5_000, 0.13, 2.8e6),
            sled(5_000, 9_000, 175e-9, 48e6),
            sled(14_000, 100_000, 0.13, 2.8e6),
            sled(114_000, 7, 0.27, 1e6),
        ];
        assert!(
            estimate_seconds(&v, AttackPlan::Best)
                <= estimate_seconds(&v, AttackPlan::Linear) + 1e-12
        );
    }

    #[test]
    fn empty_vector_is_zero() {
        assert_eq!(estimate_seconds(&[], AttackPlan::Linear), 0.0);
        assert_eq!(estimate_seconds(&[], AttackPlan::Best), 0.0);
    }

    #[test]
    fn zero_bandwidth_propagates_infinity() {
        let v = vec![sled(0, 1, 1.0, 0.0)];
        assert!(estimate_seconds(&v, AttackPlan::Best).is_infinite());
    }
}
