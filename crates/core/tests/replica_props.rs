//! Min-cost replica selection vs brute force.
//!
//! [`sleds::select_min_cost`] must agree with an exhaustive oracle on
//! every randomized candidate set: for mirrors, enumerate every available
//! member and take the cheapest delivery time; for (k, n) codes,
//! enumerate every k-subset of available members and take the subset
//! whose straggler is cheapest. The oracle is quadratic-to-exponential
//! and obviously correct; the library is sort-based. They must agree to
//! the bit on the quoted entry.
//!
//! Gated behind the `proptests` feature (run with
//! `cargo test -p sleds --features proptests`); case count scales with
//! `SLEDS_CHECK_CASES`.

use sleds::{select_min_cost, SledsEntry};
use sleds_devices::FaultState;
use sleds_sim_core::{check, DetRng};

fn delivery(e: &SledsEntry, length: u64) -> f64 {
    if e.bandwidth <= 0.0 {
        return f64::INFINITY;
    }
    e.latency + length as f64 / e.bandwidth
}

fn degrade_oracle(e: SledsEntry, s: FaultState) -> Option<SledsEntry> {
    match s {
        FaultState::Healthy => Some(e),
        FaultState::Degraded(m) => Some(SledsEntry {
            latency: e.latency * m,
            bandwidth: e.bandwidth / m,
        }),
        FaultState::Offline => None,
    }
}

/// Exhaustive mirror oracle: cheapest available member, ties broken by
/// first appearance (stable, like the library's stable sort).
fn mirror_oracle(cands: &[(SledsEntry, FaultState)], length: u64) -> Option<SledsEntry> {
    let mut best: Option<SledsEntry> = None;
    for &(e, s) in cands {
        let Some(e) = degrade_oracle(e, s) else {
            continue;
        };
        let better = match &best {
            None => true,
            Some(b) => delivery(&e, length).total_cmp(&delivery(b, length)).is_lt(),
        };
        if better {
            best = Some(e);
        }
    }
    best
}

/// Exhaustive coded oracle: over every k-subset of available members,
/// the subset straggler (max delivery) that is cheapest. That minimax is
/// exactly the k-th cheapest available member, but the oracle earns the
/// claim by enumeration instead of assuming it.
fn coded_oracle(cands: &[(SledsEntry, FaultState)], k: usize, length: u64) -> Option<SledsEntry> {
    let avail: Vec<SledsEntry> = cands
        .iter()
        .filter_map(|&(e, s)| degrade_oracle(e, s))
        .collect();
    if avail.len() < k || k == 0 {
        return None;
    }
    let mut best: Option<SledsEntry> = None;
    // Enumerate k-subsets by bitmask; candidate sets are small (≤ 8).
    for mask in 0u32..(1u32 << avail.len()) {
        if mask.count_ones() as usize != k {
            continue;
        }
        let mut straggler: Option<SledsEntry> = None;
        for (i, e) in avail.iter().enumerate() {
            if mask & (1 << i) == 0 {
                continue;
            }
            let slower = match &straggler {
                None => true,
                Some(s) => delivery(e, length).total_cmp(&delivery(s, length)).is_gt(),
            };
            if slower {
                straggler = Some(*e);
            }
        }
        let s = straggler.expect("non-empty subset");
        let better = match &best {
            None => true,
            Some(b) => delivery(&s, length).total_cmp(&delivery(b, length)).is_lt(),
        };
        if better {
            best = Some(s);
        }
    }
    best
}

fn random_candidates(rng: &mut DetRng) -> Vec<(SledsEntry, FaultState)> {
    let n = rng.range_usize(0, 9);
    (0..n)
        .map(|_| {
            // Latencies from sub-ms to tape-scale; bandwidths likewise
            // spread, with occasional exact duplicates to exercise ties.
            let entry = if rng.chance(0.2) {
                SledsEntry {
                    latency: 0.018,
                    bandwidth: 9e6,
                }
            } else {
                SledsEntry {
                    latency: rng.range_u64(1, 100_000_000) as f64 * 1e-9,
                    bandwidth: rng.range_u64(1, 50_000) as f64 * 1e3,
                }
            };
            let state = match rng.range_u64(0, 4) {
                0 => FaultState::Offline,
                1 => FaultState::Degraded(rng.range_u64(2, 40) as f64 / 2.0),
                _ => FaultState::Healthy,
            };
            (entry, state)
        })
        .collect()
}

fn delivery_bits(e: Option<SledsEntry>, length: u64) -> Option<u64> {
    e.map(|e| delivery(&e, length).to_bits())
}

fn mirror_scenario(rng: &mut DetRng) {
    let cands = random_candidates(rng);
    let length = rng.range_u64(1, 1 << 24);
    let got = select_min_cost(&cands, None, length);
    let want = mirror_oracle(&cands, length);
    assert_eq!(
        delivery_bits(got, length),
        delivery_bits(want, length),
        "mirror selection disagrees with brute force on {cands:?} length {length}"
    );
}

fn coded_scenario(rng: &mut DetRng) {
    let cands = random_candidates(rng);
    let length = rng.range_u64(1, 1 << 24);
    let k = rng.range_u64(1, 5) as u32;
    let got = select_min_cost(&cands, Some(k), length);
    let want = coded_oracle(&cands, k as usize, length);
    assert_eq!(
        delivery_bits(got, length),
        delivery_bits(want, length),
        "coded selection disagrees with brute force on {cands:?} k {k} length {length}"
    );
}

#[test]
fn mirror_selection_matches_brute_force() {
    check::run("replica_mirror_vs_brute_force", mirror_scenario);
}

#[test]
fn coded_selection_matches_brute_force() {
    check::run("replica_coded_vs_brute_force", coded_scenario);
}
