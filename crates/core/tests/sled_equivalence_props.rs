//! Extent-based `fsleds_get` vs per-page reference construction.
//!
//! The extent-consuming `FSLEDS_GET` must produce byte-identical SLED
//! vectors to the original per-page construction: walk every page via the
//! retained reference walk, assign each its table entry, coalesce equal
//! neighbours, clip the tail to the file size. This file re-implements
//! that construction (it is the seed's `fsleds_get` body, verbatim in
//! spirit) and drives both against randomized cache states, ragged tails,
//! zone tables, and HSM boundaries.
//!
//! Gated behind the `proptests` feature (run with
//! `cargo test -p sleds --features proptests`); case count scales with
//! `SLEDS_CHECK_CASES`.

use sleds::{fsleds_get, Sled, SledsEntry, SledsTable};
use sleds_devices::{DiskDevice, TapeDevice};
use sleds_fs::{Fd, Kernel, MachineConfig, OpenFlags, PageLocation, Whence};
use sleds_sim_core::{check, ByteSize, DetRng, PAGE_SIZE};

/// The seed's per-page SLED construction, kept as the oracle: one table
/// lookup per page of the reference walk, coalescing equal neighbours.
fn fsleds_get_reference(kernel: &mut Kernel, fd: Fd, table: &SledsTable) -> Vec<Sled> {
    let mem = table.memory().expect("table filled");
    let size = kernel.fstat(fd).unwrap().size;
    let locations = kernel.page_locations_per_page_reference(fd).unwrap();
    let mut out: Vec<Sled> = Vec::new();
    for (i, loc) in locations.iter().enumerate() {
        let entry = match loc {
            PageLocation::Memory => mem,
            PageLocation::Device { dev, sector } => {
                let probed = if table.trust_device_reports() {
                    kernel
                        .device_probe(*dev, *sector)
                        .map(|(latency, bandwidth)| SledsEntry { latency, bandwidth })
                } else {
                    None
                };
                probed
                    .or_else(|| table.entry_at(*dev, *sector))
                    .expect("table row present")
            }
        };
        let offset = i as u64 * PAGE_SIZE;
        let length = PAGE_SIZE.min(size - offset);
        match out.last_mut() {
            Some(last) if last.latency == entry.latency && last.bandwidth == entry.bandwidth => {
                last.length += length;
            }
            _ => out.push(Sled {
                offset,
                length,
                latency: entry.latency,
                bandwidth: entry.bandwidth,
            }),
        }
    }
    out
}

fn assert_sleds_agree(k: &mut Kernel, fd: Fd, t: &SledsTable, ctx: &str) {
    let oracle = fsleds_get_reference(k, fd, t);
    let fast = fsleds_get(k, fd, t).unwrap();
    assert_eq!(fast, oracle, "{ctx}: SLED vectors differ");
}

/// Random disk states, optionally with zone rows splitting the device.
fn disk_scenario(rng: &mut DetRng) {
    let mut cfg = MachineConfig::table2();
    cfg.ram = ByteSize::mib(rng.range_u64(1, 4));
    let mut k = Kernel::new(cfg);
    k.mkdir("/d").unwrap();
    let m = k.mount_disk("/d", DiskDevice::table2_disk("hda")).unwrap();
    let dev = k.device_of_mount(m).unwrap();
    if rng.chance(0.7) {
        k.set_fragmentation(m, rng.range_u64(1, 8), rng.range_u64(0, 64), rng.seed());
    }
    let mut t = SledsTable::new();
    t.fill_memory(SledsEntry::new(175e-9, 48e6));
    t.fill_device(dev, SledsEntry::new(0.018, 9e6));
    if rng.chance(0.5) {
        // Zone rows at random sector boundaries (not page-aligned on
        // purpose: splits must still land on page edges in the output).
        let mut rows = Vec::new();
        let mut s = 0;
        for _ in 0..rng.range_usize(1, 5) {
            rows.push((s, SledsEntry::new(0.018, rng.range_u64(4, 12) as f64 * 1e6)));
            s += rng.range_u64(1, 2_000);
        }
        t.fill_device_zones(dev, rows);
    }

    let pages = rng.range_u64(1, 96);
    let tail = rng.range_u64(1, PAGE_SIZE + 1);
    let size = ((pages - 1) * PAGE_SIZE + tail) as usize;
    k.install_file("/d/f", &vec![5u8; size]).unwrap();
    let fd = k.open("/d/f", OpenFlags::RDONLY).unwrap();
    assert_sleds_agree(&mut k, fd, &t, "cold");

    for round in 0..rng.range_usize(1, 6) {
        let start = rng.range_u64(0, pages);
        let count = rng.range_u64(1, pages - start + 1);
        k.lseek(fd, (start * PAGE_SIZE) as i64, Whence::Set)
            .unwrap();
        k.read(fd, (count * PAGE_SIZE) as usize).unwrap();
        assert_sleds_agree(&mut k, fd, &t, &format!("round {round}"));
    }
}

/// NFS with dynamic self-reports: the per-page probing path.
fn nfs_scenario(rng: &mut DetRng) {
    let mut k = Kernel::table2();
    k.mkdir("/lan").unwrap();
    let srv = sleds_devices::NfsServerDevice::lan_mount("lan0");
    let m = k.mount_device("/lan", Box::new(srv), false).unwrap();
    let dev = k.device_of_mount(m).unwrap();
    let mut t = SledsTable::new();
    t.fill_memory(SledsEntry::new(175e-9, 48e6));
    t.fill_device(dev, SledsEntry::new(0.02, 5e6));
    t.set_trust_device_reports(rng.chance(0.7));

    let pages = rng.range_u64(1, 48);
    let size = ((pages - 1) * PAGE_SIZE + rng.range_u64(1, PAGE_SIZE + 1)) as usize;
    k.install_file("/lan/f", &vec![2u8; size]).unwrap();
    let fd = k.open("/lan/f", OpenFlags::RDONLY).unwrap();

    for round in 0..rng.range_usize(1, 5) {
        let start = rng.range_u64(0, pages);
        let count = rng.range_u64(1, pages - start + 1);
        k.lseek(fd, (start * PAGE_SIZE) as i64, Whence::Set)
            .unwrap();
        k.read(fd, (count * PAGE_SIZE) as usize).unwrap();
        if rng.chance(0.4) {
            k.drop_caches().unwrap();
        }
        assert_sleds_agree(&mut k, fd, &t, &format!("nfs round {round}"));
    }
}

/// HSM: offline, partially staged, and fully staged files.
fn hsm_scenario(rng: &mut DetRng) {
    let mut k = Kernel::table2();
    k.mkdir("/hsm").unwrap();
    let mount = k
        .mount_hsm(
            "/hsm",
            DiskDevice::table2_disk("hda"),
            Box::new(TapeDevice::dlt("st0")),
            rng.range_u64(1, 32),
        )
        .unwrap();
    let disk = k.device_of_mount(mount).unwrap();
    let tape = k.tape_of_mount(mount).unwrap();
    let mut t = SledsTable::new();
    t.fill_memory(SledsEntry::new(175e-9, 48e6));
    t.fill_device(disk, SledsEntry::new(0.018, 9e6));
    t.fill_device(tape, SledsEntry::new(65.0, 1.5e6));

    let pages = rng.range_u64(1, 48);
    let size = ((pages - 1) * PAGE_SIZE + rng.range_u64(1, PAGE_SIZE + 1)) as usize;
    k.install_file("/hsm/f", &vec![4u8; size]).unwrap();
    k.hsm_migrate("/hsm/f", rng.chance(0.5)).unwrap();
    let fd = k.open("/hsm/f", OpenFlags::RDONLY).unwrap();
    assert_sleds_agree(&mut k, fd, &t, "offline");

    for round in 0..rng.range_usize(1, 4) {
        let start = rng.range_u64(0, pages);
        let count = rng.range_u64(1, pages - start + 1);
        k.lseek(fd, (start * PAGE_SIZE) as i64, Whence::Set)
            .unwrap();
        k.read(fd, (count * PAGE_SIZE) as usize).unwrap();
        assert_sleds_agree(&mut k, fd, &t, &format!("hsm round {round}"));
    }
}

#[test]
fn fsleds_get_matches_per_page_reference_on_disk() {
    check::run("fsleds_vs_reference_disk", disk_scenario);
}

#[test]
fn fsleds_get_matches_per_page_reference_on_nfs_reports() {
    check::run("fsleds_vs_reference_nfs", nfs_scenario);
}

#[test]
fn fsleds_get_matches_per_page_reference_across_hsm() {
    check::run("fsleds_vs_reference_hsm", hsm_scenario);
}
