//! The LHEASOFT workflow: histogram and rebin a FITS image, with and
//! without SLEDs, on a warm cache — the paper's section 5.3 in miniature.
//!
//! ```text
//! cargo run --release --example astro_pipeline
//! ```

use sleds_repro::apps::fimgbin::fimgbin;
use sleds_repro::apps::fimhisto::{fimhisto, DEFAULT_BINS};
use sleds_repro::devices::DiskDevice;
use sleds_repro::fits::{generate_image_bytes, Bitpix};
use sleds_repro::fs::Kernel;
use sleds_repro::lmbench;

fn main() {
    // The Table 3 machine the astronomy experiments ran on.
    let mut kernel = Kernel::table3();
    kernel.mkdir("/data").expect("mkdir");
    let mount = kernel
        .mount_disk("/data", DiskDevice::table3_disk("hda"))
        .expect("mount");
    let table = lmbench::fill_table(&mut kernel, &[("/data", mount)]).expect("calibration");

    // A 48 MiB synthetic star field (the interesting regime: just above
    // the ~42 MiB file cache).
    let (w, h) = sleds_repro::fits::gen::dimensions_for_bytes(48 << 20, Bitpix::I16);
    println!("generating a {w}x{h} I16 star field (~48 MiB)...");
    let image = generate_image_bytes(w, h, Bitpix::I16, 2026);
    kernel
        .install_file("/data/field.fits", &image)
        .expect("install");

    for (label, use_sleds) in [("without SLEDs", false), ("with SLEDs", true)] {
        let t = use_sleds.then_some(&table);
        // Warm-up pass, discarded (the paper's protocol).
        fimhisto(
            &mut kernel,
            "/data/field.fits",
            "/data/h.fits",
            DEFAULT_BINS,
            t,
        )
        .expect("fimhisto warmup");
        let job = kernel.start_job();
        let histo = fimhisto(
            &mut kernel,
            "/data/field.fits",
            "/data/h.fits",
            DEFAULT_BINS,
            t,
        )
        .expect("fimhisto");
        let rep = kernel.finish_job(&job);
        println!(
            "fimhisto {label:>14}: {:>8} elapsed, {:>6} major faults  (pixel range {:.0}..{:.0})",
            rep.elapsed, rep.usage.major_faults, histo.min, histo.max
        );

        fimgbin(&mut kernel, "/data/field.fits", "/data/r.fits", 2, t).expect("fimgbin warmup");
        let job = kernel.start_job();
        let rebin =
            fimgbin(&mut kernel, "/data/field.fits", "/data/r.fits", 2, t).expect("fimgbin");
        let rep = kernel.finish_job(&job);
        println!(
            "fimgbin  {label:>14}: {:>8} elapsed, {:>6} major faults  ({}x{} -> {}x{})",
            rep.elapsed, rep.usage.major_faults, w, h, rebin.out_width, rebin.out_height
        );
    }
    println!("\n(compare: the paper reports 15-25% fimhisto and ~11% fimgbin gains)");
}
