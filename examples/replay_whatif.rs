//! Workload flight recorder demo: capture the multi-tenant saturation
//! workload losslessly, replay it deterministically, and diff a what-if
//! candidate config against the original nanosecond by nanosecond.
//!
//! Three acts, each asserted:
//!
//! 1. **Lossless capture** — a scaled saturation population (disk
//!    bullies, light web tenants, NFS homes, HSM archives, one
//!    ring-submitting tenant) runs with the flight recorder armed.
//!    Every kernel entry lands in `results/CAPTURE_saturation.jsonl`
//!    with `complete: true`; the file round-trips through the parser
//!    byte-identically.
//! 2. **Identity replay** — replaying the capture under the captured
//!    config reproduces the capture byte for byte: same submit times,
//!    same completion times, same queue waits. The clock is the proof.
//! 3. **What-if diff** — replaying under a candidate config (command
//!    queue retention 64 → 16 plus `hda` degraded 2.5× for the whole
//!    run) moves exactly the tenants that touch the shared disk. The
//!    diff in `results/REPLAY_diff.json` attributes every op's
//!    completion-time delta to queue-wait + service movement with zero
//!    residual, shows the disk tenants' p99 rising, and shows the NFS
//!    and HSM tenants untouched.
//!
//! ```text
//! cargo run --release --example replay_whatif
//! ```

use std::path::PathBuf;

use sleds_repro::faults::FaultPlan;
use sleds_repro::fs::{Fd, Kernel, OpenFlags, RingOp, SubmissionRing, TenantId};
use sleds_repro::replay::{
    diff_captures, replay, CandidateConfig, CaptureFile, SetupStep, WorkloadSpec,
};
use sleds_repro::sim_core::{SimDuration, SimTime};

/// Recorder budget: far above the workload's op count, so the capture
/// completes; overflow would mark it incomplete and fail the asserts.
const CAPTURE_BUDGET: usize = 1024;

/// Degradation factor for the what-if disk.
const DEGRADE: f64 = 2.5;

fn results_dir() -> PathBuf {
    std::env::var("SLEDS_RESULTS")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("results"))
}

const KIB: u64 = 1024;
const MIB: u64 = 1024 * 1024;

/// One tenant's request stream for the interleaved run.
struct Lane {
    t: TenantId,
    fd: Fd,
    req_bytes: usize,
    remaining: u64,
    offset: u64,
    think_ns: u64,
    ready_ns: u64,
}

/// The scaled saturation environment: every mount class the observatory
/// uses, with per-tenant sparse files sized for the request streams.
fn build_spec() -> WorkloadSpec {
    let mut spec = WorkloadSpec::new("table2");
    for p in ["/disk", "/nfs", "/hsm"] {
        spec.setup.push(SetupStep::Mkdir {
            path: p.to_string(),
        });
    }
    spec.setup.push(SetupStep::MountDisk {
        path: "/disk".to_string(),
        model: "table2_disk".to_string(),
        name: "hda".to_string(),
    });
    spec.setup.push(SetupStep::MountNfs {
        path: "/nfs".to_string(),
        model: "table2_mount".to_string(),
        name: "nfs0".to_string(),
    });
    spec.setup.push(SetupStep::MountHsm {
        path: "/hsm".to_string(),
        disk_model: "table2_disk".to_string(),
        disk_name: "hdb".to_string(),
        tape_model: "dlt".to_string(),
        tape_name: "tape0".to_string(),
        chunk_pages: 16,
    });
    for i in 0..2 {
        spec.setup.push(SetupStep::InstallSparseFile {
            path: format!("/disk/bulk{i}.dat"),
            size: 8 * MIB,
        });
    }
    for i in 0..8 {
        spec.setup.push(SetupStep::InstallSparseFile {
            path: format!("/disk/web{i}.html"),
            size: 128 * KIB,
        });
    }
    spec.setup.push(SetupStep::InstallSparseFile {
        path: "/disk/ring.dat".to_string(),
        size: 128 * KIB,
    });
    for i in 0..3 {
        spec.setup.push(SetupStep::InstallSparseFile {
            path: format!("/nfs/home{i}.dat"),
            size: 256 * KIB,
        });
    }
    for i in 0..2 {
        spec.setup.push(SetupStep::InstallSparseFile {
            path: format!("/hsm/arch{i}.dat"),
            size: 256 * KIB,
        });
        spec.setup.push(SetupStep::HsmMigrate {
            path: format!("/hsm/arch{i}.dat"),
            free: true,
        });
    }
    spec.setup.push(SetupStep::DropCaches);
    spec
}

/// Registers the population, runs the earliest-ready interleave with the
/// recorder armed, and finishes with one ring batch. Everything between
/// `start_capture` and `stop_capture` is a capturable kernel entry.
fn drive(k: &mut Kernel) {
    let mut lanes: Vec<Lane> = Vec::new();
    let mut spawn = |k: &mut Kernel, name: String, path: String, req: usize, n: u64, think: u64| {
        let t = k.tenant_register(&name);
        k.tenant_switch(t).expect("switch");
        let fd = k.open(&path, OpenFlags::RDONLY).expect("open");
        let ready = k.now().as_nanos();
        k.tenant_switch(TenantId(0)).expect("switch back");
        lanes.push(Lane {
            t,
            fd,
            req_bytes: req,
            remaining: n,
            offset: 0,
            think_ns: think,
            ready_ns: ready,
        });
    };
    for i in 0..2 {
        let path = format!("/disk/bulk{i}.dat");
        spawn(k, format!("bulk-{i}"), path, (256 * KIB) as usize, 24, 0);
    }
    for i in 0..8 {
        let path = format!("/disk/web{i}.html");
        spawn(
            k,
            format!("web-{i}"),
            path,
            (16 * KIB) as usize,
            6,
            2_000_000,
        );
    }
    for i in 0..3 {
        let path = format!("/nfs/home{i}.dat");
        spawn(
            k,
            format!("nfs-{i}"),
            path,
            (32 * KIB) as usize,
            6,
            5_000_000,
        );
    }
    for i in 0..2 {
        let path = format!("/hsm/arch{i}.dat");
        spawn(
            k,
            format!("hsm-{i}"),
            path,
            (64 * KIB) as usize,
            3,
            10_000_000,
        );
    }

    // Earliest-ready lane next; ties to the lowest tenant id. The same
    // deterministic interleave the saturation observatory uses.
    while let Some(idx) = lanes
        .iter()
        .enumerate()
        .filter(|(_, l)| l.remaining > 0)
        .min_by_key(|(_, l)| (l.ready_ns, l.t.0))
        .map(|(i, _)| i)
    {
        let lane = &mut lanes[idx];
        k.tenant_switch(lane.t).expect("switch");
        let now = k.now().as_nanos();
        if lane.ready_ns > now {
            k.charge_cpu(SimDuration::from_nanos(lane.ready_ns - now));
        }
        let data = k
            .pread(lane.fd, lane.offset, lane.req_bytes)
            .expect("pread");
        assert_eq!(data.len(), lane.req_bytes);
        lane.offset += lane.req_bytes as u64;
        lane.remaining -= 1;
        lane.ready_ns = k.now().as_nanos() + lane.think_ns;
    }

    // One tenant submits a batch through the ring: a stat plus four
    // preads against the shared disk, reaped crossing-free.
    let rt = k.tenant_register("ring-0");
    k.tenant_switch(rt).expect("switch");
    let rfd = k
        .open("/disk/ring.dat", OpenFlags::RDONLY)
        .expect("open ring");
    let mut ring = SubmissionRing::with_tenant(16, rt);
    ring.push(
        1,
        RingOp::Stat {
            path: "/disk/ring.dat".to_string(),
        },
    )
    .expect("push");
    for i in 0..4u64 {
        ring.push(
            2 + i,
            RingOp::Pread {
                fd: rfd,
                pos: i * 16 * KIB,
                len: (16 * KIB) as usize,
            },
        )
        .expect("push");
    }
    k.ring_enter(&mut ring).expect("ring_enter");
    let completions = k.ring_reap(&mut ring);
    assert_eq!(completions.len(), 5);
    k.close(rfd).expect("close ring fd");

    for lane in &lanes {
        k.tenant_switch(lane.t).expect("switch");
        k.close(lane.fd).expect("close");
    }
}

fn capture_workload(spec: &WorkloadSpec) -> CaptureFile {
    let mut k = sleds_repro::replay::build_kernel(spec).expect("build kernel");
    k.start_capture(CAPTURE_BUDGET);
    drive(&mut k);
    let capture = k.stop_capture().expect("capture armed");
    assert!(
        capture.complete,
        "capture must be lossless: {:?}",
        capture.incomplete_reason
    );
    CaptureFile {
        spec: spec.clone(),
        capture,
    }
}

fn main() {
    // Act 1: lossless capture.
    let spec = build_spec();
    let file = capture_workload(&spec);
    assert!(file.capture.ops.len() > 100, "population must be real");
    let jsonl = file.to_jsonl();
    let parsed = CaptureFile::parse(&jsonl).expect("parse own serialization");
    assert_eq!(
        parsed.to_jsonl(),
        jsonl,
        "capture file must round-trip byte-identically"
    );

    // Act 2: identity replay — byte-identical re-capture.
    let identity = replay(&file, &CandidateConfig::identity()).expect("identity replay");
    assert_eq!(
        identity.into_file().to_jsonl(),
        jsonl,
        "identity replay must reproduce the capture byte for byte"
    );

    // Act 3: what-if — shrink queue retention and degrade the shared disk.
    let horizon = file
        .capture
        .ops
        .iter()
        .map(|o| o.outcome.complete_ns)
        .max()
        .unwrap_or(0);
    let candidate = CandidateConfig {
        machine: None,
        cmd_queue_capacity: Some(16),
        fault_plan: Some(FaultPlan::new().degraded(
            "hda",
            SimTime::from_nanos(0),
            SimTime::from_nanos(horizon * 2 + 1),
            DEGRADE,
        )),
        hedge: None,
    };
    let whatif = replay(&file, &candidate).expect("what-if replay");
    let diff = diff_captures(&file.capture, &whatif.capture).expect("diff");

    // Exact attribution: queue-wait + service deltas explain every op's
    // completion-time delta — no residual anywhere.
    assert_eq!(
        diff.exact_ops,
        diff.ops.len() as u64,
        "every op's latency delta must be exactly attributed"
    );
    assert!(
        diff.total.d_latency_ns > 0,
        "degrading the shared disk must cost latency"
    );
    for bully in ["bulk-0", "bulk-1"] {
        let row = diff
            .tenants
            .values()
            .find(|(name, _)| name == bully)
            .map(|(_, g)| g)
            .expect("bully row");
        assert!(
            row.cand.p99_ns > row.base.p99_ns,
            "{bully}'s p99 must rise under the candidate \
             ({} -> {} ns)",
            row.base.p99_ns,
            row.cand.p99_ns
        );
    }
    // The movement is on the disk: service (degradation) and queue wait
    // (the bullies hold the head longer).
    let disk = diff.classes.get(&1).expect("disk class row");
    assert!(disk.d_service_ns > 0, "disk service must inflate");
    assert!(disk.d_queue_wait_ns > 0, "disk queue wait must inflate");
    // Blast radius: tenants off the shared disk do not move at all.
    let mut moved = 0u64;
    for (id, (name, g)) in &diff.tenants {
        if name.starts_with("nfs-") || name.starts_with("hsm-") {
            assert_eq!(
                g.d_latency_ns, 0,
                "tenant {id} ({name}) is off the shared disk and must not move"
            );
        }
        if g.d_latency_ns > 0 {
            moved += 1;
        }
    }
    assert!(moved >= 3, "bullies and web tenants must move");

    let report = diff.to_json(
        "captured: table2, cmd queue 64, no faults",
        "what-if: cmd queue 16, hda degraded 2.5x",
    );

    let dir = results_dir();
    std::fs::create_dir_all(&dir).expect("results dir");
    std::fs::write(dir.join("CAPTURE_saturation.jsonl"), &jsonl).expect("write capture");
    std::fs::write(dir.join("REPLAY_diff.json"), &report).expect("write diff");

    let bulk0 = diff
        .tenants
        .values()
        .find(|(name, _)| name == "bulk-0")
        .map(|(_, g)| g)
        .expect("bulk-0 row");
    println!(
        "captured {} ops; identity replay byte-identical; what-if moved {} tenants \
         (bulk-0 p99 {} -> {} ns), {} of {} op deltas exactly attributed",
        file.capture.ops.len(),
        moved,
        bulk0.base.p99_ns,
        bulk0.cand.p99_ns,
        diff.exact_ops,
        diff.ops.len(),
    );
}
