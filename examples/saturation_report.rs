//! Multi-tenant saturation observatory: hundreds of tenants interleaved on
//! shared disk, NFS, and tape, with per-tenant latency attribution and
//! bully identification.
//!
//! The driver is the deterministic virtual-clock submitter from
//! `sim-core`: every tenant is a lane with a ready time on its own
//! timeline, the earliest lane runs next, and each request is one cold
//! `pread` against the tenant's own sparse file — so every request is
//! real device traffic and the whole interleave replays byte-identically.
//!
//! Four properties, asserted and summarized in
//! `results/SATURATION_report.json`:
//!
//! 1. **Determinism** — the full interleave (hundreds of tenants, three
//!    device classes) rerun from scratch produces a byte-identical report.
//! 2. **Exact attribution** — per tenant, own-service + queue-wait equals
//!    the observed device time, cross-tenant waits sum to the total queue
//!    wait, and per-tenant rusage rows sum to the global counters.
//! 3. **Bully identification** — the two bulk tenants hammering the disk
//!    with zero think time are flagged as bullies on a saturated device;
//!    the light tenants are not.
//! 4. **Zero-cost observer** — the traced run (which also exports a
//!    tenant-lane Chrome trace) produces the same report as the untraced
//!    run.
//!
//! ```text
//! cargo run --release --example saturation_report
//! ```

use std::path::PathBuf;

use sleds_repro::devices::{DiskDevice, NfsDevice, TapeDevice};
use sleds_repro::fs::{Fd, Kernel, OpenFlags, Rusage, SaturationReport, TenantId};
use sleds_repro::sim_core::{SimDuration, VirtualSubmitter};
use sleds_repro::trace::chrome_trace_json_named;

fn results_dir() -> PathBuf {
    std::env::var("SLEDS_RESULTS")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("results"))
}

fn fold(checksum: u64, bytes: &[u8]) -> u64 {
    bytes
        .iter()
        .fold(checksum, |a, &b| a.wrapping_mul(31).wrapping_add(b as u64))
}

/// One tenant's request stream: `requests` cold preads of `req_bytes`,
/// marching through its own sparse file, with `think` between requests.
struct TenantSpec {
    id: TenantId,
    fd: Fd,
    req_bytes: usize,
    requests: u64,
    issued: u64,
    offset: u64,
    think: SimDuration,
}

const BULLIES: usize = 2;
const LIGHT_DISK: usize = 192;
const NFS_TENANTS: usize = 20;
const TAPE_TENANTS: usize = 6;

/// Builds the machine and tenant population, runs the interleave to
/// completion, and returns the report plus replay signature.
fn run(traced: bool) -> (SaturationReport, Rusage, Vec<Rusage>, u64, Kernel) {
    let mut k = Kernel::table2();
    if traced {
        k.enable_tracing_with_capacity(1 << 13);
    }
    for dir in ["/disk", "/nfs", "/hsm"] {
        k.mkdir(dir).expect("mkdir");
    }
    k.mount_disk("/disk", DiskDevice::table2_disk("hda"))
        .expect("mount disk");
    k.mount_nfs("/nfs", NfsDevice::table2_mount("nfs0"))
        .expect("mount nfs");
    k.mount_hsm(
        "/hsm",
        DiskDevice::table2_disk("hdb"),
        Box::new(TapeDevice::dlt("tape0")),
        16,
    )
    .expect("mount hsm");

    // Population: 2 bulk tenants that hammer the disk with zero think
    // time, a crowd of light disk tenants, an NFS group, and a tape group
    // whose reads stage chunks back through the HSM.
    let mut specs: Vec<TenantSpec> = Vec::new();
    let mut plan: Vec<(String, String, u64, usize, u64, SimDuration)> = Vec::new();
    for b in 0..BULLIES {
        plan.push((
            format!("bulk-{b}"),
            format!("/disk/bulk{b}"),
            128 << 20,
            2 << 20,
            48,
            SimDuration::ZERO,
        ));
    }
    for i in 0..LIGHT_DISK {
        plan.push((
            format!("web-{i}"),
            format!("/disk/web{i}"),
            1 << 20,
            16 << 10,
            4,
            SimDuration::from_millis(1 + (i as u64 % 17)),
        ));
    }
    for i in 0..NFS_TENANTS {
        plan.push((
            format!("nfs-{i}"),
            format!("/nfs/client{i}"),
            1 << 20,
            16 << 10,
            6,
            SimDuration::from_millis(1 + (i as u64 % 5)),
        ));
    }
    for i in 0..TAPE_TENANTS {
        plan.push((
            format!("archive-{i}"),
            format!("/hsm/vault{i}"),
            1 << 20,
            64 << 10,
            2,
            SimDuration::from_millis(2),
        ));
    }
    for (_, path, size, ..) in &plan {
        k.install_sparse_file(path, *size).expect("install");
        if path.starts_with("/hsm/") {
            k.hsm_migrate(path, true).expect("migrate to tape");
        }
    }
    k.drop_caches().expect("drop_caches");

    // Register tenants and open each one's file on its own timeline.
    let mut sub = VirtualSubmitter::new();
    for (name, path, _, req_bytes, requests, think) in &plan {
        let id = k.tenant_register(name);
        k.tenant_switch(id).expect("switch");
        let fd = k.open(path, OpenFlags::RDONLY).expect("open");
        let lane = sub.add(k.now());
        assert_eq!(lane, specs.len(), "lanes mirror the spec order");
        specs.push(TenantSpec {
            id,
            fd,
            req_bytes: *req_bytes,
            requests: *requests,
            issued: 0,
            offset: 0,
            think: *think,
        });
    }

    // The interleave: always run the lane whose ready time is earliest.
    let mut checksum = 0u64;
    while let Some(lane) = sub.next() {
        let ready = sub.ready_at(lane).expect("live lane");
        let spec = &mut specs[lane];
        k.tenant_switch(spec.id).expect("switch");
        let now = k.now();
        if ready > now {
            // Think time: the tenant computes until its next request.
            k.charge_cpu(ready.duration_since(now));
        }
        let data = k
            .pread(spec.fd, spec.offset, spec.req_bytes)
            .expect("pread");
        // The replay signature folds in contents *and* the virtual clock
        // after every request, so any divergence in the schedule — not
        // just in bytes — breaks the checksum.
        checksum = fold(checksum, &data);
        checksum = fold(checksum, &k.now().as_nanos().to_le_bytes());
        checksum = fold(checksum, &(lane as u64).to_le_bytes());
        spec.issued += 1;
        spec.offset += spec.req_bytes as u64;
        if spec.issued == spec.requests {
            k.close(spec.fd).expect("close");
            sub.finish(lane);
        } else {
            sub.reschedule(lane, k.now() + spec.think);
        }
    }
    k.tenant_switch(TenantId(0)).expect("switch back");

    let per: Vec<Rusage> = (0..k.tenant_count())
        .map(|i| k.tenant_usage(TenantId(i as u64)).expect("usage"))
        .collect();
    let report = k.saturation_report();
    (report, k.usage(), per, checksum, k)
}

/// Property 2: the attribution identities hold exactly, not approximately.
fn assert_exact(report: &SaturationReport, global: &Rusage, per: &[Rusage]) {
    let mut sum = Rusage::default();
    for u in per {
        sum.accumulate(u);
    }
    assert_eq!(
        &sum, global,
        "per-tenant rusage rows must sum exactly to the global counters"
    );
    for t in &report.tenants {
        assert_eq!(
            t.own_service_ns + t.queue_wait_ns,
            t.observed_ns,
            "tenant {}: own service + queue wait must equal observed",
            t.name
        );
        let waited: u64 = t.waited_on.iter().map(|&(_, ns)| ns).sum();
        assert_eq!(
            waited, t.queue_wait_ns,
            "tenant {}: cross-tenant waits must sum to its queue wait",
            t.name
        );
    }
    for d in &report.devices {
        let busy: u64 = d.shares.iter().map(|s| s.load.busy_ns).sum();
        assert_eq!(busy, d.busy_ns, "{}: demand must sum to busy time", d.name);
        let wait: u64 = d.shares.iter().map(|s| s.load.queue_wait_ns).sum();
        assert_eq!(wait, d.queue_wait_ns, "{}: waits must sum", d.name);
    }
}

fn latency_json(s: &sleds_repro::fs::LatencySummary) -> String {
    format!(
        "{{\"p50_ns\": {}, \"p90_ns\": {}, \"p99_ns\": {}, \"p999_ns\": {}}}",
        s.p50_ns, s.p90_ns, s.p99_ns, s.p999_ns
    )
}

fn render_report_json(report: &SaturationReport, checksum: u64, tenant_count: usize) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(
        "  \"audit\": \"multi-tenant saturation: queue telemetry, latency attribution, bullies\",\n",
    );
    out.push_str("  \"regenerate\": \"cargo run --release --example saturation_report\",\n");
    out.push_str(&format!("  \"tenants\": {tenant_count},\n"));
    out.push_str(&format!("  \"checksum\": \"{checksum:#018x}\",\n"));
    out.push_str("  \"devices\": [\n");
    for (i, d) in report.devices.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"class\": {}, \"window_ns\": {}, \"busy_ns\": {}, \
             \"queue_wait_ns\": {}, \"utilization_ppm\": {}, \"commands\": {}, \"bytes\": {}, \
             \"throughput_bytes_per_sec\": {}, \"depth_high_water\": {}, \"saturated\": {}, \
             \"service_latency\": {}, \"queue_wait_latency\": {}, \
             \"top_shares\": [",
            d.name,
            d.class_code,
            d.window_ns,
            d.busy_ns,
            d.queue_wait_ns,
            d.utilization_ppm,
            d.commands,
            d.bytes,
            d.throughput_bytes_per_sec,
            d.depth_high_water,
            d.saturated,
            latency_json(&d.service_latency),
            latency_json(&d.queue_wait_latency),
        ));
        // Top demand shares, descending, ties broken by tenant id.
        let mut shares = d.shares.clone();
        shares.sort_by(|a, b| {
            b.demand_share_ppm
                .cmp(&a.demand_share_ppm)
                .then(a.tenant.cmp(&b.tenant))
        });
        for (j, s) in shares.iter().take(4).enumerate() {
            let name = report
                .tenants
                .iter()
                .find(|t| t.tenant == s.tenant)
                .map_or("?", |t| t.name.as_str());
            out.push_str(&format!(
                "{}{{\"tenant\": \"{}\", \"share_ppm\": {}, \"bully\": {}}}",
                if j > 0 { ", " } else { "" },
                name,
                s.demand_share_ppm,
                s.bully,
            ));
        }
        out.push_str(&format!(
            "]}}{}\n",
            if i + 1 < report.devices.len() {
                ","
            } else {
                ""
            }
        ));
    }
    out.push_str("  ],\n");
    let bully_names: Vec<&str> = report
        .bullies()
        .into_iter()
        .filter_map(|id| report.tenants.iter().find(|t| t.tenant == id))
        .map(|t| t.name.as_str())
        .collect();
    out.push_str(&format!(
        "  \"bullies\": [{}],\n",
        bully_names
            .iter()
            .map(|n| format!("\"{n}\""))
            .collect::<Vec<_>>()
            .join(", ")
    ));
    // The tenants that paid the most queue wait, and who they paid it to.
    let mut victims: Vec<_> = report.tenants.iter().collect();
    victims.sort_by(|a, b| {
        b.queue_wait_ns
            .cmp(&a.queue_wait_ns)
            .then(a.tenant.cmp(&b.tenant))
    });
    out.push_str("  \"top_victims\": [\n");
    let top: Vec<_> = victims
        .iter()
        .filter(|t| t.queue_wait_ns > 0)
        .take(8)
        .collect();
    for (i, t) in top.iter().enumerate() {
        let offender = t
            .waited_on
            .first()
            .and_then(|&(owner, ns)| {
                report
                    .tenants
                    .iter()
                    .find(|o| o.tenant == owner)
                    .map(|o| (o.name.as_str(), ns))
            })
            .map_or("null".to_string(), |(name, ns)| {
                format!("{{\"tenant\": \"{name}\", \"behind_ns\": {ns}}}")
            });
        out.push_str(&format!(
            "    {{\"tenant\": \"{}\", \"own_service_ns\": {}, \"queue_wait_ns\": {}, \
             \"observed_ns\": {}, \"worst_offender\": {}}}{}\n",
            t.name,
            t.own_service_ns,
            t.queue_wait_ns,
            t.observed_ns,
            offender,
            if i + 1 < top.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    // Property 1: determinism — the full interleave reruns byte-identically.
    let (rep1, global1, per1, sum1, _) = run(false);
    let (rep2, global2, per2, sum2, _) = run(false);
    assert_eq!(sum1, sum2, "contents must replay identically");
    assert_eq!(global1, global2, "global usage must replay identically");
    assert_eq!(per1, per2, "per-tenant usage must replay identically");
    assert_eq!(rep1, rep2, "saturation report must replay identically");

    // Property 2: exact attribution.
    assert_exact(&rep1, &global1, &per1);

    // Property 3: heavy hitters — and only heavy hitters — are bullies.
    // The bulk tenants must be flagged on the shared disk; the archive
    // group may legitimately be flagged too (six tenants splitting a
    // saturated tape all hold large shares). No light tenant ever is.
    let bullies = rep1.bullies();
    assert!(!bullies.is_empty(), "the disk bullies must be flagged");
    let bully_names: Vec<&str> = bullies
        .iter()
        .filter_map(|id| rep1.tenants.iter().find(|t| t.tenant == *id))
        .map(|t| t.name.as_str())
        .collect();
    assert!(
        bully_names.iter().any(|n| n.starts_with("bulk-")),
        "the bulk tenants must be among the bullies, got {bully_names:?}"
    );
    for name in &bully_names {
        assert!(
            !name.starts_with("web-") && !name.starts_with("nfs-"),
            "light tenants must never be bullies, got {name}"
        );
    }
    let disk = rep1
        .devices
        .iter()
        .find(|d| d.name == "hda")
        .expect("disk row");
    assert!(disk.saturated, "the shared disk must be saturated");
    assert!(disk.depth_high_water > 0, "commands must have queued");

    // Property 4: zero-cost observer — the traced run matches, and exports
    // the tenant-lane Chrome trace.
    let (rep3, global3, per3, sum3, k) = run(true);
    assert_eq!(sum1, sum3, "tracing must not change contents");
    assert_eq!(global1, global3, "tracing must not change usage");
    assert_eq!(per1, per3, "tracing must not change per-tenant usage");
    assert_eq!(rep1, rep3, "tracing must not change the report");
    let chrome = chrome_trace_json_named(
        &k.trace_events(),
        k.trace_dropped(),
        k.trace_high_water(),
        &k.tenant_names(),
    );
    assert!(
        chrome.contains("\"process_name\""),
        "tenant lanes are named"
    );
    assert!(chrome.contains("bulk-0"), "bully lane is labeled");

    let tenant_count = rep1.tenants.len();
    let json = render_report_json(&rep1, sum1, tenant_count);
    assert_eq!(json.matches('{').count(), json.matches('}').count());
    assert_eq!(json.matches('[').count(), json.matches(']').count());

    println!(
        "{} tenants over {} devices; disk utilization {} ppm, {} bullies: {:?}",
        tenant_count,
        rep1.devices.len(),
        disk.utilization_ppm,
        bullies.len(),
        bullies
            .iter()
            .filter_map(|id| rep1.tenants.iter().find(|t| t.tenant == *id))
            .map(|t| t.name.as_str())
            .collect::<Vec<_>>()
    );
    for d in &rep1.devices {
        println!(
            "  {}: util {} ppm, {} commands, wait {} ns, depth high-water {}, saturated {}",
            d.name, d.utilization_ppm, d.commands, d.queue_wait_ns, d.depth_high_water, d.saturated
        );
    }

    let dir = results_dir();
    std::fs::create_dir_all(&dir).expect("mkdir results");
    let path = dir.join("SATURATION_report.json");
    std::fs::write(&path, &json).expect("write report");
    println!("-> {}", path.display());
    let trace_path = dir.join("TRACE_saturation.json");
    std::fs::write(&trace_path, &chrome).expect("write trace");
    println!("-> {}", trace_path.display());
}
