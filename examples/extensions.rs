//! The paper's future-work items, implemented: zone-aware SLEDs, leases
//! that freeze a SLED vector, and eviction forecasts.
//!
//! ```text
//! cargo run --release --example extensions
//! ```

use sleds_repro::devices::DiskDevice;
use sleds_repro::fs::{Kernel, OpenFlags, Whence};
use sleds_repro::lmbench;
use sleds_repro::sleds::{forecast, fsleds_get, SledLease, SledReport};

fn main() {
    let mut kernel = Kernel::table2();
    kernel.mkdir("/data").expect("mkdir");
    let mount = kernel
        .mount_disk("/data", DiskDevice::table2_disk("hda"))
        .expect("mount");
    // Zone-aware calibration: the disk self-reports its zones and the
    // table gets per-zone bandwidth rows.
    let table =
        lmbench::fill_table_zoned(&mut kernel, &[("/data", mount)]).expect("zoned calibration");

    // --- Zone-aware SLEDs ------------------------------------------------
    // Put one file at the outer edge and one deep inside the disk.
    kernel
        .install_file("/data/outer.bin", &vec![1u8; 2 << 20])
        .expect("install");
    let dev = kernel.device_of_mount(mount).expect("device");
    let cap = kernel.device_capacity(dev).expect("capacity");
    kernel
        .advance_allocator(mount, (cap * 8 / 10) / 8)
        .expect("seek inward");
    kernel
        .install_file("/data/inner.bin", &vec![2u8; 2 << 20])
        .expect("install");
    for path in ["/data/outer.bin", "/data/inner.bin"] {
        let fd = kernel.open(path, OpenFlags::RDONLY).expect("open");
        let sleds = fsleds_get(&mut kernel, fd, &table).expect("sleds");
        println!("{}", SledReport::new(path, sleds));
        kernel.close(fd).expect("close");
    }
    println!("(same device, different zones -> different SLED bandwidths)\n");

    // --- Forecast + lease -------------------------------------------------
    kernel
        .install_file("/data/hot.bin", &vec![3u8; 8 << 20])
        .expect("install");
    kernel
        .install_file("/data/noise.bin", &vec![4u8; 64 << 20])
        .expect("install");
    let fd = kernel
        .open("/data/hot.bin", OpenFlags::RDONLY)
        .expect("open");
    kernel.lseek(fd, 0, Whence::Set).expect("seek");
    kernel.read(fd, 8 << 20).expect("warm fully");

    let fc = forecast(&mut kernel, &table, fd).expect("forecast");
    for f in &fc {
        match f.survives_bytes() {
            Some(b) => println!(
                "SLED at {:>8}: cached; survives ~{} MiB of competing traffic",
                f.sled.offset,
                b >> 20
            ),
            None => println!("SLED at {:>8}: on disk; nothing to lose", f.sled.offset),
        }
    }

    // Take a lease, then hammer the cache with 64 MiB of noise.
    let lease = SledLease::acquire(&mut kernel, &table, fd).expect("lease");
    println!(
        "\nleased {} pages; flooding the cache with 64 MiB...",
        lease.pinned_pages()
    );
    let noise = kernel
        .open("/data/noise.bin", OpenFlags::RDONLY)
        .expect("open");
    while !kernel.read(noise, 1 << 20).expect("read").is_empty() {}
    kernel.close(noise).expect("close");

    let held = fsleds_get(&mut kernel, fd, &table).expect("sleds");
    println!(
        "under lease, hot.bin is still {:.0}% cached",
        SledReport::new("hot.bin", held).cached_fraction() * 100.0
    );
    lease.release(&mut kernel).expect("release");

    let noise = kernel
        .open("/data/noise.bin", OpenFlags::RDONLY)
        .expect("open");
    kernel.lseek(noise, 0, Whence::Set).expect("seek");
    while !kernel.read(noise, 1 << 20).expect("read").is_empty() {}
    kernel.close(noise).expect("close");
    let dropped = fsleds_get(&mut kernel, fd, &table).expect("sleds");
    println!(
        "after release + another flood, {:.0}% cached",
        SledReport::new("hot.bin", dropped).cached_fraction() * 100.0
    );
}
