//! Quickstart: boot a simulated machine, ask a file for its SLEDs, and read
//! it in the latency-aware order.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use sleds_repro::devices::DiskDevice;
use sleds_repro::fs::{Kernel, OpenFlags, Whence};
use sleds_repro::lmbench;
use sleds_repro::sleds::{
    fsleds_get, total_delivery_time, AttackPlan, PickConfig, PickSession, SledReport,
};

fn main() {
    // Boot the paper's 64 MiB test machine and mount a late-90s disk.
    let mut kernel = Kernel::table2();
    kernel.mkdir("/data").expect("mkdir");
    let mount = kernel
        .mount_disk("/data", DiskDevice::table2_disk("hda"))
        .expect("mount");

    // The "boot script": calibrate every level with lmbench and fill the
    // sleds table (the FSLEDS_FILL ioctl of the paper).
    let table = lmbench::fill_table(&mut kernel, &[("/data", mount)]).expect("calibration");

    // A 2 MiB file; warm the middle 1 MiB so the cache state is interesting.
    let data = vec![42u8; 2 << 20];
    kernel
        .install_file("/data/demo.bin", &data)
        .expect("install");
    let fd = kernel
        .open("/data/demo.bin", OpenFlags::RDONLY)
        .expect("open");
    kernel.lseek(fd, 512 << 10, Whence::Set).expect("seek");
    kernel.read(fd, 1 << 20).expect("warm read");

    // FSLEDS_GET: what would it cost to read this file right now?
    let sleds = fsleds_get(&mut kernel, fd, &table).expect("FSLEDS_GET");
    println!("{}", SledReport::new("/data/demo.bin", sleds));
    let linear = total_delivery_time(&mut kernel, &table, fd, AttackPlan::Linear).unwrap();
    let best = total_delivery_time(&mut kernel, &table, fd, AttackPlan::Best).unwrap();
    println!("delivery estimate: {linear:.4}s front-to-back, {best:.4}s reordered\n");

    // Read the file in pick order: cached middle first, then the cold ends.
    let mut pick =
        PickSession::init(&mut kernel, &table, fd, PickConfig::bytes(256 << 10)).expect("init");
    let job = kernel.start_job();
    println!("pick order (offset, length):");
    while let Some((offset, len)) = pick.next_read() {
        println!("  {offset:>8} {len:>8}");
        kernel.lseek(fd, offset as i64, Whence::Set).expect("seek");
        kernel.read(fd, len).expect("read");
    }
    pick.finish();
    let report = kernel.finish_job(&job);
    println!(
        "\nread 2 MiB in {} ({} major faults, {} cache hits)",
        report.elapsed, report.usage.major_faults, report.usage.minor_faults
    );
    kernel.close(fd).expect("close");
}
