//! Fault storm: the fault-injection subsystem, end to end.
//!
//! Four properties, each asserted and summarized in
//! `results/FAULTS_report.json`:
//!
//! 1. **Determinism** — a seeded storm (`FaultPlan::seeded_storm`) replayed
//!    with the same seed produces byte-identical results: same data/error
//!    checksum, same retry counts, same backoff charge, same final virtual
//!    clock.
//! 2. **Masking** — a transient window with a bounded failure budget is
//!    fully absorbed by the kernel's `RetryPolicy`: every read succeeds,
//!    and the retries show up in rusage instead of in the application.
//! 3. **Routing** — `FSLEDS_GET` prices extents on an offline device as
//!    unavailable, and `PickSession` routes around them: the default
//!    `Defer` policy plans them last, `Skip` prunes them from the plan.
//! 4. **Recovery** — prediction error explodes while a device is degraded,
//!    and a post-recovery `FSLEDS_RECAL` from a fresh observation window
//!    restores it.
//! 5. **Replica reroute** — the same outage that fails every read on an
//!    unreplicated disk is invisible on a mirrored volume: the kernel
//!    reroutes to the surviving member, the application sees zero errors
//!    and zero retries, and the offline primary is never issued a command.
//!
//! ```text
//! cargo run --release --example fault_storm
//! ```

use std::path::PathBuf;

use sleds_repro::devices::{BlockDevice, DiskDevice, FaultPlan, FaultState};
use sleds_repro::fs::{Kernel, OpenFlags, VolumeLayout};
use sleds_repro::lmbench::fill_table;
use sleds_repro::sim_core::{SimDuration, SimTime, PAGE_SIZE};
use sleds_repro::sleds::{
    fsleds_get, recalibrate, total_delivery_time, AttackPlan, PickConfig, PickSession, RecalPolicy,
    SledsEntry, SledsTable,
};
use sleds_repro::trace::{audit_accuracy, summarize_class, AccuracySample, ClassAccuracy};

const STORM_SEED: u64 = 0xBADD;

fn results_dir() -> PathBuf {
    std::env::var("SLEDS_RESULTS")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("results"))
}

fn fold(checksum: u64, bytes: &[u8]) -> u64 {
    bytes
        .iter()
        .fold(checksum, |a, &b| a.wrapping_mul(31).wrapping_add(b as u64))
}

/// Property 1: one run under a seeded storm over two disks. Reads that fail
/// (offline windows fail non-retryably) are part of the replayed result, so
/// their rendered errors fold into the checksum alongside the data.
fn run_storm(seed: u64) -> (u64, u64, u64, u64) {
    let mut k = Kernel::table2();
    let files = 6;
    let pages = 8usize;
    for (d, (dir, dev)) in [("/data", "hda"), ("/mirror", "hdb")].iter().enumerate() {
        k.mkdir(dir).expect("mkdir");
        k.mount_disk(dir, DiskDevice::table2_disk(*dev))
            .expect("mount");
        for i in 0..files {
            let body = vec![(d * files + i) as u8; pages * PAGE_SIZE as usize];
            k.install_file(&format!("{dir}/f{i}"), &body)
                .expect("install");
        }
    }
    k.drop_caches().expect("drop_caches");
    k.apply_fault_plan(&FaultPlan::seeded_storm(
        seed,
        &["hda", "hdb"],
        SimDuration::from_secs(60),
    ));

    let mut checksum = 0u64;
    for _pass in 0..3 {
        for dir in ["/data", "/mirror"] {
            for i in 0..files {
                let fd = k
                    .open(&format!("{dir}/f{i}"), OpenFlags::RDONLY)
                    .expect("open");
                match k.read(fd, pages * PAGE_SIZE as usize) {
                    Ok(data) => checksum = fold(checksum, &data),
                    Err(e) => checksum = fold(checksum, e.to_string().as_bytes()),
                }
                k.close(fd).expect("close");
            }
        }
        k.drop_caches().expect("drop_caches");
        // March the clock through the storm so later passes see different
        // windows of the same plan.
        k.charge_cpu(SimDuration::from_secs(20));
    }
    let u = k.usage();
    (
        checksum,
        u.io_retries,
        u.retry_backoff.as_nanos(),
        k.now().as_nanos(),
    )
}

/// Property 2: a transient window with a bounded failure budget. Every read
/// must succeed — the budgeted failures are masked by bounded retries — and
/// the masking is visible in rusage, not in the application.
fn run_transient_masking() -> (u64, u64, u64) {
    let mut k = Kernel::table2();
    k.mkdir("/data").expect("mkdir");
    k.mount_disk("/data", DiskDevice::table2_disk("hda"))
        .expect("mount");
    let files = 4;
    let pages = 6usize;
    for i in 0..files {
        k.install_file(
            &format!("/data/f{i}"),
            &vec![i as u8; pages * PAGE_SIZE as usize],
        )
        .expect("install");
    }
    k.drop_caches().expect("drop_caches");
    let start = k.now();
    k.apply_fault_plan(&FaultPlan::new().transient(
        "hda",
        start,
        start + SimDuration::from_secs(600),
        3,
        SimDuration::from_millis(2),
    ));
    let mut ok = 0u64;
    for i in 0..files {
        let fd = k
            .open(&format!("/data/f{i}"), OpenFlags::RDONLY)
            .expect("open");
        let data = k
            .read(fd, pages * PAGE_SIZE as usize)
            .expect("bounded retries must mask a budgeted transient window");
        assert!(data.iter().all(|&b| b == i as u8), "data survived intact");
        ok += 1;
        k.close(fd).expect("close");
    }
    let u = k.usage();
    assert!(u.io_retries > 0, "the masking must be visible in rusage");
    assert!(!u.retry_backoff.is_zero(), "retries charge backoff time");
    (ok, u.io_retries, u.retry_backoff.as_nanos())
}

/// Property 3: half-cached file, device offline. `FSLEDS_GET` prices the
/// device extents unavailable; `Defer` plans them last, `Skip` prunes them.
fn run_offline_routing() -> (usize, usize, usize, usize) {
    let mut k = Kernel::table2();
    k.mkdir("/data").expect("mkdir");
    let m = k
        .mount_disk("/data", DiskDevice::table2_disk("hda"))
        .expect("mount");
    let dev = k.device_of_mount(m).expect("device");
    let mut table = SledsTable::new();
    table.fill_memory(SledsEntry::new(175e-9, 48e6));
    table.fill_device(dev, SledsEntry::new(0.018, 9e6));

    k.install_file("/data/f", &vec![7u8; 8 * PAGE_SIZE as usize])
        .expect("install");
    k.drop_caches().expect("drop_caches");
    let fd = k.open("/data/f", OpenFlags::RDONLY).expect("open");
    // Warm the first half, then lose the disk that holds the rest.
    k.read(fd, 4 * PAGE_SIZE as usize).expect("warm");
    k.apply_fault_plan(&FaultPlan::new().offline(
        "hda",
        SimTime::ZERO,
        SimTime::from_nanos(u64::MAX),
        SimDuration::from_millis(1),
    ));

    let sleds = fsleds_get(&mut k, fd, &table).expect("fsleds_get");
    let unavailable = sleds.iter().filter(|s| s.unavailable()).count();
    assert!(unavailable >= 1, "offline extents must price unavailable");

    let cfg = PickConfig::bytes(PAGE_SIZE as usize);
    let mut defer = PickSession::init(&mut k, &table, fd, cfg).expect("defer session");
    let defer_planned = defer.planned_chunks();
    assert_eq!(defer_planned, 8, "Defer keeps every chunk in the plan");
    // The cached half streams first; the offline tail is deferred.
    for _ in 0..4 {
        let (off, _) = defer.next_read().expect("cached chunk");
        assert!(off < 4 * PAGE_SIZE, "cached chunks come first");
    }
    defer.finish();

    let skip = PickSession::init(&mut k, &table, fd, cfg.skip_unavailable()).expect("skip session");
    let skip_planned = skip.planned_chunks();
    assert_eq!(skip_planned, 4, "Skip prunes the offline tail");
    skip.finish();

    (sleds.len(), unavailable, defer_planned, skip_planned)
}

/// Property 5: the same offline outage against an unreplicated disk and a
/// two-way mirror. The unreplicated reads all fail; the mirrored reads all
/// succeed with zero app-visible errors and zero retries, served entirely
/// by the surviving member (the offline primary is never commanded).
fn run_replica_reroute() -> (u64, u64, u64, u64) {
    let files = 4;
    let pages = 6usize;

    // Baseline: unreplicated disk, offline for the whole read phase.
    let mut k = Kernel::table2();
    k.mkdir("/flat").expect("mkdir");
    k.mount_disk("/flat", DiskDevice::table2_disk("hda"))
        .expect("mount");
    for i in 0..files {
        k.install_file(
            &format!("/flat/f{i}"),
            &vec![i as u8; pages * PAGE_SIZE as usize],
        )
        .expect("install");
    }
    k.drop_caches().expect("drop_caches");
    k.apply_fault_plan(&FaultPlan::new().offline(
        "hda",
        SimTime::ZERO,
        SimTime::from_nanos(u64::MAX),
        SimDuration::from_millis(1),
    ));
    let mut flat_errors = 0u64;
    for i in 0..files {
        let fd = k
            .open(&format!("/flat/f{i}"), OpenFlags::RDONLY)
            .expect("open");
        if k.read(fd, pages * PAGE_SIZE as usize).is_err() {
            flat_errors += 1;
        }
        k.close(fd).expect("close");
    }
    assert_eq!(
        flat_errors, files as u64,
        "an unreplicated disk has nothing to reroute to"
    );

    // The mirror: same outage on the primary, zero app-visible errors.
    let mut k = Kernel::table2();
    k.mkdir("/vol").expect("mkdir");
    let m = k
        .mount_volume(
            "/vol",
            VolumeLayout::Mirrored,
            vec![
                Box::new(DiskDevice::table2_disk("vd0")) as Box<dyn BlockDevice>,
                Box::new(DiskDevice::table2_disk("vd1")),
            ],
        )
        .expect("mount_volume");
    let members = k.volume_members(m);
    for i in 0..files {
        k.install_file(
            &format!("/vol/f{i}"),
            &vec![i as u8; pages * PAGE_SIZE as usize],
        )
        .expect("install");
    }
    k.drop_caches().expect("drop_caches");
    k.apply_fault_plan(&FaultPlan::new().offline(
        "vd0",
        SimTime::ZERO,
        SimTime::from_nanos(u64::MAX),
        SimDuration::from_millis(1),
    ));
    let mut mirrored_ok = 0u64;
    for i in 0..files {
        let fd = k
            .open(&format!("/vol/f{i}"), OpenFlags::RDONLY)
            .expect("open");
        let data = k
            .read(fd, pages * PAGE_SIZE as usize)
            .expect("an offline primary must reroute, not error");
        assert!(data.iter().all(|&b| b == i as u8), "data survived intact");
        mirrored_ok += 1;
        k.close(fd).expect("close");
    }
    let u = k.usage();
    assert_eq!(u.io_retries, 0, "reroute is not retry");
    let primary = k.device_stats(members[0]).expect("stats");
    let mirror = k.device_stats(members[1]).expect("stats");
    assert_eq!(primary.reads, 0, "the offline primary is never commanded");
    assert!(mirror.reads > 0, "the mirror serves every cold read");
    (flat_errors, mirrored_ok, primary.reads, mirror.reads)
}

/// Recovery-property corpus: many single-page files. One page per file
/// means one device command per cold read, so the per-command observables
/// recalibration rebuilds the table from (first-byte p50, effective
/// bandwidth) describe exactly what the prediction is priced against —
/// healthy predictions land close, and a degraded window separates cleanly.
const FILES: usize = 24;
const PAGES_PER_FILE: usize = 1;

fn read_pass(k: &mut Kernel) {
    let bytes = PAGES_PER_FILE * PAGE_SIZE as usize;
    for i in 0..FILES {
        let fd = k
            .open(&format!("/data/f{i}"), OpenFlags::RDONLY)
            .expect("open");
        k.read(fd, bytes).expect("read");
        k.close(fd).expect("close");
    }
}

fn predicted_pass(k: &mut Kernel, table: &SledsTable) {
    let bytes = PAGES_PER_FILE * PAGE_SIZE as usize;
    for i in 0..FILES {
        let fd = k
            .open(&format!("/data/f{i}"), OpenFlags::RDONLY)
            .expect("open");
        total_delivery_time(k, table, fd, AttackPlan::Linear).expect("estimate");
        k.read(fd, bytes).expect("read");
        k.close(fd).expect("close");
    }
}

fn disk_err(samples: &[AccuracySample], generation: u64) -> ClassAccuracy {
    let subset: Vec<AccuracySample> = samples
        .iter()
        .filter(|s| s.generation == generation && s.class == 1)
        .copied()
        .collect();
    summarize_class(1, &subset).expect("disk accuracy samples")
}

/// Recalibrates from the current traced session and returns the refreshed
/// table (stamped with the bumped sleds epoch, which also fences the
/// accuracy audit so the next pass's samples group under a new generation).
fn recal_now(k: &mut Kernel, table: &SledsTable) -> SledsTable {
    let fd = k.open("/data/f0", OpenFlags::RDONLY).expect("open");
    let outcome = recalibrate(k, table, fd, &RecalPolicy::default()).expect("recal");
    k.close(fd).expect("close");
    assert!(!outcome.refreshed.is_empty(), "the pass must refresh rows");
    outcome.table
}

/// Property 4, four measurements of disk-class prediction error:
///
/// * `healthy` — recalibrated table vs healthy reality (baseline);
/// * `during` — healthy-calibrated table vs a 6x-degraded disk: low,
///   because `FSLEDS_GET` folds the live fault state into the SLEDs, so
///   predictions track the degradation without a recal;
/// * `stale` — a table recalibrated *during* the window (it absorbs the
///   degraded observations) used after recovery: high, the pollution a
///   fault leaves behind;
/// * `recovered` — one post-recovery recal from a fresh observation
///   window restores the baseline.
fn run_recovery() -> (f64, f64, f64, f64) {
    let mut k = Kernel::table2();
    k.mkdir("/data").expect("mkdir");
    let m = k
        .mount_disk("/data", DiskDevice::table2_disk("hda"))
        .expect("mount");
    let dev = k.device_of_mount(m).expect("device");
    let bytes = PAGES_PER_FILE * PAGE_SIZE as usize;
    for i in 0..FILES {
        k.install_file(&format!("/data/f{i}"), &vec![i as u8; bytes])
            .expect("install");
    }
    let table0 = fill_table(&mut k, &[("/data", m)]).expect("lmbench calibration");
    // Warmup so head position and zone state reach steady state.
    read_pass(&mut k);
    k.drop_caches().expect("drop_caches");

    // Session 1: healthy baseline, then a healthy-calibrated table priced
    // against the degraded disk (the second recal only re-fences the
    // audit — the session has seen nothing but healthy commands).
    k.enable_tracing_with_capacity(1 << 16);
    read_pass(&mut k);
    k.drop_caches().expect("drop_caches");
    let table1 = recal_now(&mut k, &table0);
    predicted_pass(&mut k, &table1);
    k.drop_caches().expect("drop_caches");

    let table2 = recal_now(&mut k, &table1);
    let start = k.now();
    k.apply_fault_plan(&FaultPlan::new().degraded(
        "hda",
        start,
        start + SimDuration::from_secs(3600),
        6.0,
    ));
    predicted_pass(&mut k, &table2);
    k.drop_caches().expect("drop_caches");

    let audit1 = audit_accuracy(&k.trace_events());
    assert_eq!(audit1.cross_generation, 0);
    let healthy = disk_err(&audit1.samples, table1.generation());
    let during = disk_err(&audit1.samples, table2.generation());

    // Session 2: recalibrate from observations made *inside* the window —
    // the table absorbs the 6x — then price that stale table against the
    // recovered disk.
    k.enable_tracing_with_capacity(1 << 16);
    read_pass(&mut k);
    k.drop_caches().expect("drop_caches");
    let table3 = recal_now(&mut k, &table2);

    k.charge_cpu(SimDuration::from_secs(7200));
    assert!(
        matches!(k.device_fault_state(dev), Some(FaultState::Healthy)),
        "the window must have closed"
    );
    predicted_pass(&mut k, &table3);
    k.drop_caches().expect("drop_caches");

    let audit2 = audit_accuracy(&k.trace_events());
    assert_eq!(audit2.cross_generation, 0);
    let stale = disk_err(&audit2.samples, table3.generation());

    // Session 3: one post-recovery recal from a fresh observation window.
    k.enable_tracing_with_capacity(1 << 16);
    read_pass(&mut k);
    k.drop_caches().expect("drop_caches");
    let table4 = recal_now(&mut k, &table3);
    predicted_pass(&mut k, &table4);

    let audit3 = audit_accuracy(&k.trace_events());
    assert_eq!(audit3.cross_generation, 0);
    let recovered = disk_err(&audit3.samples, table4.generation());
    k.disable_tracing();

    assert!(
        during.mean_abs_rel_err < 2.0 * healthy.mean_abs_rel_err + 0.1,
        "fault-aware SLEDs must keep predictions usable during the window \
         ({:.4} vs healthy {:.4})",
        during.mean_abs_rel_err,
        healthy.mean_abs_rel_err
    );
    assert!(
        stale.mean_abs_rel_err > 1.0 && stale.mean_abs_rel_err > 3.0 * healthy.mean_abs_rel_err,
        "a table that absorbed the degraded window must mispredict after \
         recovery ({:.4} vs healthy {:.4})",
        stale.mean_abs_rel_err,
        healthy.mean_abs_rel_err
    );
    assert!(
        recovered.mean_abs_rel_err < 0.5 * stale.mean_abs_rel_err
            && recovered.mean_abs_rel_err < healthy.mean_abs_rel_err + 0.1,
        "post-recovery recal must restore the baseline ({:.4} vs stale {:.4})",
        recovered.mean_abs_rel_err,
        stale.mean_abs_rel_err
    );
    (
        healthy.mean_abs_rel_err,
        during.mean_abs_rel_err,
        stale.mean_abs_rel_err,
        recovered.mean_abs_rel_err,
    )
}

fn main() {
    // Property 1: determinism.
    let a = run_storm(STORM_SEED);
    let b = run_storm(STORM_SEED);
    assert_eq!(a, b, "same seed must replay byte-identically");
    println!(
        "determinism: seed {STORM_SEED:#x} -> checksum {:#018x}, {} retries, {} ns backoff, clock {} ns (twice)",
        a.0, a.1, a.2, a.3
    );

    // Property 2: retries mask a budgeted transient window.
    let (reads_ok, retries, backoff_ns) = run_transient_masking();
    println!("masking: {reads_ok} reads ok, {retries} retries, {backoff_ns} ns backoff");

    // Property 3: picks route around an offline device.
    let (extents, unavailable, defer_planned, skip_planned) = run_offline_routing();
    println!(
        "routing: {extents} extents ({unavailable} unavailable), defer plans {defer_planned}, skip plans {skip_planned}"
    );

    // Property 4: post-recovery recalibration restores prediction error.
    let (err_healthy, err_during, err_stale, err_recovered) = run_recovery();
    println!(
        "recovery: disk error healthy {err_healthy:.4}, during fault {err_during:.4}, stale table {err_stale:.4}, recovered {err_recovered:.4}"
    );

    // Property 5: a mirrored volume masks the outage entirely.
    let (flat_errors, mirrored_ok, primary_reads, mirror_reads) = run_replica_reroute();
    println!(
        "reroute: unreplicated {flat_errors} errors, mirrored {mirrored_ok} reads ok (primary {primary_reads} cmds, mirror {mirror_reads} cmds)"
    );

    // House results-JSON style: hand-rolled, fixed precision, so identical
    // runs serialize identically and check.sh can diff against the
    // committed copy as a regression gate over the whole fault subsystem.
    let json = format!(
        "{{\n  \"audit\": \"fault storm: determinism, retry masking, offline routing, recovery, replica reroute\",\n  \"regenerate\": \"cargo run --release --example fault_storm\",\n  \"determinism\": {{\"seed\": {STORM_SEED}, \"checksum\": \"{:#018x}\", \"io_retries\": {}, \"retry_backoff_ns\": {}, \"final_clock_ns\": {}}},\n  \"masking\": {{\"reads_ok\": {reads_ok}, \"io_retries\": {retries}, \"retry_backoff_ns\": {backoff_ns}}},\n  \"routing\": {{\"extents\": {extents}, \"unavailable\": {unavailable}, \"defer_planned\": {defer_planned}, \"skip_planned\": {skip_planned}}},\n  \"recovery\": {{\"err_healthy\": {err_healthy:.4}, \"err_during_fault\": {err_during:.4}, \"err_stale_table\": {err_stale:.4}, \"err_recovered\": {err_recovered:.4}}},\n  \"reroute\": {{\"unreplicated_errors\": {flat_errors}, \"mirrored_reads_ok\": {mirrored_ok}, \"offline_primary_commands\": {primary_reads}, \"mirror_commands\": {mirror_reads}}}\n}}\n",
        a.0, a.1, a.2, a.3
    );
    assert_eq!(json.matches('{').count(), json.matches('}').count());

    let dir = results_dir();
    std::fs::create_dir_all(&dir).expect("mkdir results");
    let path = dir.join("FAULTS_report.json");
    std::fs::write(&path, &json).expect("write report");
    println!("-> {}", path.display());
}
