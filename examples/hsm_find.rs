//! Pruning I/O on a hierarchical storage manager: `find -latency` skips
//! tape-resident files, the paper's flagship pruning use case.
//!
//! Builds an HSM with a handful of files, migrates some to tape, and
//! compares grepping everything (tapes get staged, minutes of mount time)
//! against grepping only what `find -latency -10` deems cheap.
//!
//! ```text
//! cargo run --release --example hsm_find
//! ```

use sleds_repro::apps::find::{find, FindOptions};
use sleds_repro::apps::grep::{grep, GrepOptions};
use sleds_repro::devices::{DiskDevice, TapeDevice};
use sleds_repro::fs::Kernel;
use sleds_repro::lmbench;
use sleds_repro::sleds::LatencyPredicate;
use sleds_repro::textmatch::Regex;

fn main() {
    let mut kernel = Kernel::table2();
    kernel.mkdir("/hsm").expect("mkdir");
    let mount = kernel
        .mount_hsm(
            "/hsm",
            DiskDevice::table2_disk("hda"),
            Box::new(TapeDevice::dlt("st0")),
            512,
        )
        .expect("mount hsm");
    let table = lmbench::fill_table(&mut kernel, &[("/hsm", mount)]).expect("calibration");

    // Six 4 MiB "project archives"; the even ones were migrated to tape
    // long ago.
    let payload: Vec<u8> = (0..4 << 20)
        .map(|i| {
            if i % 61 == 0 {
                b'\n'
            } else {
                b'a' + (i % 23) as u8
            }
        })
        .collect();
    for i in 0..6 {
        let path = format!("/hsm/project{i}.log");
        kernel.install_file(&path, &payload).expect("install");
        if i % 2 == 0 {
            kernel.hsm_migrate(&path, true).expect("migrate");
        }
    }

    let re = Regex::new("abcdefgh").expect("pattern");

    // Smart: prune anything that would take over 10 seconds to deliver.
    let job = kernel.start_job();
    let cheap = find(
        &mut kernel,
        "/hsm",
        &FindOptions {
            latency: Some(LatencyPredicate::parse("-10").expect("spec")),
            ..Default::default()
        },
        Some(&table),
    )
    .expect("find");
    println!("find -latency -10 kept {} of 6 files:", cheap.len());
    for hit in &cheap {
        println!(
            "  {}  (est. {:.3}s)",
            hit.path,
            hit.estimate_secs.unwrap_or(0.0)
        );
        grep(
            &mut kernel,
            &hit.path,
            &re,
            &GrepOptions::default(),
            Some(&table),
        )
        .expect("grep");
    }
    let pruned = kernel.finish_job(&job);
    println!("pruned search finished in {}\n", pruned.elapsed);

    // Naive: grep everything; the tape files must be staged in.
    let job = kernel.start_job();
    let all = find(&mut kernel, "/hsm", &FindOptions::default(), None).expect("find");
    for hit in &all {
        if kernel.stat(&hit.path).expect("stat").kind == sleds_repro::fs::FileKind::File {
            grep(&mut kernel, &hit.path, &re, &GrepOptions::default(), None).expect("grep");
        }
    }
    let full = kernel.finish_job(&job);
    println!(
        "unpruned search (staged 3 tape files) took {}",
        full.elapsed
    );
    println!(
        "pruning advantage: {:.0}x",
        full.elapsed.as_secs_f64() / pruned.elapsed.as_secs_f64().max(1e-9)
    );
}
