//! Trace a mixed-device workload and audit the SLEDs predictions.
//!
//! Builds one machine with four storage levels (local disk, CD-ROM, NFS,
//! HSM with a tape back end), turns on the virtual-clock tracer, runs
//! `grep --sleds` / `wc --sleds` / `find -latency` over it, and then asks
//! the trace three questions:
//!
//! * what happened? — Chrome `trace_event` JSON (`results/TRACE_grep.json`,
//!   load it in `chrome://tracing` or Perfetto) plus a folded-stack summary
//!   (`results/TRACE_flame.folded`, feed it to any flamegraph renderer);
//! * how much of it? — per-layer counters and latency histograms via the
//!   `FSLEDS_STAT` metrics snapshot;
//! * were the predictions right? — the accuracy audit pairs every
//!   `sleds_total_delivery_time` estimate with the traced actual virtual
//!   delivery time and reports per-device-class error distributions to
//!   `results/AUDIT_accuracy.json`.
//!
//! ```text
//! cargo run --release --example trace_viewer
//! ```

use std::path::PathBuf;

use sleds_repro::apps::find::{find, FindOptions};
use sleds_repro::apps::grep::{grep, GrepOptions};
use sleds_repro::apps::wc::wc;
use sleds_repro::devices::{DiskDevice, NfsDevice, TapeDevice};
use sleds_repro::fs::{Kernel, OpenFlags};
use sleds_repro::lmbench::fill_table;
use sleds_repro::sim_core::{DetRng, PAGE_SIZE};
use sleds_repro::sleds::LatencyPredicate;
use sleds_repro::textmatch::Regex;
use sleds_repro::trace::{audit_accuracy, chrome_trace_json, folded_stacks};

/// Deterministic text with enough newlines and words to exercise grep/wc.
fn random_text(n: usize, seed: u64) -> Vec<u8> {
    let mut rng = DetRng::new(seed);
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        match rng.range_u64(0, 12) {
            0 => out.extend_from_slice(b"\n"),
            1 => out.extend_from_slice(b"needle "),
            2 | 3 => out.push(b' '),
            _ => out.push(b'a' + rng.range_u64(0, 26) as u8),
        }
    }
    out.truncate(n);
    out
}

fn results_dir() -> PathBuf {
    std::env::var("SLEDS_RESULTS")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("results"))
}

fn main() {
    // One machine, four storage levels.
    let mut k = Kernel::table2();
    for dir in ["/data", "/cdrom", "/nfs", "/hsm"] {
        k.mkdir(dir).expect("mkdir");
    }
    let m_disk = k
        .mount_disk("/data", DiskDevice::table2_disk("hda"))
        .expect("mount disk");
    let m_cd = k
        .mount_cdrom(
            "/cdrom",
            sleds_repro::devices::CdRomDevice::table2_drive("cd0"),
        )
        .expect("mount cdrom");
    let m_nfs = k
        .mount_nfs("/nfs", NfsDevice::table2_mount("srv:/export"))
        .expect("mount nfs");
    let m_hsm = k
        .mount_hsm(
            "/hsm",
            DiskDevice::table2_disk("hdb"),
            Box::new(TapeDevice::dlt("st0")),
            256,
        )
        .expect("mount hsm");
    let table = fill_table(
        &mut k,
        &[
            ("/data", m_disk),
            ("/cdrom", m_cd),
            ("/nfs", m_nfs),
            ("/hsm", m_hsm),
        ],
    )
    .expect("lmbench calibration");

    let text = random_text(96 * PAGE_SIZE as usize, 7);
    for path in [
        "/data/corpus.txt",
        "/cdrom/corpus.txt",
        "/nfs/corpus.txt",
        "/hsm/corpus.txt",
    ] {
        k.install_file(path, &text).expect("install");
    }
    k.hsm_migrate("/hsm/corpus.txt", true).expect("migrate");
    // Warm a middle slice of the disk copy so the pick order is genuinely
    // scrambled and the cache layer has hits to report.
    let fd = k.open("/data/corpus.txt", OpenFlags::RDONLY).expect("open");
    k.lseek(fd, 24 * PAGE_SIZE as i64, sleds_repro::fs::Whence::Set)
        .expect("lseek");
    k.read(fd, 16 * PAGE_SIZE as usize).expect("warm");
    k.close(fd).expect("close");

    // Everything from here on is observed. The tracer never advances the
    // virtual clock, so these runs cost exactly what untraced runs would.
    k.enable_tracing_with_capacity(1 << 17);

    let re = Regex::new("needle").expect("regex");
    for path in ["/data/corpus.txt", "/cdrom/corpus.txt", "/nfs/corpus.txt"] {
        let hits = grep(&mut k, path, &re, &GrepOptions::default(), Some(&table)).expect("grep");
        println!("grep --sleds {path}: {} matches", hits.matches.len());
    }
    let counts = wc(&mut k, "/data/corpus.txt", Some(&table)).expect("wc");
    println!(
        "wc --sleds /data/corpus.txt: {} lines, {} words, {} bytes",
        counts.lines, counts.words, counts.bytes
    );
    // `find -latency` estimates every file, including the tape-resident
    // one, but prunes it without reading — the audit reports it as an
    // unread prediction.
    let cheap = find(
        &mut k,
        "/",
        &FindOptions {
            latency: Some(LatencyPredicate::parse("-60").expect("pred")),
            ..Default::default()
        },
        Some(&table),
    )
    .expect("find");
    println!(
        "find / -latency -60: {} of 4 copies retrievable in under a minute",
        cheap.len()
    );
    // Read the tape copy too so the tape class shows up in the audit with
    // an actual delivery time.
    let tape_hits = grep(
        &mut k,
        "/hsm/corpus.txt",
        &re,
        &GrepOptions::default(),
        Some(&table),
    )
    .expect("grep hsm");
    println!(
        "grep --sleds /hsm/corpus.txt: {} matches (staged from tape)",
        tape_hits.matches.len()
    );

    let events = k.trace_events();
    let dropped = k.trace_dropped();
    let metrics = k.metrics().cloned().expect("tracing is on");
    k.disable_tracing();

    println!(
        "\ntraced {} events ({} dropped), {} resident pages ({} dirty)\n",
        events.len(),
        dropped,
        k.cache_resident_pages(),
        k.cache_dirty_pages(),
    );
    println!("{}", metrics.render_text());

    let dir = results_dir();
    std::fs::create_dir_all(&dir).expect("mkdir results");

    let chrome = chrome_trace_json(&events, dropped);
    assert_eq!(
        chrome.matches('{').count(),
        chrome.matches('}').count(),
        "exported JSON must be balanced"
    );
    let chrome_path = dir.join("TRACE_grep.json");
    std::fs::write(&chrome_path, &chrome).expect("write chrome trace");
    println!("-> {}", chrome_path.display());

    let folded = folded_stacks(&events);
    let folded_path = dir.join("TRACE_flame.folded");
    std::fs::write(&folded_path, &folded).expect("write folded stacks");
    println!("-> {}", folded_path.display());

    let audit = audit_accuracy(&events);
    assert!(
        !audit.samples.is_empty(),
        "the workload must produce audited predictions"
    );
    assert!(
        audit.classes.len() >= 2,
        "expected several device classes in the audit, got {}",
        audit.classes.len()
    );
    println!("\n{}", audit.render_text());
    let audit_path = dir.join("AUDIT_accuracy.json");
    std::fs::write(
        &audit_path,
        audit.to_json("cargo run --release --example trace_viewer"),
    )
    .expect("write audit");
    println!("-> {}", audit_path.display());
}
