//! Reporting latency to users: the gmc properties panel across storage
//! levels (the paper's Figure 6, as text).
//!
//! Builds one machine with a local disk, an NFS mount and an HSM, puts a
//! file on each, and prints what the file manager would show — including
//! the "should I really open this?" signal for a tape-resident file.
//!
//! ```text
//! cargo run --example latency_report
//! ```

use sleds_repro::apps::gmc::properties_panel;
use sleds_repro::devices::{DiskDevice, NfsDevice, TapeDevice};
use sleds_repro::fs::{Kernel, OpenFlags};
use sleds_repro::lmbench;

fn main() {
    let mut kernel = Kernel::table2();
    for dir in ["/data", "/nfs", "/hsm"] {
        kernel.mkdir(dir).expect("mkdir");
    }
    let m_disk = kernel
        .mount_disk("/data", DiskDevice::table2_disk("hda"))
        .expect("mount disk");
    let m_nfs = kernel
        .mount_nfs("/nfs", NfsDevice::table2_mount("srv:/export"))
        .expect("mount nfs");
    let m_hsm = kernel
        .mount_hsm(
            "/hsm",
            DiskDevice::table2_disk("hdb"),
            Box::new(TapeDevice::dlt("st0")),
            512,
        )
        .expect("mount hsm");

    let table = lmbench::fill_table(
        &mut kernel,
        &[("/data", m_disk), ("/nfs", m_nfs), ("/hsm", m_hsm)],
    )
    .expect("calibration");

    let payload = vec![7u8; 4 << 20];
    for path in ["/data/report.dat", "/nfs/report.dat", "/hsm/report.dat"] {
        kernel.install_file(path, &payload).expect("install");
    }
    // Half-cache the disk file so its panel shows a split.
    let fd = kernel
        .open("/data/report.dat", OpenFlags::RDONLY)
        .expect("open");
    kernel.read(fd, 2 << 20).expect("warm");
    kernel.close(fd).expect("close");
    // Send the HSM file to tape.
    kernel
        .hsm_migrate("/hsm/report.dat", true)
        .expect("migrate");

    for path in ["/data/report.dat", "/nfs/report.dat", "/hsm/report.dat"] {
        let panel = properties_panel(&mut kernel, &table, path).expect("panel");
        println!("{panel}");
        if panel.best_secs > 30.0 {
            println!(
                "  !! retrieval will take {:.0}s — mount required\n",
                panel.best_secs
            );
        } else {
            println!();
        }
    }
}
