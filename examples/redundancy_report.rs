//! Redundancy under a seeded fault storm: availability, tail latency, and
//! the price of redundant work, written to `results/REDUNDANCY_report.json`
//! (diff-gated) and `results/BENCH_redundancy.json` (bench envelope).
//!
//! One storm — a seeded mix of transient/degraded/offline windows on the
//! device named `primary`, plus one explicit 8x-degraded window and one
//! explicit offline window — is driven against four configurations of the
//! same workload:
//!
//! * `flat` — an unreplicated disk: the baseline that *shows* the storm
//!   (reads inside offline windows fail with I/O errors);
//! * `mirror-retry` — a two-way mirror with hedging disabled: the outage
//!   is masked (offline primary reroutes, zero app errors) but degraded
//!   windows are served at degraded speed;
//! * `mirror-hedged` — the same mirror with the default hedge policy:
//!   a degraded pick triggers a redundant request priced by live fault
//!   epochs, the predicted loser is cancelled and charged exactly
//!   `cancel_cost`, and the faulted-window tail collapses;
//! * `coded` — a (2, 3) erasure code across the disk and two geo NFS
//!   links: every read needs any 2 of 3 fragments, so the storm on the
//!   primary never surfaces and redundant bytes stay near zero.
//!
//! Asserted here (not just reported): mirrored and coded configurations
//! complete 100% of reads with zero app-visible errors under the same
//! storm that fails the flat baseline; hedging strictly improves the p99
//! of reads issued inside fault windows over retry-only; hedge accounting
//! is exact (`hedge_wait == hedges x cancel_cost`); per-tenant rusage
//! rows sum exactly to the global counters and each tenant's elapsed
//! virtual time is exactly `cpu + io_wait`; and the whole run replays
//! byte-identically from the same seed.
//!
//! ```text
//! cargo run --release --example redundancy_report
//! ```

use std::path::PathBuf;
// sledlint::allow(D001, host wall-clock is one of the numbers the bench envelope reports)
use std::time::Instant;

use sleds_repro::devices::{BlockDevice, DiskDevice, FaultPlan, FaultState, NfsDevice};
use sleds_repro::fs::{HedgePolicy, Kernel, OpenFlags, Rusage, TenantId, VolumeLayout};
use sleds_repro::sim_core::{SimDuration, SimTime, PAGE_SIZE, SECTOR_SIZE};

const STORM_SEED: u64 = 0x5EED5;
const FILES: usize = 6;
const PAGES: usize = 6;
const PASSES: usize = 12;
const THINK_SECS: u64 = 2;

fn results_dir() -> PathBuf {
    std::env::var("SLEDS_RESULTS")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("results"))
}

fn secs(s: u64) -> SimTime {
    SimTime::from_nanos(s * 1_000_000_000)
}

/// The one storm every configuration faces: 60 s of seeded mixed windows
/// on `primary`, then an explicit 8x-degraded window (60–90 s) and an
/// explicit offline window (95–120 s), so both behaviors are exercised
/// for every seed.
fn storm() -> FaultPlan {
    FaultPlan::seeded_storm(STORM_SEED, &["primary"], SimDuration::from_secs(60))
        .degraded("primary", secs(60), secs(90), 8.0)
        .offline("primary", secs(95), secs(120), SimDuration::from_millis(1))
}

#[derive(Clone, Copy, PartialEq)]
enum Config {
    Flat,
    Mirror,
    Coded,
}

impl Config {
    fn layout(&self) -> &'static str {
        match self {
            Config::Flat => "single disk",
            Config::Mirror => "mirrored x2 (disk + disk)",
            Config::Coded => "coded (2,3) (disk + nfs-metro + nfs-regional)",
        }
    }
}

/// Everything one configuration's run produces.
struct Outcome {
    reads_total: u64,
    reads_ok: u64,
    reads_err: u64,
    all_ns: Vec<u64>,
    faulted_ns: Vec<u64>,
    usage: Rusage,
    redundant_bytes: u64,
    virtual_ns: u64,
}

/// Nearest-rank percentile over an unsorted sample set.
fn percentile(samples: &[u64], q: f64) -> u64 {
    if samples.is_empty() {
        return 0;
    }
    let mut v = samples.to_vec();
    v.sort_unstable();
    let rank = ((q * v.len() as f64).ceil() as usize).clamp(1, v.len());
    v[rank - 1]
}

/// Drives the workload through the storm on one configuration. Two
/// tenants alternate reads so the attribution law has cross-tenant rows
/// to sum; pacing (2 s of think time per read) marches the virtual clock
/// through every storm window.
fn run_config(cfg: Config, hedged: bool) -> Outcome {
    let mut k = Kernel::table2();
    k.set_hedge_policy(if hedged {
        HedgePolicy::default()
    } else {
        HedgePolicy::disabled()
    });
    k.mkdir("/vol").expect("mkdir");
    let members = match cfg {
        Config::Flat => {
            let m = k
                .mount_disk("/vol", DiskDevice::table2_disk("primary"))
                .expect("mount");
            vec![k.device_of_mount(m).expect("device")]
        }
        Config::Mirror => {
            let m = k
                .mount_volume(
                    "/vol",
                    VolumeLayout::Mirrored,
                    vec![
                        Box::new(DiskDevice::table2_disk("primary")) as Box<dyn BlockDevice>,
                        Box::new(DiskDevice::table2_disk("replica1")),
                    ],
                )
                .expect("mount_volume");
            k.volume_members(m)
        }
        Config::Coded => {
            let m = k
                .mount_volume(
                    "/vol",
                    VolumeLayout::Coded { k: 2 },
                    vec![
                        Box::new(DiskDevice::table2_disk("primary")) as Box<dyn BlockDevice>,
                        Box::new(NfsDevice::metro_link("replica1")),
                        Box::new(NfsDevice::regional_link("replica2")),
                    ],
                )
                .expect("mount_volume");
            k.volume_members(m)
        }
    };
    let bytes = PAGES * PAGE_SIZE as usize;
    for i in 0..FILES {
        k.install_file(&format!("/vol/f{i}"), &vec![i as u8; bytes])
            .expect("install");
    }
    k.drop_caches().expect("drop_caches");
    k.apply_fault_plan(&storm());

    let tenants: Vec<TenantId> = (0..2)
        .map(|t| k.tenant_register(&format!("tenant-{t}")))
        .collect();
    let mut out = Outcome {
        reads_total: 0,
        reads_ok: 0,
        reads_err: 0,
        all_ns: Vec::new(),
        faulted_ns: Vec::new(),
        usage: Rusage::default(),
        redundant_bytes: 0,
        virtual_ns: 0,
    };
    for _pass in 0..PASSES {
        for i in 0..FILES {
            k.tenant_switch(tenants[i % tenants.len()]).expect("switch");
            let in_fault = members
                .iter()
                .any(|&d| !matches!(k.device_fault_state(d), Some(FaultState::Healthy) | None));
            let fd = k
                .open(&format!("/vol/f{i}"), OpenFlags::RDONLY)
                .expect("open");
            let t0 = k.now();
            let res = k.read(fd, bytes);
            let took = (k.now() - t0).as_nanos();
            k.close(fd).expect("close");
            out.reads_total += 1;
            match res {
                Ok(data) => {
                    assert!(data.iter().all(|&b| b == i as u8), "data survived intact");
                    out.reads_ok += 1;
                }
                Err(_) => out.reads_err += 1,
            }
            out.all_ns.push(took);
            if in_fault {
                out.faulted_ns.push(took);
            }
            // Think time: the pacing that walks the clock through the
            // storm's windows (12 passes x 6 reads x 2 s spans ~144 s,
            // past the last explicit window).
            k.charge_cpu(SimDuration::from_secs(THINK_SECS));
        }
        k.tenant_switch(TenantId(0)).expect("switch");
        k.drop_caches().expect("drop_caches");
    }

    // The attribution law, per tenant and in aggregate: rows sum exactly
    // to the global counters, and each tenant's elapsed virtual time is
    // exactly its cpu + io_wait (hedge cancels included — a cancelled
    // loser charges its waiter, nobody else).
    let mut total = Rusage::default();
    for t in 0..k.tenant_count() {
        let id = TenantId(t as u64);
        let u = k.tenant_usage(id).expect("tenant usage");
        let elapsed = k.tenant_elapsed(id).expect("tenant elapsed");
        assert_eq!(
            elapsed,
            u.cpu + u.io_wait,
            "tenant {t}: elapsed must equal cpu + io_wait exactly"
        );
        total.accumulate(&u);
        // Tenant timelines are concurrent (the kernel clock rewinds on a
        // switch), so the run's virtual extent is the sum of per-tenant
        // elapsed time, not the final clock reading.
        out.virtual_ns += elapsed.as_nanos();
    }
    out.usage = k.usage();
    assert_eq!(
        total, out.usage,
        "per-tenant rusage rows must sum exactly to the global counters"
    );
    assert_eq!(
        out.usage.hedge_wait.as_nanos(),
        out.usage.hedges * k.hedge_policy().cancel_cost.as_nanos(),
        "hedge overhead is exactly one cancel charge per loser"
    );

    // Redundant work in bytes: everything the members moved beyond what
    // the application was actually delivered.
    let moved: u64 = members
        .iter()
        .map(|&d| k.device_stats(d).expect("stats").sectors_read * SECTOR_SIZE)
        .sum();
    out.redundant_bytes = moved.saturating_sub(out.reads_ok * bytes as u64);
    out
}

fn volume_json(name: &str, layout: &str, o: &Outcome) -> String {
    format!(
        "    {{\"name\": \"{name}\", \"layout\": \"{layout}\", \
         \"reads_total\": {}, \"reads_ok\": {}, \"reads_err\": {}, \
         \"availability\": {:.4},\n     \
         \"p50_ns\": {}, \"p99_ns\": {}, \"p999_ns\": {},\n     \
         \"faulted\": {{\"count\": {}, \"p50_ns\": {}, \"p99_ns\": {}, \"p999_ns\": {}}},\n     \
         \"hedges\": {}, \"hedge_wins\": {}, \"hedge_losses\": {}, \"hedge_wait_ns\": {}, \
         \"io_retries\": {}, \"redundant_bytes\": {}}}",
        o.reads_total,
        o.reads_ok,
        o.reads_err,
        o.reads_ok as f64 / o.reads_total as f64,
        percentile(&o.all_ns, 0.50),
        percentile(&o.all_ns, 0.99),
        percentile(&o.all_ns, 0.999),
        o.faulted_ns.len(),
        percentile(&o.faulted_ns, 0.50),
        percentile(&o.faulted_ns, 0.99),
        percentile(&o.faulted_ns, 0.999),
        o.usage.hedges,
        o.usage.hedge_wins,
        o.usage.hedges - o.usage.hedge_wins,
        o.usage.hedge_wait.as_nanos(),
        o.usage.io_retries,
        o.redundant_bytes,
    )
}

fn main() {
    // sledlint::allow(D001, host wall-clock is one of the numbers the bench envelope reports)
    let wall = Instant::now();
    let flat = run_config(Config::Flat, false);
    let retry = run_config(Config::Mirror, false);
    let hedged = run_config(Config::Mirror, true);
    let coded = run_config(Config::Coded, true);

    // Determinism: the hedged run is a pure function of the seed.
    let again = run_config(Config::Mirror, true);
    assert_eq!(hedged.all_ns, again.all_ns, "latencies must replay");
    assert_eq!(hedged.usage, again.usage, "usage must replay");
    assert_eq!(hedged.virtual_ns, again.virtual_ns, "clock must replay");

    // The storm is real: the unreplicated baseline loses reads in the
    // offline window. Redundancy masks it completely.
    assert!(flat.reads_err > 0, "the flat baseline must show the outage");
    for (name, o) in [
        ("mirror-retry", &retry),
        ("mirror-hedged", &hedged),
        ("coded", &coded),
    ] {
        assert_eq!(
            o.reads_ok, o.reads_total,
            "{name}: redundancy must complete 100% of reads with no Eio"
        );
    }

    // Hedging collapses the faulted-window tail relative to retry-only.
    let p99_retry = percentile(&retry.faulted_ns, 0.99);
    let p99_hedged = percentile(&hedged.faulted_ns, 0.99);
    assert!(
        (p99_hedged as f64) < 0.8 * p99_retry as f64,
        "hedged p99 during fault windows ({p99_hedged} ns) must beat retry-only ({p99_retry} ns)"
    );
    assert!(hedged.usage.hedges > 0, "the storm must trigger hedges");
    assert!(hedged.usage.hedge_wins > 0, "some hedges must win");
    assert_eq!(retry.usage.hedges, 0, "retry-only never hedges");

    let speedup = p99_retry as f64 / p99_hedged as f64;
    println!(
        "storm {STORM_SEED:#x}: flat {}/{} ok; mirror-retry p99(faulted) {p99_retry} ns; \
         mirror-hedged p99(faulted) {p99_hedged} ns ({speedup:.2}x); \
         coded {}/{} ok, {} redundant bytes",
        flat.reads_ok, flat.reads_total, coded.reads_ok, coded.reads_total, coded.redundant_bytes
    );
    println!(
        "hedges: {} issued, {} won, {} lost, {} ns cancel overhead",
        hedged.usage.hedges,
        hedged.usage.hedge_wins,
        hedged.usage.hedges - hedged.usage.hedge_wins,
        hedged.usage.hedge_wait.as_nanos()
    );

    // House results-JSON style: hand-rolled, fixed precision, virtual
    // quantities only, so identical runs serialize identically and
    // check.sh can diff against the committed copy.
    let json = format!(
        "{{\n  \"audit\": \"redundant volumes under a seeded fault storm: availability, \
         faulted-window tails, hedge accounting, redundant work\",\n  \
         \"regenerate\": \"cargo run --release --example redundancy_report\",\n  \
         \"storm\": {{\"seed\": {STORM_SEED}, \"seeded_horizon_s\": 60, \
         \"explicit_degraded_s\": [60, 90], \"explicit_offline_s\": [95, 120]}},\n  \
         \"workload\": {{\"files\": {FILES}, \"pages_per_file\": {PAGES}, \
         \"passes\": {PASSES}, \"tenants\": 2}},\n  \
         \"volumes\": [\n{},\n{},\n{},\n{}\n  ],\n  \
         \"hedge_gain\": {{\"p99_faulted_retry_ns\": {p99_retry}, \
         \"p99_faulted_hedged_ns\": {p99_hedged}, \"speedup\": {speedup:.2}}},\n  \
         \"attribution\": {{\"tenants_sum_to_global\": true, \
         \"elapsed_equals_cpu_plus_io_wait\": true}}\n}}\n",
        volume_json("flat", Config::Flat.layout(), &flat),
        volume_json("mirror-retry", Config::Mirror.layout(), &retry),
        volume_json("mirror-hedged", Config::Mirror.layout(), &hedged),
        volume_json("coded", Config::Coded.layout(), &coded),
    );
    assert_eq!(json.matches('{').count(), json.matches('}').count());

    let dir = results_dir();
    std::fs::create_dir_all(&dir).expect("mkdir results");
    let path = dir.join("REDUNDANCY_report.json");
    std::fs::write(&path, &json).expect("write report");
    println!("-> {}", path.display());

    // Bench envelope: virtual time and throughput are deterministic;
    // only the host wall-clock line varies run to run (check.sh filters
    // it before diffing).
    let virtual_ns: u64 = flat.virtual_ns + retry.virtual_ns + hedged.virtual_ns + coded.virtual_ns;
    let reads: u64 = flat.reads_total + retry.reads_total + hedged.reads_total + coded.reads_total;
    // Throughput of the harness itself (host wall), matching the other
    // bench envelopes; the diff gate filters this line and host_wall_ns.
    let host_wall_ns = wall.elapsed().as_nanos() as u64;
    let ops_per_sec = if host_wall_ns > 0 {
        (reads as f64 / (host_wall_ns as f64 / 1e9)).round() as u64
    } else {
        0
    };
    let bench = format!(
        "{{\n  \"schema\": \"sleds-bench-v1\",\n  \"name\": \"redundancy-storm\",\n  \
         \"config\": \"4 configs x {PASSES} passes x {FILES} files, seed {STORM_SEED:#x}\",\n  \
         \"virtual_ns\": {virtual_ns},\n  \"host_wall_ns\": {host_wall_ns},\n  \
         \"ops_per_sec\": {ops_per_sec},\n  \
         \"detail\": {{\"reads\": {reads}, \"hedges\": {}, \"hedge_wins\": {}, \
         \"coded_redundant_bytes\": {}}}\n}}\n",
        hedged.usage.hedges, hedged.usage.hedge_wins, coded.redundant_bytes,
    );
    let bench_path = dir.join("BENCH_redundancy.json");
    std::fs::write(&bench_path, &bench).expect("write bench");
    println!("-> {}", bench_path.display());
}
