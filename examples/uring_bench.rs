//! The tentpole benchmark: how much syscall-boundary CPU does the
//! submission ring save, and how much more does in-kernel pushdown save,
//! on a million-file tree?
//!
//! Builds a simulated tree of 1,000,000 sparse one-page files (1000
//! directories x 1000 files), warms a 4096-file working set plus one
//! "needle" file, and runs two workloads three ways each:
//!
//! * `find -latency -m10` — price every file, keep the fast ones.
//!   - **naive**: the stock sequential walk (`find_report`): per file a
//!     `stat` + `open` + `FSLEDS_GET` + `close`, each its own crossing.
//!   - **batched**: the same per-file ops submitted through a deep
//!     [`SubmissionRing`] — one crossing services up to 1024 ops.
//!   - **pushdown**: `find --prog` (`find_prog`): the predicate compiles
//!     to a [`PickProgram`] and one `FSLEDS_WALK` crossing prices and
//!     judges the whole tree in-kernel.
//! * `grep -q needle` — scan files in walk order until the first match.
//!   - **naive**: per file `open` + `pread` + `close`, three crossings.
//!   - **batched**: the same pipeline through the ring.
//!   - **pushdown**: one `FSLEDS_WALK` with `ProgOrder::CachedFirst`
//!     reorders the tree most-cached-first, so the warm needle file is
//!     scanned almost immediately instead of 250k files in.
//!
//! All three modes of a workload must produce identical answers (the
//! equivalence suites pin this in general; this bench asserts it again at
//! scale), and the run asserts the acceptance floor: batched and pushdown
//! each cut total crossing CPU by >= 10x, throughput orders
//! pushdown >= batched >= naive, and the batched path clears one million
//! simulated ops per second of virtual CPU.
//!
//! Emits `results/BENCH_uring.json` (deterministic apart from the
//! `host_wall` lines, which the check script filters before diffing).

use std::path::PathBuf;

use sleds_repro::apps::find::{find_prog, find_report, FindHit, FindOptions};
use sleds_repro::devices::DiskDevice;
use sleds_repro::fs::{
    Fd, Kernel, OpenFlags, PickProgram, ProgInst, ProgOrder, ProgPricing, RingOp, RingPayload,
    Rusage, SubmissionRing,
};
use sleds_repro::sim_core::SimDuration;
use sleds_repro::sleds::{
    estimate_seconds, pricing_from, sleds_from_prog, AttackPlan, LatencyPredicate, SledsEntry,
    SledsTable,
};

// sledlint::allow(D001, host wall-clock is one of the numbers this benchmark reports)
use std::time::Instant;

/// Tree shape: `DIRS x FILES_PER_DIR` sparse files of `FILE_BYTES` each.
const DIRS: usize = 1000;
const FILES_PER_DIR: usize = 1000;
const FILE_BYTES: u64 = 4096;

/// Warm working set: the first `WARM_FILES` files of the first
/// `WARM_DIRS` directories, fully resident (16 MiB, inside the table2
/// cache budget), plus the needle file.
const WARM_DIRS: usize = 128;
const WARM_FILES: usize = 32;

/// The one file whose contents contain the grep pattern. A quarter of the
/// way through the walk order, so the naive scan churns through ~250k
/// files before reaching it.
const NEEDLE_DIR: usize = 250;
const NEEDLE_FILE: usize = 500;
const PATTERN: &[u8] = b"needle";

/// Ring depth for the batched modes. Deeper than the API default (64):
/// a batch-hungry tool sizes its ring like an io_uring app would.
const RING_ENTRIES: usize = 1024;

/// User-side bookkeeping charge per examined entry, kept identical to the
/// sequential find's `FIND_NS_PER_ENTRY` so the modes differ only in how
/// they cross the boundary.
const FIND_NS_PER_ENTRY: u64 = 400;

fn results_dir() -> PathBuf {
    std::env::var("SLEDS_RESULTS")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("results"))
}

fn dir_path(d: usize) -> String {
    format!("/tree/d{d:03}")
}

fn file_path(d: usize, f: usize) -> String {
    format!("/tree/d{d:03}/f{f:03}")
}

/// Builds the kernel, tree, and sleds table. Sparse installs keep host
/// memory flat; only the needle file has real contents.
fn setup() -> (Kernel, SledsTable) {
    let mut k = Kernel::table2();
    k.mkdir("/tree").unwrap();
    let m = k
        .mount_disk("/tree", DiskDevice::table2_disk("hda"))
        .unwrap();
    let dev = k.device_of_mount(m).expect("mount has device");

    for d in 0..DIRS {
        k.mkdir(&dir_path(d)).unwrap();
        for f in 0..FILES_PER_DIR {
            k.install_sparse_file(&file_path(d, f), FILE_BYTES).unwrap();
        }
    }
    let mut needle = vec![b'.'; FILE_BYTES as usize];
    needle[2048..2048 + PATTERN.len()].copy_from_slice(PATTERN);
    k.install_file(&file_path(NEEDLE_DIR, NEEDLE_FILE), &needle)
        .unwrap();

    // Flat table: the Table 2 rows the boot-time `fill_table` measures,
    // entered directly so setup does not dominate the bench.
    let mut t = SledsTable::new();
    t.fill_memory(SledsEntry::new(175e-9, 48e6));
    t.fill_device(dev, SledsEntry::new(0.018, 9e6));
    t.fill_crossing(k.config().syscall_cpu.as_secs_f64());

    warm(&mut k);
    (k, t)
}

/// (Re)establishes the canonical cache state: exactly the warm working
/// set resident, everything else cold. `warm_file_pages` is experiment
/// setup — zero cost, no device traffic — so modes measured after a
/// re-warm start from identical states.
fn warm(k: &mut Kernel) {
    for d in 0..WARM_DIRS {
        for f in 0..WARM_FILES {
            k.warm_file_pages(&file_path(d, f), 0, FILE_BYTES / 4096)
                .unwrap();
        }
    }
    k.warm_file_pages(&file_path(NEEDLE_DIR, NEEDLE_FILE), 0, FILE_BYTES / 4096)
        .unwrap();
}

/// One mode's measured run.
struct ModeStats {
    /// Virtual CPU the mode burned.
    cpu_s: f64,
    /// Boundary crossings it paid.
    crossings: u64,
    /// CPU spent purely on crossing the boundary.
    crossing_cpu_s: f64,
    /// Logical syscalls completed (ring ops count — each is one op).
    syscalls: u64,
    /// Files the mode examined.
    files: u64,
    /// Host wall-clock, the only nondeterministic number.
    host_wall_s: f64,
}

impl ModeStats {
    fn from(u: &Rusage, syscall_cpu: f64, files: u64, host_wall_s: f64) -> ModeStats {
        ModeStats {
            cpu_s: u.cpu.as_secs_f64(),
            crossings: u.syscall_crossings,
            crossing_cpu_s: u.syscall_crossings as f64 * syscall_cpu,
            syscalls: u.syscalls,
            files,
            host_wall_s,
        }
    }

    fn files_per_cpu_s(&self) -> f64 {
        self.files as f64 / self.cpu_s
    }

    fn ops_per_cpu_s(&self) -> f64 {
        self.syscalls as f64 / self.cpu_s
    }

    fn json(&self, indent: &str) -> String {
        format!(
            "{indent}{{\"cpu_s\": {:.6}, \"crossings\": {}, \"crossing_cpu_s\": {:.6}, \
             \"syscalls\": {}, \"files\": {}, \"files_per_cpu_s\": {:.0}, \
             \"ops_per_cpu_s\": {:.0}}}",
            self.cpu_s,
            self.crossings,
            self.crossing_cpu_s,
            self.syscalls,
            self.files,
            self.files_per_cpu_s(),
            self.ops_per_cpu_s(),
        )
    }
}

fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    // sledlint::allow(D001, host wall-clock is one of the numbers this benchmark reports)
    let wall = Instant::now();
    let out = f();
    (out, wall.elapsed().as_secs_f64())
}

/// Every file path in walk (name) order.
fn all_paths() -> Vec<String> {
    let mut out = Vec::with_capacity(DIRS * FILES_PER_DIR);
    for d in 0..DIRS {
        for f in 0..FILES_PER_DIR {
            out.push(file_path(d, f));
        }
    }
    out
}

/// Drains one completion batch, panicking on unexpected payloads.
fn reap_fds(k: &mut Kernel, ring: &mut SubmissionRing) -> Vec<Fd> {
    k.ring_reap(ring)
        .into_iter()
        .map(|c| match c.result.expect("open") {
            RingPayload::Fd(fd) => fd,
            other => panic!("open completed with {other:?}"),
        })
        .collect()
}

/// `find -latency` over the ring: batches of opens, then interleaved
/// `FSLEDS_GET` + close pairs, estimates judged user-side — the same
/// verdicts as the sequential walk, a fraction of the crossings.
fn find_batched(
    k: &mut Kernel,
    paths: &[String],
    pred: &LatencyPredicate,
    pricing: &ProgPricing,
) -> Vec<FindHit> {
    let mut ring = SubmissionRing::new(RING_ENTRIES);
    let mut hits = Vec::new();
    for chunk in paths.chunks(RING_ENTRIES) {
        for (i, p) in chunk.iter().enumerate() {
            ring.push(
                i as u64,
                RingOp::Open {
                    path: p.clone(),
                    flags: OpenFlags::RDONLY,
                },
            )
            .unwrap();
        }
        k.ring_enter(&mut ring).unwrap();
        let fds = reap_fds(k, &mut ring);
        for (fd_pair, path_pair) in fds
            .chunks(RING_ENTRIES / 2)
            .zip(chunk.chunks(RING_ENTRIES / 2))
        {
            for (j, &fd) in fd_pair.iter().enumerate() {
                ring.push(
                    2 * j as u64,
                    RingOp::FsledsGet {
                        fd,
                        pricing: pricing.clone(),
                    },
                )
                .unwrap();
                ring.push(2 * j as u64 + 1, RingOp::Close { fd }).unwrap();
            }
            k.ring_enter(&mut ring).unwrap();
            let mut sleds = Vec::with_capacity(fd_pair.len());
            for c in k.ring_reap(&mut ring) {
                if let RingPayload::Sleds(s) = c.result.expect("fsleds_get/close") {
                    sleds.push(s);
                }
            }
            for (s, p) in sleds.iter().zip(path_pair) {
                k.charge_cpu(SimDuration::from_nanos(FIND_NS_PER_ENTRY));
                let est = estimate_seconds(&sleds_from_prog(s), AttackPlan::Best);
                if pred.matches(est) {
                    hits.push(FindHit {
                        path: p.clone(),
                        estimate_secs: Some(est),
                    });
                }
            }
        }
    }
    hits
}

fn scan_hit(buf: &[u8]) -> bool {
    buf.contains(&PATTERN[0]) && buf.windows(PATTERN.len()).any(|w| w == PATTERN)
}

/// Sequential grep: per file open + pread + close, stop at first match.
/// Returns the matching path and how many files were scanned.
fn grep_naive(k: &mut Kernel, paths: &[String]) -> (Option<String>, u64) {
    let mut scanned = 0;
    for p in paths {
        let fd = k.open(p, OpenFlags::RDONLY).unwrap();
        let buf = k.pread(fd, 0, FILE_BYTES as usize).unwrap();
        k.close(fd).unwrap();
        scanned += 1;
        if scan_hit(&buf) {
            return (Some(p.clone()), scanned);
        }
    }
    (None, scanned)
}

/// Ring grep: batches of opens, then pread + close pairs; completions are
/// scanned in submission order, so the first match is the same file the
/// sequential scan stops at (a batch may read a few files past it).
fn grep_batched(k: &mut Kernel, paths: &[String]) -> (Option<String>, u64) {
    let mut ring = SubmissionRing::new(RING_ENTRIES);
    let mut scanned = 0;
    for chunk in paths.chunks(RING_ENTRIES) {
        for (i, p) in chunk.iter().enumerate() {
            ring.push(
                i as u64,
                RingOp::Open {
                    path: p.clone(),
                    flags: OpenFlags::RDONLY,
                },
            )
            .unwrap();
        }
        k.ring_enter(&mut ring).unwrap();
        let fds = reap_fds(k, &mut ring);
        let mut found = None;
        for (fd_pair, path_pair) in fds
            .chunks(RING_ENTRIES / 2)
            .zip(chunk.chunks(RING_ENTRIES / 2))
        {
            for (j, &fd) in fd_pair.iter().enumerate() {
                ring.push(
                    2 * j as u64,
                    RingOp::Pread {
                        fd,
                        pos: 0,
                        len: FILE_BYTES as usize,
                    },
                )
                .unwrap();
                ring.push(2 * j as u64 + 1, RingOp::Close { fd }).unwrap();
            }
            k.ring_enter(&mut ring).unwrap();
            let mut bufs = Vec::with_capacity(fd_pair.len());
            for c in k.ring_reap(&mut ring) {
                if let RingPayload::Bytes(b) = c.result.expect("pread/close") {
                    bufs.push(b);
                }
            }
            for (buf, p) in bufs.iter().zip(path_pair) {
                if found.is_none() {
                    scanned += 1;
                    if scan_hit(buf) {
                        found = Some(p.clone());
                    }
                }
            }
        }
        if found.is_some() {
            return (found, scanned);
        }
    }
    (None, scanned)
}

fn main() {
    println!(
        "building {DIRS}x{FILES_PER_DIR} tree ({} files)...",
        DIRS * FILES_PER_DIR
    );
    let (mut k, table) = setup();
    let pricing = pricing_from(&table);
    let syscall_cpu = k.config().syscall_cpu.as_secs_f64();
    let total_files = (DIRS * FILES_PER_DIR) as u64;
    let paths = all_paths();

    // ---- find -latency -m10: three modes, identical answers ------------
    let pred = LatencyPredicate::parse("-m10").unwrap();
    let opts = FindOptions {
        latency: Some(pred),
        ..FindOptions::default()
    };

    println!("find naive...");
    let before = k.usage();
    let (naive_report, wall) = timed(|| find_report(&mut k, "/tree", &opts, Some(&table)).unwrap());
    let find_naive = ModeStats::from(&k.usage().since(&before), syscall_cpu, total_files, wall);

    println!("find batched...");
    let before = k.usage();
    let (batched_hits, wall) = timed(|| find_batched(&mut k, &paths, &pred, &pricing));
    let find_batch = ModeStats::from(&k.usage().since(&before), syscall_cpu, total_files, wall);

    println!("find pushdown...");
    let before = k.usage();
    let (prog_report, wall) = timed(|| find_prog(&mut k, "/tree", &opts, &table).unwrap());
    let find_push = ModeStats::from(&k.usage().since(&before), syscall_cpu, total_files, wall);

    assert_eq!(
        naive_report.hits, batched_hits,
        "batched find verdicts differ"
    );
    assert_eq!(
        naive_report.hits, prog_report.hits,
        "pushdown find verdicts differ"
    );
    assert!(naive_report.skipped.is_empty() && prog_report.skipped.is_empty());
    let warm_count = (WARM_DIRS * WARM_FILES) as u64 + 1;
    assert_eq!(
        naive_report.hits.len() as u64,
        warm_count,
        "warm set is the hit set"
    );

    // ---- grep -q needle: three modes, same first match ----------------
    // Each mode starts from the canonical cache state (warm set + needle
    // resident) so none inherits the previous mode's streaming churn.
    println!("grep naive...");
    k.drop_caches().unwrap();
    warm(&mut k);
    let before = k.usage();
    let ((hit_naive, scanned_naive), wall) = timed(|| grep_naive(&mut k, &paths));
    let grep_naive_s = ModeStats::from(&k.usage().since(&before), syscall_cpu, scanned_naive, wall);

    println!("grep batched...");
    k.drop_caches().unwrap();
    warm(&mut k);
    let before = k.usage();
    let ((hit_batch, scanned_batch), wall) = timed(|| grep_batched(&mut k, &paths));
    let grep_batch_s = ModeStats::from(&k.usage().since(&before), syscall_cpu, scanned_batch, wall);

    println!("grep pushdown...");
    k.drop_caches().unwrap();
    warm(&mut k);
    let before = k.usage();
    let ((hit_push, scanned_push, walk_files), wall) = timed(|| {
        // One crossing reorders the whole tree most-cached-first; the
        // resident needle file lands in the first handful of entries.
        let everything = PickProgram::new(vec![
            ProgInst::PushConst(0.0),
            ProgInst::PushConst(0.0),
            ProgInst::Eq,
        ])
        .unwrap()
        .with_order(ProgOrder::CachedFirst);
        let entries = k.fsleds_walk("/tree", &everything, &pricing).unwrap();
        let ordered: Vec<String> = entries
            .into_iter()
            .filter(|e| e.kind == sleds_repro::fs::FileKind::File)
            .map(|e| e.path)
            .collect();
        let n = ordered.len() as u64;
        let (hit, scanned) = grep_batched(&mut k, &ordered);
        (hit, scanned, n)
    });
    assert_eq!(walk_files, total_files);
    let grep_push_s = ModeStats::from(&k.usage().since(&before), syscall_cpu, scanned_push, wall);

    let needle = file_path(NEEDLE_DIR, NEEDLE_FILE);
    assert_eq!(hit_naive.as_deref(), Some(needle.as_str()));
    assert_eq!(hit_batch, hit_naive, "batched grep found a different file");
    assert_eq!(hit_push, hit_naive, "pushdown grep found a different file");
    assert!(
        scanned_push <= warm_count + RING_ENTRIES as u64,
        "pushdown scanned {scanned_push} files; cached-first should stop within the warm set"
    );

    // ---- acceptance ---------------------------------------------------
    let naive_cross = find_naive.crossing_cpu_s + grep_naive_s.crossing_cpu_s;
    let batch_cross = find_batch.crossing_cpu_s + grep_batch_s.crossing_cpu_s;
    let push_cross = find_push.crossing_cpu_s + grep_push_s.crossing_cpu_s;
    let batch_reduction = naive_cross / batch_cross;
    let push_reduction = naive_cross / push_cross;
    assert!(
        batch_reduction >= 10.0,
        "batched crossing-CPU reduction {batch_reduction:.1}x < 10x"
    );
    assert!(
        push_reduction >= 10.0,
        "pushdown crossing-CPU reduction {push_reduction:.1}x < 10x"
    );
    // find examines the same million files in every mode, so throughput
    // must order pushdown >= batched >= naive ...
    assert!(
        find_push.files_per_cpu_s() >= find_batch.files_per_cpu_s()
            && find_batch.files_per_cpu_s() >= find_naive.files_per_cpu_s(),
        "find: throughput must order pushdown >= batched >= naive ({:.0} / {:.0} / {:.0})",
        find_push.files_per_cpu_s(),
        find_batch.files_per_cpu_s(),
        find_naive.files_per_cpu_s(),
    );
    // ... while grep -q is a race to the answer: pushdown reads ~250k
    // fewer files, so the comparison is total CPU to the first match.
    assert!(
        grep_push_s.cpu_s <= grep_batch_s.cpu_s && grep_batch_s.cpu_s <= grep_naive_s.cpu_s,
        "grep: time-to-answer must order pushdown <= batched <= naive ({:.3} / {:.3} / {:.3})",
        grep_push_s.cpu_s,
        grep_batch_s.cpu_s,
        grep_naive_s.cpu_s,
    );
    assert!(
        find_batch.ops_per_cpu_s() >= 1e6,
        "batched find {:.0} ops/s of virtual CPU < 1M",
        find_batch.ops_per_cpu_s()
    );

    let workload = |name: &str, extra: String, modes: [&ModeStats; 3]| {
        let [naive, batch, push] = modes;
        format!(
            "  \"{name}\": {{\n{extra}\
             \n    \"naive\":\n{},\n    \"naive_host_wall_s\": {:.3},\
             \n    \"batched\":\n{},\n    \"batched_host_wall_s\": {:.3},\
             \n    \"pushdown\":\n{},\n    \"pushdown_host_wall_s\": {:.3}\n  }}",
            naive.json("    "),
            naive.host_wall_s,
            batch.json("    "),
            batch.host_wall_s,
            push.json("    "),
            push.host_wall_s,
        )
    };
    // Common bench envelope: every BENCH_*.json leads with the same
    // schema-versioned headline (name, config, virtual-ns, host-wall-ns,
    // ops/sec) so `bench_index` can aggregate them without knowing each
    // benchmark's detail shape.
    let total_virtual_ns = ((find_naive.cpu_s
        + find_batch.cpu_s
        + find_push.cpu_s
        + grep_naive_s.cpu_s
        + grep_batch_s.cpu_s
        + grep_push_s.cpu_s)
        * 1e9) as u64;
    let total_host_wall_ns = ((find_naive.host_wall_s
        + find_batch.host_wall_s
        + find_push.host_wall_s
        + grep_naive_s.host_wall_s
        + grep_batch_s.host_wall_s
        + grep_push_s.host_wall_s)
        * 1e9) as u64;
    let mut json = String::new();
    json.push_str("{\n  \"schema\": \"sleds-bench-v1\",\n");
    json.push_str("  \"name\": \"uring-find-grep\",\n");
    json.push_str(&format!(
        "  \"config\": \"tree {DIRS}x{FILES_PER_DIR}, {FILE_BYTES}B files, ring {RING_ENTRIES}\",\n"
    ));
    json.push_str(&format!("  \"virtual_ns\": {total_virtual_ns},\n"));
    json.push_str(&format!("  \"host_wall_ns\": {total_host_wall_ns},\n"));
    json.push_str(&format!(
        "  \"ops_per_sec\": {:.0},\n",
        find_batch.ops_per_cpu_s()
    ));
    json.push_str("  \"detail_schema\": \"sleds-uring-bench-v1\",\n");
    json.push_str(&format!(
        "  \"tree\": {{\"dirs\": {DIRS}, \"files_per_dir\": {FILES_PER_DIR}, \
         \"file_bytes\": {FILE_BYTES}, \"warm_files\": {warm_count}, \
         \"ring_entries\": {RING_ENTRIES}}},\n"
    ));
    json.push_str(&workload(
        "find",
        format!("    \"hits\": {},", naive_report.hits.len()),
        [&find_naive, &find_batch, &find_push],
    ));
    json.push_str(",\n");
    json.push_str(&workload(
        "grep",
        format!("    \"hit\": \"{needle}\","),
        [&grep_naive_s, &grep_batch_s, &grep_push_s],
    ));
    json.push_str(&format!(
        ",\n  \"summary\": {{\n    \"crossing_cpu_reduction_batched\": {batch_reduction:.1},\n    \
         \"crossing_cpu_reduction_pushdown\": {push_reduction:.1},\n    \
         \"batched_find_ops_per_cpu_s\": {:.0}\n  }}\n}}\n",
        find_batch.ops_per_cpu_s(),
    ));
    assert_eq!(json.matches('{').count(), json.matches('}').count());

    let dir = results_dir();
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("BENCH_uring.json");
    std::fs::write(&path, &json).unwrap();
    println!(
        "crossing CPU: naive {naive_cross:.3}s, batched {batch_cross:.3}s ({batch_reduction:.0}x), \
         pushdown {push_cross:.3}s ({push_reduction:.0}x)"
    );
    println!("wrote {}", path.display());
}
