//! Close the loop: run, audit, recalibrate from what was observed, re-run.
//!
//! The paper fills the sleds table once at boot from lmbench-style probes
//! and acknowledges the numbers drift from what the devices actually
//! deliver. This example demonstrates the repair: a traced workload over
//! four storage levels (disk, CD-ROM, NFS, HSM-with-tape) produces
//! per-class first-byte and effective-bandwidth observations; `FSLEDS_RECAL`
//! rebuilds the table from them; the same workload re-runs under the
//! refreshed table; and the prediction-accuracy audit compares the error
//! per device class before and after. The loop only counts as closed if
//! the post-recalibration error is strictly lower for every class the
//! workload exercised — the example asserts exactly that, and writes the
//! before/after table to `results/AUDIT_recal.json`.
//!
//! ```text
//! cargo run --release --example recal_loop
//! ```

use std::path::PathBuf;

use sleds_repro::devices::{CdRomDevice, DiskDevice, NfsDevice, TapeDevice};
use sleds_repro::fs::{Kernel, OpenFlags};
use sleds_repro::lmbench::fill_table;
use sleds_repro::sim_core::PAGE_SIZE;
use sleds_repro::sleds::{recalibrate, total_delivery_time, AttackPlan, RecalPolicy, SledsTable};
use sleds_repro::trace::{audit_accuracy, summarize_class, AccuracySample, ClassAccuracy};

/// Files per storage level — at least `RecalPolicy::min_samples`, so every
/// exercised class clears the recalibrator's sample floor.
const FILES_PER_MOUNT: usize = 3;
const PAGES_PER_FILE: usize = 12;

fn results_dir() -> PathBuf {
    std::env::var("SLEDS_RESULTS")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("results"))
}

/// Every file the workload reads, in a fixed order.
fn corpus() -> Vec<String> {
    let mut paths = Vec::new();
    for dir in ["/data", "/cdrom", "/nfs", "/hsm"] {
        for i in 0..FILES_PER_MOUNT {
            paths.push(format!("{dir}/f{i}"));
        }
    }
    paths
}

/// One pass over the corpus: estimate (emitting a `sleds.predict` marker
/// tagged with the table's generation when tracing is on), then read the
/// whole file linearly, then close.
fn run_pass(k: &mut Kernel, table: &SledsTable) {
    let bytes = PAGES_PER_FILE * PAGE_SIZE as usize;
    for path in corpus() {
        let fd = k.open(&path, OpenFlags::RDONLY).expect("open");
        total_delivery_time(k, table, fd, AttackPlan::Linear).expect("estimate");
        k.read(fd, bytes).expect("read");
        k.close(fd).expect("close");
    }
}

/// Returns the machine to the same cold-client state both passes start
/// from: client cache empty, HSM files back on tape. Server-side state
/// (NFS server cache, tape mount, head/sled positions) deliberately
/// persists — the warmup pass set it, so both measured passes see it.
fn reset_client_state(k: &mut Kernel) {
    k.drop_caches().expect("drop_caches");
    for i in 0..FILES_PER_MOUNT {
        k.hsm_migrate(&format!("/hsm/f{i}"), true).expect("migrate");
    }
}

/// Per-class accuracy rows for the samples tagged with one generation.
fn classes_at(samples: &[AccuracySample], generation: u64) -> Vec<ClassAccuracy> {
    let mut out = Vec::new();
    for class in 0..5u64 {
        let subset: Vec<AccuracySample> = samples
            .iter()
            .filter(|s| s.generation == generation && s.class == class)
            .copied()
            .collect();
        if let Some(c) = summarize_class(class, &subset) {
            out.push(c);
        }
    }
    out
}

fn main() {
    let mut k = Kernel::table2();
    for dir in ["/data", "/cdrom", "/nfs", "/hsm"] {
        k.mkdir(dir).expect("mkdir");
    }
    let m_disk = k
        .mount_disk("/data", DiskDevice::table2_disk("hda"))
        .expect("mount disk");
    let m_cd = k
        .mount_cdrom("/cdrom", CdRomDevice::table2_drive("cd0"))
        .expect("mount cdrom");
    let m_nfs = k
        .mount_nfs("/nfs", NfsDevice::table2_mount("srv:/export"))
        .expect("mount nfs");
    let m_hsm = k
        .mount_hsm(
            "/hsm",
            DiskDevice::table2_disk("hdb"),
            Box::new(TapeDevice::dlt("st0")),
            256,
        )
        .expect("mount hsm");

    let bytes = PAGES_PER_FILE * PAGE_SIZE as usize;
    for (d, dir) in ["/data", "/cdrom", "/nfs", "/hsm"].iter().enumerate() {
        for i in 0..FILES_PER_MOUNT {
            let body = vec![(d * FILES_PER_MOUNT + i) as u8; bytes];
            k.install_file(&format!("{dir}/f{i}"), &body)
                .expect("install");
        }
    }
    for i in 0..FILES_PER_MOUNT {
        k.hsm_migrate(&format!("/hsm/f{i}"), true).expect("migrate");
    }

    // Boot-time table: lmbench-style probes, generation 0.
    let table = fill_table(
        &mut k,
        &[
            ("/data", m_disk),
            ("/cdrom", m_cd),
            ("/nfs", m_nfs),
            ("/hsm", m_hsm),
        ],
    )
    .expect("lmbench calibration");
    assert_eq!(table.generation(), 0);

    // Untraced warmup: one full pass so slow-moving device state (NFS
    // server cache, tape mount, head positions) reaches its steady state.
    // Both measured passes then start from the same conditions, which is
    // what makes their error distributions comparable.
    run_pass(&mut k, &table);
    reset_client_state(&mut k);

    k.enable_tracing_with_capacity(1 << 17);

    // Pass 1: predictions priced from the boot-time table (generation 0).
    run_pass(&mut k, &table);

    // Recalibrate: FSLEDS_RECAL bumps the kernel's sleds epoch, fences the
    // audit, and returns the metrics snapshot the new table is a pure
    // function of.
    let fd = k.open("/data/f0", OpenFlags::RDONLY).expect("open");
    let outcome = recalibrate(&mut k, &table, fd, &RecalPolicy::default()).expect("recal");
    k.close(fd).expect("close");
    println!(
        "recalibrated {} device rows ({} skipped for lack of samples):",
        outcome.refreshed.len(),
        outcome.skipped.len()
    );
    for o in &outcome.refreshed {
        println!(
            "  dev{} class {}: latency {:.6}s bandwidth {:.0} B/s ({} samples)",
            o.dev.0, o.class, o.latency, o.bandwidth, o.samples
        );
    }
    let table_recal = outcome.table;
    assert_eq!(table_recal.generation(), 1);
    assert!(
        !outcome.refreshed.is_empty(),
        "the workload must refresh at least one device row"
    );

    // Pass 2: same workload, same starting state, predictions priced from
    // the refreshed table (generation 1).
    reset_client_state(&mut k);
    run_pass(&mut k, &table_recal);

    let events = k.trace_events();
    let audit = audit_accuracy(&events);
    k.disable_tracing();
    assert_eq!(
        audit.cross_generation, 0,
        "every prediction must pair with reads under its own generation"
    );

    let before = classes_at(&audit.samples, 0);
    let after = classes_at(&audit.samples, 1);
    assert!(
        !before.is_empty() && before.len() == after.len(),
        "both passes must exercise the same classes"
    );

    println!("\nprediction error by class (mean |predicted-actual|/actual):");
    let mut rows = String::new();
    for (b, a) in before.iter().zip(after.iter()) {
        assert_eq!(b.class, a.class, "phase class sets must line up");
        println!(
            "  {:>8}: before {:.4} (n={})  after {:.4} (n={})",
            b.label, b.mean_abs_rel_err, b.n, a.mean_abs_rel_err, a.n
        );
        assert!(
            a.mean_abs_rel_err < b.mean_abs_rel_err,
            "{}: recalibration must strictly reduce mean error ({:.4} -> {:.4})",
            b.label,
            b.mean_abs_rel_err,
            a.mean_abs_rel_err
        );
        if !rows.is_empty() {
            rows.push_str(",\n");
        }
        rows.push_str(&format!(
            "    {{\"class\": \"{}\", \"n_before\": {}, \"err_before\": {:.4}, \"n_after\": {}, \"err_after\": {:.4}}}",
            b.label, b.n, b.mean_abs_rel_err, a.n, a.mean_abs_rel_err
        ));
    }

    // House results-JSON style: hand-rolled, fixed precision, so identical
    // runs serialize identically and check.sh can diff against the
    // committed copy as an accuracy-regression gate.
    let json = format!(
        "{{\n  \"audit\": \"recalibration loop: prediction error before vs after FSLEDS_RECAL\",\n  \"regenerate\": \"cargo run --release --example recal_loop\",\n  \"units\": {{\"errors\": \"mean |predicted-actual|/actual\"}},\n  \"generation_before\": 0,\n  \"generation_after\": 1,\n  \"refreshed_devices\": {},\n  \"skipped_devices\": {},\n  \"classes\": [\n{}\n  ]\n}}\n",
        outcome.refreshed.len(),
        outcome.skipped.len(),
        rows
    );
    assert_eq!(json.matches('{').count(), json.matches('}').count());

    let dir = results_dir();
    std::fs::create_dir_all(&dir).expect("mkdir results");
    let path = dir.join("AUDIT_recal.json");
    std::fs::write(&path, &json).expect("write audit");
    println!("-> {}", path.display());
}
