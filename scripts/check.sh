#!/usr/bin/env bash
# Offline tier-1 gate: everything here must pass with no network access.
# Usage: scripts/check.sh [--with-proptests]
set -euo pipefail
cd "$(dirname "$0")/.."

# Fail fast if something reintroduces an external dependency: the whole
# point of the hermetic workspace is that a fresh checkout builds with an
# empty cargo registry.
export CARGO_NET_OFFLINE=true

run() {
    echo "==> $*"
    "$@"
}

# Scratch space for regenerated artifacts that diff against committed
# baselines below.
scratch=$(mktemp -d)
trap 'rm -rf "$scratch"' EXIT

run cargo fmt --all --check
run cargo clippy --workspace --all-targets -- -D warnings
run cargo build --release
run cargo run -p sledlint --release
run cargo test -q

# Lint-baseline gate: the machine-readable report must match the committed
# baseline (modulo the file count, which grows with the tree). A new finding
# or a new waiver shows up as a diff here and must be committed consciously.
echo "==> sledlint --json baseline diff"
cargo run -q -p sledlint --release -- --json > "$scratch/LINT_baseline.json"
run diff -u <(grep -v files_scanned results/LINT_baseline.json) \
    <(grep -v files_scanned "$scratch/LINT_baseline.json")

# The observability pipeline end to end: traced mixed-device workload,
# Chrome trace export, prediction-accuracy audit. The example asserts the
# exported JSON is balanced and the audit is non-empty.
run cargo run --release --example trace_viewer

# Closed-loop accuracy gate: run -> audit -> FSLEDS_RECAL -> re-run. The
# example asserts post-recalibration error is strictly lower for every
# exercised class, and recalibration is a pure function of the trace, so
# its output must match the committed baseline byte-for-byte — any drift
# in prediction accuracy fails this diff.
recal_tmp="$scratch"
run env SLEDS_RESULTS="$recal_tmp" cargo run --release --example recal_loop
run diff -u results/AUDIT_recal.json "$recal_tmp/AUDIT_recal.json"

# Fault-injection gate: seeded-storm determinism, retry masking, offline
# routing, and the degrade -> pollute -> recalibrate -> restore loop. All
# four properties are asserted inside the example, and the whole run is a
# pure function of the virtual clock and the storm seed, so the report must
# match the committed baseline byte-for-byte.
run env SLEDS_RESULTS="$recal_tmp" cargo run --release --example fault_storm
run diff -u results/FAULTS_report.json "$recal_tmp/FAULTS_report.json"

# Submission-ring gate: the million-file batching/pushdown benchmark. The
# example itself asserts the acceptance floor (identical answers across
# modes, >=10x crossing-CPU reduction, >=1M batched ops/sec); every number
# except host wall-clock is a pure function of the virtual machine, so the
# report must match the committed baseline with host_wall lines filtered.
run env SLEDS_RESULTS="$recal_tmp" cargo run --release --example uring_bench
run diff -u <(grep -v host_wall results/BENCH_uring.json) \
    <(grep -v host_wall "$recal_tmp/BENCH_uring.json")

# Saturation-observatory gate: 220 tenants interleaved on shared disk,
# NFS, and tape. The example asserts determinism, exact attribution
# (own-service + queue-wait == observed, per-tenant rusage sums to
# global), bully identification, and the zero-cost observer; the whole
# interleave is a pure function of the tenant specs and the virtual
# clock, so the report must match the committed baseline byte-for-byte.
run env SLEDS_RESULTS="$recal_tmp" cargo run --release --example saturation_report
run diff -u results/SATURATION_report.json "$recal_tmp/SATURATION_report.json"

# Flight-recorder gate: capture the saturation workload, prove the JSONL
# round-trip and identity replay byte-identical, then replay under a
# shrunken command queue + degraded disk. The example asserts every op's
# completion delta is exactly attributed (queue-wait + service, zero
# residual) and that only disk-coupled tenants move; both artifacts are
# pure functions of the virtual clock, so they must match the committed
# baselines byte-for-byte.
run env SLEDS_RESULTS="$recal_tmp" cargo run --release --example replay_whatif
run diff -u results/CAPTURE_saturation.jsonl "$recal_tmp/CAPTURE_saturation.jsonl"
run diff -u results/REPLAY_diff.json "$recal_tmp/REPLAY_diff.json"

# Redundancy gate: the seeded fault storm over flat, mirrored (retry-only
# and hedged), and (2,3)-coded volumes. The example asserts the acceptance
# properties itself (redundant volumes complete 100% of reads through an
# offline primary, hedged faulted-window p99 beats retry-only, exact hedge
# and per-tenant accounting, determinism); the report is a pure function
# of the storm seed, and only the bench envelope's host-wall fields vary.
run env SLEDS_RESULTS="$recal_tmp" cargo run --release --example redundancy_report
run diff -u results/REDUNDANCY_report.json "$recal_tmp/REDUNDANCY_report.json"
run diff -u <(grep -vE 'host_wall_ns|ops_per_sec' results/BENCH_redundancy.json) \
    <(grep -vE 'host_wall_ns|ops_per_sec' "$recal_tmp/BENCH_redundancy.json")

# Bench-index gate: every BENCH_*.json must carry the common
# sleds-bench-v1 envelope, and the index over them must match the
# committed baseline (host-dependent envelope fields filtered). The
# committed fsleds_get/trace_overhead reports are copied beside the
# fresh uring output so the index sees the full set.
cp results/BENCH_fsleds_get.json results/BENCH_trace_overhead.json "$recal_tmp/"
run env SLEDS_RESULTS="$recal_tmp" cargo run --release -p sleds-bench --bin bench_index
run diff -u <(grep -vE 'host_wall_ns|ops_per_sec' results/BENCH_index.json) \
    <(grep -vE 'host_wall_ns|ops_per_sec' "$recal_tmp/BENCH_index.json")

if [[ "${1:-}" == "--with-proptests" ]]; then
    # The randomized equivalence suites; heavier, so opt-in.
    run cargo test -q -p sleds-fs --features proptests
    run cargo test -q -p sleds --features proptests
fi

echo "All checks passed."
