#!/usr/bin/env bash
# Offline tier-1 gate: everything here must pass with no network access.
# Usage: scripts/check.sh [--with-proptests]
set -euo pipefail
cd "$(dirname "$0")/.."

# Fail fast if something reintroduces an external dependency: the whole
# point of the hermetic workspace is that a fresh checkout builds with an
# empty cargo registry.
export CARGO_NET_OFFLINE=true

run() {
    echo "==> $*"
    "$@"
}

# Scratch space for regenerated artifacts that diff against committed
# baselines below.
scratch=$(mktemp -d)
trap 'rm -rf "$scratch"' EXIT

run cargo fmt --all --check
run cargo clippy --workspace --all-targets -- -D warnings
run cargo build --release
run cargo run -p sledlint --release
run cargo test -q

# Lint-baseline gate: the machine-readable report must match the committed
# baseline (modulo the file count, which grows with the tree). A new finding
# or a new waiver shows up as a diff here and must be committed consciously.
echo "==> sledlint --json baseline diff"
cargo run -q -p sledlint --release -- --json > "$scratch/LINT_baseline.json"
run diff -u <(grep -v files_scanned results/LINT_baseline.json) \
    <(grep -v files_scanned "$scratch/LINT_baseline.json")

# The observability pipeline end to end: traced mixed-device workload,
# Chrome trace export, prediction-accuracy audit. The example asserts the
# exported JSON is balanced and the audit is non-empty.
run cargo run --release --example trace_viewer

# Closed-loop accuracy gate: run -> audit -> FSLEDS_RECAL -> re-run. The
# example asserts post-recalibration error is strictly lower for every
# exercised class, and recalibration is a pure function of the trace, so
# its output must match the committed baseline byte-for-byte — any drift
# in prediction accuracy fails this diff.
recal_tmp="$scratch"
run env SLEDS_RESULTS="$recal_tmp" cargo run --release --example recal_loop
run diff -u results/AUDIT_recal.json "$recal_tmp/AUDIT_recal.json"

# Fault-injection gate: seeded-storm determinism, retry masking, offline
# routing, and the degrade -> pollute -> recalibrate -> restore loop. All
# four properties are asserted inside the example, and the whole run is a
# pure function of the virtual clock and the storm seed, so the report must
# match the committed baseline byte-for-byte.
run env SLEDS_RESULTS="$recal_tmp" cargo run --release --example fault_storm
run diff -u results/FAULTS_report.json "$recal_tmp/FAULTS_report.json"

# Submission-ring gate: the million-file batching/pushdown benchmark. The
# example itself asserts the acceptance floor (identical answers across
# modes, >=10x crossing-CPU reduction, >=1M batched ops/sec); every number
# except host wall-clock is a pure function of the virtual machine, so the
# report must match the committed baseline with host_wall lines filtered.
run env SLEDS_RESULTS="$recal_tmp" cargo run --release --example uring_bench
run diff -u <(grep -v host_wall results/BENCH_uring.json) \
    <(grep -v host_wall "$recal_tmp/BENCH_uring.json")

# Saturation-observatory gate: 220 tenants interleaved on shared disk,
# NFS, and tape. The example asserts determinism, exact attribution
# (own-service + queue-wait == observed, per-tenant rusage sums to
# global), bully identification, and the zero-cost observer; the whole
# interleave is a pure function of the tenant specs and the virtual
# clock, so the report must match the committed baseline byte-for-byte.
run env SLEDS_RESULTS="$recal_tmp" cargo run --release --example saturation_report
run diff -u results/SATURATION_report.json "$recal_tmp/SATURATION_report.json"

if [[ "${1:-}" == "--with-proptests" ]]; then
    # The randomized equivalence suites; heavier, so opt-in.
    run cargo test -q -p sleds-fs --features proptests
    run cargo test -q -p sleds --features proptests
fi

echo "All checks passed."
